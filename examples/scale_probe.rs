//! Scale probe: run the pipeline at a configurable attack volume and
//! report wall time, attacks/sec, and memory (process peak RSS plus
//! the resident bytes of the attack population itself). The
//! EXPERIMENTS.md bytes/attack numbers for the columnar refactor come
//! from this probe.
//!
//! ```text
//! # full generate → observe → project pipeline (peak-RSS baseline)
//! DDOS_SCALE_TARGET=10000000 cargo run --release --example scale_probe
//! # generation only (attacks/sec + population resident bytes)
//! DDOS_SCALE_STAGE=generate cargo run --release --example scale_probe
//! ```

use attackgen::AttackGenerator;
use ddoscovery::{ObsId, StudyConfig, StudyRun};
use netmodel::InternetPlan;
use simcore::{ExecPool, SimRng};

/// Approximate attack volume of `StudyConfig::paper()`, used to scale
/// the per-week base rates toward the requested target.
const PAPER_VOLUME: f64 = 600_000.0;

fn rss_mb() -> f64 {
    obs::peak_rss_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0)
}

fn config(target: f64) -> StudyConfig {
    let mut cfg = StudyConfig::paper();
    cfg.seed = 0x5CA1_AB1E;
    let scale = (target / PAPER_VOLUME).max(0.01);
    cfg.gen.timeline.dp_base_per_week *= scale;
    cfg.gen.timeline.ra_base_per_week *= scale;
    // One cold measured run: no cross-run reuse, no projection gaps.
    cfg.stage_cache = Some(0);
    cfg.missing_data = false;
    cfg
}

/// Generation only: attacks/sec of the generator plus the resident
/// size of the population itself (struct/column bytes + target arena).
fn probe_generate(cfg: &StudyConfig) {
    let root = SimRng::new(cfg.seed);
    let mut plan_rng = root.fork_named("plan");
    let plan = InternetPlan::build(&cfg.net, &mut plan_rng);
    let rss_plan = rss_mb();
    let watch = obs::Stopwatch::start();
    let attacks =
        AttackGenerator::new(&plan, cfg.gen.clone(), &root).generate_study_on(&ExecPool::global());
    let gen_secs = watch.elapsed_ns() as f64 / 1e9;
    let n = attacks.len();
    let resident = attacks.resident_bytes();
    let rss_gen = rss_mb();
    println!(
        "generate: {n} attacks in {gen_secs:.1}s ({:.0} attacks/s)",
        n as f64 / gen_secs.max(1e-9)
    );
    println!(
        "population resident: {:.0} MB ({:.1} bytes/attack analytic)",
        resident as f64 / (1024.0 * 1024.0),
        resident as f64 / n.max(1) as f64
    );
    println!(
        "generation peak: {rss_gen:.0} MB ({:.1} bytes/attack over the {rss_plan:.0} MB plan baseline)",
        (rss_gen - rss_plan) * 1024.0 * 1024.0 / n.max(1) as f64
    );
}

/// Full pipeline in one pass: generate → observe → every projection.
fn probe_pipeline(cfg: &StudyConfig) {
    let rss_start = rss_mb();
    let watch = obs::Stopwatch::start();
    let run = StudyRun::execute_on(cfg, &ExecPool::global());
    let exec_secs = watch.elapsed_ns() as f64 / 1e9;
    let n = run.attacks.len();
    let observed: usize = ObsId::ALL.iter().map(|&id| run.observations(id).len()).sum();
    println!(
        "execute (generate+observe): {n} attacks in {exec_secs:.1}s ({:.0} attacks/s), {observed} observations",
        n as f64 / exec_secs.max(1e-9)
    );

    let watch = obs::Stopwatch::start();
    let mut cells = 0usize;
    for &id in &ObsId::ALL {
        cells += run.weekly_series(id).values.len();
        cells += run.target_tuples(id).len();
    }
    cells += run.netscout_baseline_tuples().len();
    cells += run.akamai_tuples().len();
    let proj_secs = watch.elapsed_ns() as f64 / 1e9;
    let rss_end = rss_mb();
    println!("project: {proj_secs:.2}s ({cells} cells)");
    for stage in ["plan", "attacks", "observe"] {
        let mb = obs::metrics::gauge(&format!("run.peak_rss.{stage}")).get() / (1024.0 * 1024.0);
        println!(
            "stage {stage}: peak RSS {mb:.0} MB ({:.1} bytes/attack)",
            (mb - rss_start) * 1024.0 * 1024.0 / n.max(1) as f64
        );
    }
    println!(
        "peak RSS: {rss_end:.0} MB — pipeline bytes/attack {:.1}",
        (rss_end - rss_start) * 1024.0 * 1024.0 / n.max(1) as f64
    );
}

fn main() {
    let target: f64 = std::env::var("DDOS_SCALE_TARGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000.0);
    let stage = std::env::var("DDOS_SCALE_STAGE").unwrap_or_else(|_| "pipeline".into());
    let cfg = config(target);
    println!("scale_probe: target ~{target:.0} attacks, stage {stage}");
    match stage.as_str() {
        "generate" => probe_generate(&cfg),
        _ => probe_pipeline(&cfg),
    }
}
