//! Federated DDoS inference — the paper's methodological contribution
//! (3): "we share an aggregated list of DDoS targets with industry
//! players who return the results of joining this list with their
//! proprietary data sources to reveal gaps in visibility of the
//! academic data sources" (§7.2).
//!
//! This example plays both sides of that exchange end to end:
//! academia aggregates its target list, each industry partner joins it
//! against its own (never shared) observations, and the returned
//! shares expose what each side alone cannot see.
//!
//! Run with: `cargo run --release --example federated_inference`

use analytics::{confirmation_shares, TargetTuple};
use ddoscovery::{ObsId, StudyConfig, StudyRun};

fn main() {
    // Paper scale: the Akamai announced-prefix set is sparse by design
    // (§7.2) and only populates meaningfully at full volume.
    let run = StudyRun::execute(&StudyConfig::paper());

    // --- Step 1: academia builds the shared artifact. --------------------
    // Only (date, IP) tuples leave the academic side — no attack sizes,
    // no raw traffic (the §4 data-sharing compromise).
    let academic: Vec<(String, Vec<TargetTuple>)> = ObsId::ACADEMIC
        .iter()
        .map(|&id| (id.name().to_string(), run.target_tuples(id).to_vec()))
        .collect();
    let total: usize = {
        let mut all: Vec<TargetTuple> = academic.iter().flat_map(|(_, t)| t.clone()).collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    };
    println!(
        "Academia aggregates {total} distinct (date, IP) targets from {} observatories\n",
        academic.len()
    );

    // --- Step 2: each industry partner joins locally. --------------------
    for (partner, industry_tuples) in [
        ("Netscout (baseline sample)", run.netscout_baseline_tuples().to_vec()),
        ("Akamai (announced prefixes)", run.akamai_tuples().to_vec()),
    ] {
        let c = confirmation_shares(&academic, &industry_tuples);
        println!("== {partner}: {} own targets ==", industry_tuples.len());
        // Forward: what fraction of each academic subset the partner
        // confirms. Report singles and the all-four subset.
        let full_mask = (1u16 << academic.len()) - 1;
        for (mask, size, share) in &c.rows {
            if mask.count_ones() == 1 || *mask == full_mask {
                let names: Vec<&str> = academic
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, (n, _))| n.as_str())
                    .collect();
                println!(
                    "  confirms {:32} {:>7} targets -> {:>6.2}%",
                    names.join("+"),
                    size,
                    100.0 * share
                );
            }
        }
        // Reverse: the gap in academic visibility.
        println!(
            "  reverse: academia's union sees {:.1}% of this partner's targets",
            100.0 * c.industry_seen_by_union
        );
        let best = c
            .industry_seen_by
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!(
            "  best single academic observatory: {} at {:.1}%\n",
            academic[best.0].0,
            100.0 * best.1
        );
    }

    println!(
        "Reading: multi-observatory targets are confirmed at much higher rates —\n\
         \"larger, multi-vector attacks were more likely seen from all vantage\n\
         points\" (§7.2) — while no single side sees more than a fraction of the\n\
         other's picture. That asymmetry is the paper's argument for federated\n\
         inference and for the data-sharing policy framing of §9."
    );
}
