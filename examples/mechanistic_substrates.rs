//! The mechanistic substrates beneath the macro trend curves.
//!
//! The timeline's SAV and takedown multipliers are compressed summaries
//! of two real-world processes the paper discusses at length:
//! per-network source-address-validation deployment (§2.3, §9) and the
//! booter-for-hire market with law-enforcement seizures (§2.1, §6.2).
//! This example runs both substrate models next to their macro
//! counterparts and reproduces the Spoofer project's coverage problem.
//!
//! Run with: `cargo run --release --example mechanistic_substrates`

use attackgen::timeline::TimelineParams;
use attackgen::{BooterMarket, BooterMarketParams, SavModel, SavParams, SpooferPanel};
use netmodel::{InternetPlan, NetScale};
use simcore::{Date, SimRng, SimTime};

fn main() {
    let mut rng = SimRng::new(1);
    let plan = InternetPlan::build(&NetScale::default(), &mut rng);
    let macro_curve = TimelineParams::default();

    // --- SAV deployment -------------------------------------------------
    let sav = SavModel::build(&plan, SavParams::default(), &SimRng::new(7));
    println!("== SAV deployment: mechanistic substrate vs macro multiplier ==");
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>10}",
        "date", "enforcing", "spoofable cap", "mechanistic", "macro"
    );
    for &(y, m) in &[(2019, 3), (2020, 6), (2021, 6), (2022, 6), (2023, 5)] {
        let t = Date::new(y, m, 15).to_sim_time();
        println!(
            "{:>7}-{:02} {:>11.1}% {:>13.1}% {:>12.3} {:>10.3}",
            y,
            m,
            100.0 * sav.enforcing_fraction(t),
            100.0 * sav.spoofable_capacity(t),
            sav.induced_multiplier(t),
            macro_curve.sav_multiplier(t),
        );
    }

    // --- Spoofer measurement panel ---------------------------------------
    println!("\n== Spoofer project panel: crowdsourced estimate vs ground truth ==");
    let panel = SpooferPanel::default();
    let estimates = panel.run(&sav, &plan, &SimRng::new(3));
    println!(
        "{:>8} {:>10} {:>12} {:>8}",
        "quarter", "estimated", "ground truth", "error"
    );
    for e in estimates.iter().step_by(3) {
        println!(
            "{:>8} {:>9.1}% {:>11.1}% {:>+7.1}pp",
            format!("2019Q1+{}", e.quarter),
            100.0 * e.estimated_enforcing,
            100.0 * e.true_enforcing,
            100.0 * (e.estimated_enforcing - e.true_enforcing),
        );
    }
    let mae: f64 = estimates
        .iter()
        .map(|e| (e.estimated_enforcing - e.true_enforcing).abs())
        .sum::<f64>()
        / estimates.len() as f64;
    println!(
        "mean absolute error with {} tests/quarter: {:.1}pp — the §2.3 'limited\n\
         measurement coverage' problem in numbers",
        panel.tests_per_quarter,
        100.0 * mae
    );

    // --- Booter market ----------------------------------------------------
    println!("\n== Booter market: capacity through the takedowns ==");
    let market = BooterMarket::simulate(BooterMarketParams::default(), &SimRng::new(5));
    let [td1, td2] = market.takedown_weeks;
    println!(
        "{:>22} {:>8} {:>10} {:>10}",
        "week", "alive", "capacity", "macro mult"
    );
    for (label, w) in [
        ("takedown #1 - 4wk", td1 - 4),
        ("takedown #1 week", td1),
        ("takedown #1 + 2wk", td1 + 2),
        ("takedown #1 + 10wk", td1 + 10),
        ("takedown #2 week", td2),
        ("takedown #2 + 4wk", td2 + 4),
    ] {
        let t = SimTime::from_weeks(w);
        println!(
            "{:>22} {:>8} {:>10.3} {:>10.3}",
            label,
            market.alive_at_week(w),
            market.induced_multiplier(t),
            macro_curve.takedown_multiplier(t),
        );
    }
    println!(
        "\nReading: seizing the top booters dents capacity by ~10-15% for a few weeks;\n\
         customer migration and domain respawns (§2.1) erase the dent — the market\n\
         mechanics behind §6.2's 'indeterminate footprint'."
    );
}
