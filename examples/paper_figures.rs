//! Regenerate every table and figure of the paper.
//!
//! Runs the full-scale study (≈ 600k attacks over 2019-01…2023-06) and
//! executes the complete experiment registry, printing each artifact
//! and writing the CSV outputs under `results/`.
//!
//! Usage:
//!   cargo run --release --example paper_figures              # everything
//!   cargo run --release --example paper_figures -- fig6      # one experiment
//!   cargo run --release --example paper_figures -- --quick   # scaled-down run

use ddoscovery::{all_ids, run_all, run_experiment, StudyConfig, StudyRun};
use std::fs;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let cfg = if quick {
        StudyConfig::quick()
    } else {
        StudyConfig::paper()
    };
    let started = std::time::Instant::now();
    eprintln!(
        "Executing {} study (seed {:#x}) ...",
        if quick { "quick" } else { "paper-scale" },
        cfg.seed
    );
    let run = StudyRun::execute(&cfg);
    eprintln!(
        "{} attacks generated and observed in {:.1?}\n",
        run.attacks.len(),
        started.elapsed()
    );

    let results = if wanted.is_empty() {
        run_all(&run)
    } else {
        wanted
            .iter()
            .map(|id| {
                run_experiment(&run, id).unwrap_or_else(|| {
                    eprintln!("unknown experiment {id:?}; known: {:?}", all_ids());
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");
    for r in &results {
        println!("==============================================================");
        println!("[{}] {}", r.id, r.title);
        println!("==============================================================");
        println!("{}", r.body);
        for (name, contents) in &r.csv {
            let path = out_dir.join(name);
            fs::write(&path, contents).expect("write csv");
            println!("  -> wrote {}", path.display());
        }
        println!();
    }
    eprintln!(
        "Done: {} experiments in {:.1?} total.",
        results.len(),
        started.elapsed()
    );
}
