//! Validate a flight-recorder trace file (`make trace`).
//!
//! Reads the Chrome trace-event JSON written by `ddoscovery ... --trace
//! PATH` and checks the structural invariants the recorder promises
//! (DESIGN.md §10):
//!
//! * the document parses and has a `traceEvents` array;
//! * every duration event closes — per lane (`tid`), each `E` matches
//!   the innermost open `B` of the same name and no `B` is left open;
//! * timestamps are monotone within each lane;
//! * the `ExecPool` fan-out shows up as `pool.shard` spans on at least
//!   two distinct worker lanes (the whole point of per-thread lanes);
//! * the stage cache left at least one `cache.*` event.
//!
//! Exits non-zero with a message on the first violated invariant, so
//! `make trace` fails loudly instead of shipping a broken trace.

use serde_json::Value;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: FAIL: {msg}");
    std::process::exit(1);
}

fn num(v: &Value, ctx: &str) -> f64 {
    match v {
        Value::UInt(u) => *u as f64,
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        other => fail(&format!("{ctx}: expected number, got {}", other.kind())),
    }
}

fn text<'a>(v: &'a Value, ctx: &str) -> &'a str {
    match v {
        Value::Str(s) => s,
        other => fail(&format!("{ctx}: expected string, got {}", other.kind())),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc: Value =
        serde_json::from_str(&raw).unwrap_or_else(|e| fail(&format!("{path}: invalid JSON: {e}")));

    let events = match doc.get("traceEvents") {
        Some(Value::Array(events)) => events,
        _ => fail("missing traceEvents array"),
    };
    if events.is_empty() {
        fail("traceEvents is empty — recorder produced no events");
    }

    // Per-lane open-span stacks, monotonicity watermarks, and the
    // evidence the fan-out and cache actually traced.
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut last_ts: Vec<(u64, f64)> = Vec::new();
    let mut shard_lanes: Vec<u64> = Vec::new();
    let mut cache_events = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        let ph = text(
            ev.get("ph").unwrap_or_else(|| fail(&format!("{ctx}: no ph"))),
            &ctx,
        );
        let name = text(
            ev.get("name")
                .unwrap_or_else(|| fail(&format!("{ctx}: no name"))),
            &ctx,
        )
        .to_string();
        let tid = num(
            ev.get("tid")
                .unwrap_or_else(|| fail(&format!("{ctx}: no tid"))),
            &ctx,
        ) as u64;
        let ts = num(
            ev.get("ts").unwrap_or_else(|| fail(&format!("{ctx}: no ts"))),
            &ctx,
        );

        match last_ts.iter_mut().find(|(lane, _)| *lane == tid) {
            Some((_, watermark)) => {
                if ts < *watermark {
                    fail(&format!("{ctx}: ts {ts} went backwards on lane {tid}"));
                }
                *watermark = ts;
            }
            None => last_ts.push((tid, ts)),
        }

        let stack = match stacks.iter_mut().find(|(lane, _)| *lane == tid) {
            Some((_, stack)) => stack,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => {
                if name == "pool.shard" && !shard_lanes.contains(&tid) {
                    shard_lanes.push(tid);
                }
                stack.push(name);
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => fail(&format!("{ctx}: E `{name}` closes open B `{open}`")),
                None => fail(&format!("{ctx}: E `{name}` with no open B on lane {tid}")),
            },
            "i" => {
                if name.starts_with("cache.") {
                    cache_events += 1;
                }
            }
            other => fail(&format!("{ctx}: unknown phase `{other}`")),
        }
    }
    for (lane, stack) in &stacks {
        if let Some(open) = stack.last() {
            fail(&format!("lane {lane}: span `{open}` never closed"));
        }
    }
    if shard_lanes.len() < 2 {
        fail(&format!(
            "pool.shard spans on {} lane(s) — expected the fan-out to use >= 2 worker lanes",
            shard_lanes.len()
        ));
    }
    if cache_events == 0 {
        fail("no cache.* events — stage cache left no trace");
    }

    println!(
        "trace_check: OK: {} events, {} lanes, {} pool.shard lanes, {} cache events",
        events.len(),
        stacks.len(),
        shard_lanes.len(),
        cache_events
    );
}
