//! Calibration diagnostics: one-screen dump of the simulation's key
//! shape statistics against the paper's targets — observation counts,
//! trends, the Fig-5 crossing, the Fig-7 overlap structure, and the
//! industry confirmation joins. Used while tuning generator and
//! observatory parameters.
//!
//! Run with: `cargo run --release --example diag [-- --paper]`

use ddoscovery::{ObsId, StudyConfig, StudyRun};

fn main() {
    let t0 = std::time::Instant::now();
    let cfg = if std::env::args().any(|a| a == "--paper") {
        StudyConfig::paper()
    } else {
        StudyConfig::quick()
    };
    let run = StudyRun::execute(&cfg);
    println!("attacks: {} ({:?})", run.attacks.len(), t0.elapsed());
    for id in ObsId::MAIN_TEN.iter().chain([&ObsId::NewKid]) {
        let obs = run.observations(*id);
        let tuples = run.target_tuples(*id);
        let s = run.normalized_series(*id);
        let trend = s.trend();
        let reg = s.linear_regression().map(|r| r.slope * 208.0).unwrap_or(f64::NAN);
        println!("{:16} obs={:7} tuples={:8} trend={} d4y={:+.2}", id.name(), obs.len(), tuples.len(), trend.symbol(), reg);
    }
    // Netscout share crossing (EWMA-smoothed like Fig. 5's trend line)
    let ra = run.weekly_series(ObsId::NetscoutRa).ewma(12);
    let dp = run.weekly_series(ObsId::NetscoutDp).ewma(12);
    let mut last_cross = None;
    for w in 0..ra.len() {
        let (r, d) = (ra.values[w], dp.values[w]);
        if r.is_finite() && d.is_finite() && r + d > 0.0 {
            let share_dp = d / (r + d);
            if share_dp > 0.5 { if last_cross.is_none() { last_cross = Some(w); } } else { last_cross = None; }
        }
    }
    println!("netscout DP>50% from week {:?} ({})", last_cross,
        last_cross.map(|w| simcore::time::week_start_date(w as i64).to_string()).unwrap_or_default());
    for year in 2019..=2023 {
        let lo = simcore::Date::new(year,1,1).to_sim_time().week_index().max(0) as usize;
        let hi = (simcore::Date::new(year+1,1,1).to_sim_time().week_index() as usize).min(ra.len());
        let r: f64 = ra.values[lo..hi].iter().filter(|v| v.is_finite()).sum();
        let d: f64 = dp.values[lo..hi].iter().filter(|v| v.is_finite()).sum();
        println!("  {} netscout RA share {:.1}%", year, 100.0*r/(r+d));
    }
    // Upset over academic four
    let sets: Vec<(String, Vec<analytics::TargetTuple>)> = ObsId::ACADEMIC.iter()
        .map(|&id| (id.name().to_string(), run.target_tuples(id).to_vec())).collect();
    let u = analytics::upset(&sets);
    println!("total distinct tuples {}, ips {}", u.total_distinct, u.distinct_ips);
    for (i, n) in u.names.iter().enumerate() {
        println!("  {:10} size={} share={:.1}%", n, u.set_sizes[i], 100.0*u.set_sizes[i] as f64/u.total_distinct as f64);
    }
    println!("  all-four share: {:.3}%", 100.0*u.share(u.full_mask()));
    println!("  all-four at_least: {:.3}%", 100.0*u.at_least(u.full_mask()) as f64 / u.total_distinct as f64);
    println!("  orion in ucsd: {:.1}%", 100.0*u.overlap_share(0,1));
    println!("  amppot shared w/ hopscotch: {:.1}%", 100.0*u.overlap_share(3,2));
    // netscout baseline overlap with all-four
    let baseline = run.netscout_baseline_tuples();
    println!("netscout baseline tuples: {}", baseline.len());
    let cs = analytics::confirmation_shares(&sets, &baseline);
    for (mask, size, share) in &cs.rows {
        if *mask == u.full_mask() || mask.count_ones() == 1 {
            println!("  mask {:04b} size {} confirmed {:.1}%", mask, size, 100.0*share);
        }
    }
    let ak = run.akamai_tuples();
    println!("akamai tuples: {}", ak.len());
    let cs2 = analytics::confirmation_shares(&sets, &ak);
    println!("  akamai seen by union: {:.1}%", 100.0*cs2.industry_seen_by_union);
    for (mask, size, share) in &cs2.rows {
        if mask.count_ones() == 1 || *mask == u.full_mask() {
            println!("  akamai confirms mask {:04b} size {} share {:.3}%", mask, size, 100.0*share);
        }
    }
}
