//! Parameter sweep: how the observatories' *reported trends* respond to
//! the underlying drivers — the counterfactual machinery a measurement
//! study can never run on the real Internet.
//!
//! Sweeps the SAV-deployment strength (§2.3) and reports the 4-year
//! relative change each observatory would have published in its
//! Table-1 cell.
//!
//! Run with: `cargo run --release --example parameter_sweep`

use ddoscovery::sweep::sweep;
use ddoscovery::{ObsId, StudyConfig};

fn main() {
    let mut base = StudyConfig::quick();
    base.missing_data = false;
    let observatories = [
        ObsId::Ucsd,
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NetscoutRa,
    ];
    let grid = [0.0, 0.2, 0.38, 0.6];
    println!(
        "Sweeping SAV-driven spoofed-volume reduction (paper calibration: 0.38)\n"
    );
    let report = sweep(&base, &grid, &observatories, |cfg, v| {
        cfg.gen.timeline.sav_reduction = v;
    })
    .expect("the quick() base config is valid");
    println!("{:>10} {:>14} {:>8} {:>12}  trend", "sav", "observatory", "attacks", "change/4y");
    for o in &report.outcomes {
        println!(
            "{:>10.2} {:>14} {:>8} {:>+11.2}%  {}",
            o.value,
            o.observatory,
            o.observations,
            100.0 * o.change_4y,
            o.trend.symbol()
        );
    }
    println!(
        "\nReading: with no SAV push the reflection-amplification series would have\n\
         kept growing (▲ rows at sav = 0); at the calibrated 0.38 they decline the\n\
         way the paper's Fig. 3 shows; stronger pushes deepen the decline. The\n\
         telescope column barely moves — RSDoS visibility depends on the *spoofed\n\
         share* of direct-path attacks, not on reflection volume."
    );
}
