//! Quickstart: the smallest end-to-end tour of the library.
//!
//! Builds a synthetic Internet, generates a scaled-down 4.5-year DDoS
//! attack population, runs all ten observatory series over it, and
//! prints what each vantage point believed it saw — the paper's core
//! phenomenon (the same ground truth, ten different stories).
//!
//! Run with: `cargo run --release --example quickstart`

use ddoscovery::{ObsId, StudyConfig, StudyRun};

fn main() {
    let started = std::time::Instant::now();
    let cfg = StudyConfig::quick();
    println!("Running a scaled-down 4.5-year study (seed {:#x}) ...", cfg.seed);
    let run = StudyRun::execute(&cfg);
    println!(
        "Generated {} ground-truth attacks in {:.1?}\n",
        run.attacks.len(),
        started.elapsed()
    );

    println!("{:16} {:>9} {:>10}  trend  first-year -> last-year", "observatory", "attacks", "targets");
    for id in ObsId::MAIN_TEN {
        let obs = run.observations(id);
        let tuples = run.target_tuples(id);
        let s = run.normalized_series(id);
        let early: f64 = s.present().take(26).map(|(_, v)| v).sum::<f64>() / 26.0;
        let late: f64 = s
            .present()
            .filter(|(w, _)| *w >= simcore::STUDY_WEEKS - 26)
            .map(|(_, v)| v)
            .sum::<f64>()
            / 26.0;
        println!(
            "{:16} {:>9} {:>10}    {}    {:.2}x -> {:.2}x of baseline",
            id.name(),
            obs.len(),
            tuples.len(),
            s.trend().symbol(),
            early,
            late,
        );
    }

    // The headline inconsistency of the paper, in one sentence each:
    let ucsd = run.observations(ObsId::Ucsd).len() as f64;
    let orion = run.observations(ObsId::Orion).len() as f64;
    println!(
        "\nThe UCSD telescope (24x larger) detected {:.1}x as many RSDoS attacks as ORION.",
        ucsd / orion.max(1.0)
    );
    let dp_up = [ObsId::Orion, ObsId::Ucsd, ObsId::NetscoutDp, ObsId::IxpDp]
        .iter()
        .filter(|&&id| run.normalized_series(id).trend() == analytics::Trend::Increasing)
        .count();
    println!(
        "{dp_up}/4 non-Akamai direct-path observatories saw an increasing trend; Akamai saw {}.",
        run.normalized_series(ObsId::AkamaiDp).trend().symbol()
    );
    println!(
        "Reflection-amplification trends at the honeypots: Hopscotch {}, AmpPot {}.",
        run.normalized_series(ObsId::Hopscotch).trend().symbol(),
        run.normalized_series(ObsId::AmpPot).trend().symbol()
    );
    println!("\nNext: `cargo run --release --example paper_figures` regenerates every table and figure.");
}
