//! What-if analysis on law-enforcement takedowns (§6.2).
//!
//! The paper finds the footprint of the 2022-12-13 and 2023-05-04
//! booter takedowns "indeterminate": small valleys, no lasting trend
//! change. This example sweeps the takedown effectiveness parameter and
//! measures each scenario *against the no-takedown counterfactual*
//! (same seed, same attacks otherwise — a difference-in-differences the
//! real study could never run). It shows how strong an intervention
//! would have to be before an observatory could attribute it.
//!
//! Run with: `cargo run --release --example takedown_whatif`

use ddoscovery::{ObsId, StudyConfig, StudyRun};
use simcore::time::takedown_dates;

/// AmpPot EWMA series for a given takedown parameterization.
fn amppot_series(dip: f64, recovery_weeks: f64) -> analytics::WeeklySeries {
    let mut cfg = StudyConfig::quick();
    cfg.missing_data = false;
    cfg.gen.timeline.takedown_dip = dip;
    cfg.gen.timeline.takedown_recovery_weeks = recovery_weeks;
    let run = StudyRun::execute(&cfg);
    run.normalized_series(ObsId::AmpPot).ewma(8)
}

/// Mean ratio scenario/baseline over the `n` weeks after a date.
fn relative_level(
    scenario: &analytics::WeeklySeries,
    baseline: &analytics::WeeklySeries,
    from: simcore::Date,
    n: usize,
) -> f64 {
    let w = from.to_sim_time().week_index() as usize;
    let hi = (w + 1 + n).min(scenario.values.len());
    let mut acc = 0.0;
    let mut count = 0;
    for i in (w + 1)..hi {
        let (s, b) = (scenario.values[i], baseline.values[i]);
        if s.is_finite() && b.is_finite() && b > 0.0 {
            acc += s / b;
            count += 1;
        }
    }
    acc / count.max(1) as f64
}

fn main() {
    println!("Sweeping takedown dip depth (paper default: 0.16, 3-week recovery).");
    println!("Effects are measured against the dip = 0 counterfactual (same seed).\n");
    let baseline = amppot_series(0.0, 3.0);
    let [t1, t2] = takedown_dates();
    // A between-takedowns window (after #1's recovery horizon, before
    // #2) to measure whether the first takedown left a lasting dent.
    let inter = simcore::Date::new(2023, 3, 1);

    println!(
        "{:>8} {:>10}  {:>16} {:>16} {:>18}",
        "dip", "recovery", "4wk after #1", "4wk after #2", "level at 2023-03"
    );
    for &(dip, recovery_weeks) in &[
        (0.16, 3.0),  // the paper's indeterminate footprint
        (0.40, 3.0),  // strong but transient
        (0.40, 26.0), // strong and slow to recover
        (0.70, 52.0), // a hypothetical lasting crackdown
    ] {
        let s = amppot_series(dip, recovery_weeks);
        println!(
            "{:>8.2} {:>8.0}wk  {:>15.1}% {:>15.1}% {:>17.1}%",
            dip,
            recovery_weeks,
            100.0 * (relative_level(&s, &baseline, t1, 4) - 1.0),
            100.0 * (relative_level(&s, &baseline, t2, 4) - 1.0),
            100.0 * (relative_level(&s, &baseline, inter, 6) - 1.0),
        );
    }
    println!(
        "\nReading: the paper-calibrated dips (row 1) shave only a few percent off the\n\
         weeks after each takedown and nothing lasting by March — inside weekly\n\
         noise, hence §6.2's 'indeterminate footprint'. Only a deep, slow-recovering\n\
         crackdown (last rows) leaves a lasting dent. (Scenario runs resample weekly\n\
         noise, so ±5% wiggle between columns is expected.)"
    );
}
