//! Detector validation walkthrough: drive the *packet-level* detectors
//! — Corsaro RSDoS (Appendix J), the honeypot flow detectors (Table 2)
//! and the IXP blackholing classifier — with synthesized packet streams
//! from hand-built attacks, and show how each platform's parameters
//! change the verdict.
//!
//! Run with: `cargo run --release --example detector_validation`

use attackgen::attack::{Attack, AttackClass, AttackId, AttackVector, ReflectorUse};
use attackgen::packets::{backscatter_packets, sensor_request_packets, victim_traffic_sample};
use flowmon::{classify_blackholed_traffic, IxpConfig};
use honeypot::{HoneypotConfig, HoneypotDetector};
use netmodel::{AmpVector, Asn, InternetPlan, Ipv4, NetScale};
use simcore::{SimRng, SimTime};
use telescope::{min_detectable_rate_mbps, RsdosConfig, RsdosDetector, Telescope};

fn rsdos(id: u64, pps: f64, duration_secs: u32) -> Attack {
    Attack {
        id: AttackId(id),
        class: AttackClass::DirectPathSpoofed,
        vector: AttackVector::SynFlood,
        start: SimTime(100_000),
        duration_secs,
        targets: vec![Ipv4::new(93, 184, 216, 34)],
        target_asn: Asn(64500),
        pps,
        bps: pps * 3360.0,
        reflectors: None,
        spoof_space_fraction: 1.0,
        campaign: None,
    }
}

fn ra(id: u64, vector: AmpVector, reflectors: u32, pps: f64) -> Attack {
    Attack {
        id: AttackId(id),
        class: AttackClass::ReflectionAmplification,
        vector: AttackVector::Amplification(vector),
        start: SimTime(200_000),
        duration_secs: 600,
        targets: vec![Ipv4::new(198, 51, 7, 7)],
        target_asn: Asn(64501),
        pps,
        bps: pps * vector.response_bytes() as f64 * 8.0,
        reflectors: Some(ReflectorUse {
            vector,
            reflector_count: reflectors,
        }),
        spoof_space_fraction: 0.0,
        campaign: None,
    }
}

fn main() {
    let mut rng = SimRng::new(7);
    let plan = InternetPlan::build(&NetScale::tiny(), &mut rng);
    let ucsd = Telescope::ucsd(&plan);
    let orion = Telescope::orion(&plan);
    let cfg = RsdosConfig::default();

    println!("== Telescope sensitivity (Section 5) ==");
    println!(
        "minimum detectable rate: UCSD-NT {:.3} Mbps, ORION {:.3} Mbps",
        min_detectable_rate_mbps(ucsd.coverage(), &cfg),
        min_detectable_rate_mbps(orion.coverage(), &cfg)
    );

    println!("\n== Corsaro RSDoS detector (Appendix J) over synthesized backscatter ==");
    println!("{:>12} {:>9}  {:>14} {:>14}", "attack pps", "duration", "UCSD verdict", "ORION verdict");
    for (i, &(pps, dur)) in [(500.0, 300u32), (2_000.0, 300), (8_000.0, 300), (50_000.0, 45), (50_000.0, 300)]
        .iter()
        .enumerate()
    {
        let attack = rsdos(i as u64, pps, dur);
        let verdict = |tele: &Telescope| -> &'static str {
            let mut prng = rng.fork(attack.id.0).fork_named(&tele.spec.name);
            let pkts = backscatter_packets(&attack, &tele.spec, &mut prng);
            let mut det = RsdosDetector::new(RsdosConfig::default());
            for p in &pkts {
                det.ingest(p);
            }
            if det.finish().is_empty() {
                "missed"
            } else {
                "DETECTED"
            }
        };
        println!(
            "{:>12} {:>8}s  {:>14} {:>14}",
            pps,
            dur,
            verdict(&ucsd),
            verdict(&orion)
        );
    }

    println!("\n== Honeypot flow detectors (Table 2) over synthesized reflector requests ==");
    let amppot_cfg = HoneypotConfig::amppot(&plan);
    let hops_cfg = HoneypotConfig::hopscotch(&plan);
    println!(
        "{:>10} {:>12} {:>10}  {:>14} {:>14}",
        "vector", "reflectors", "pps", "AmpPot", "Hopscotch"
    );
    for (i, &(vector, reflectors, pps)) in [
        (AmpVector::Dns, 500u32, 50_000.0),
        (AmpVector::Dns, 20_000, 2_000.0),  // spread too thin for AmpPot's 100-pkt bar
        (AmpVector::CharGen, 500, 50_000.0), // Hopscotch doesn't emulate CHARGEN
        (AmpVector::Cldap, 500, 50_000.0),   // AmpPot doesn't emulate CLDAP
    ]
    .iter()
    .enumerate()
    {
        let attack = ra(100 + i as u64, vector, reflectors, pps);
        let verdict = |cfg: &HoneypotConfig| -> &'static str {
            let sensor = cfg.sensors[0];
            let mut prng = rng.fork(attack.id.0).fork_named(&cfg.name);
            let pkts = sensor_request_packets(&attack, sensor, &mut prng);
            let mut det = HoneypotDetector::new(cfg.clone());
            for p in &pkts {
                det.ingest(p);
            }
            if det.finish().is_empty() {
                "missed"
            } else {
                "DETECTED"
            }
        };
        println!(
            "{:>10} {:>12} {:>10}  {:>14} {:>14}",
            vector.label(),
            reflectors,
            pps,
            verdict(&amppot_cfg),
            verdict(&hops_cfg)
        );
    }

    println!("\n== IXP blackholing classifier (Table 2) over victim-side traffic ==");
    // One-second attack slices so the full packet stream fits in memory
    // (the classifier's rate estimate needs the complete traffic of the
    // window, not a sample).
    let ixp_cfg = IxpConfig::default();
    println!("{:>24} {:>10}  classification", "attack", "bps");
    for (name, mut attack) in [
        ("NTP amp, 5 Gbps", ra(200, AmpVector::Ntp, 800, 1.5e6)),
        ("NTP amp, 0.3 Gbps", ra(201, AmpVector::Ntp, 800, 8.0e4)),
        ("SYN flood, 500 Mbps", rsdos(202, 1.5e5, 300)),
        ("SYN flood, 20 Mbps", rsdos(203, 6.0e3, 300)),
    ] {
        attack.duration_secs = 1;
        let mut prng = rng.fork(attack.id.0).fork_named("ixp");
        let pkts = victim_traffic_sample(&attack, usize::MAX, &mut prng);
        let verdict = classify_blackholed_traffic(&pkts, &ixp_cfg);
        println!("{:>24} {:>10.2e}  {:?}", name, attack.bps, verdict);
    }
}
