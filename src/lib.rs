//! Workspace facade for the `ddoscovery` reproduction of
//! "The Age of DDoScovery" (IMC 2024).
//!
//! This crate re-exports every workspace member so that the examples and
//! cross-crate integration tests can reach the whole system through a
//! single dependency. Library users should depend on the individual
//! crates (or on [`ddoscovery`] for the orchestration layer) directly.

pub use analytics;
pub use attackgen;
pub use ddoscovery;
pub use flowmon;
pub use honeypot;
pub use netmodel;
pub use reports;
pub use simcore;
pub use telescope;
