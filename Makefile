.PHONY: build test lint bench bench-json check telemetry chaos scale

build:
	cargo build --release

# Tier-1 gate: build + full workspace test suite + repo lint.
test: lint
	cargo build --release
	cargo test -q --release --workspace

lint:
	sh tools/lint.sh

bench:
	cargo bench --workspace

# Bench trajectory: the end-to-end pipeline Criterion group plus the
# cached-vs-cold sweep benchmark, which writes BENCH_sweep.json
# (median ns per grid point and warm stage-cache hit rates).
bench-json:
	cargo bench -p ddoscovery-bench --bench pipeline
	cargo bench -p ddoscovery-bench --bench sweep

# Everything `test` gates on, plus a compile-only smoke of every bench
# target so bench drift cannot rot outside the tier-1 path.
check: test
	cargo bench --workspace --no-run

# 10M-attack scale path (DESIGN.md §9): per-stage peak-RSS probes in
# separate processes (VmHWM is monotone, so stages must not share one),
# the population throughput bench (BENCH_population.json), and the
# ignored 10M release smoke test.
scale:
	DDOS_SCALE_TARGET=10000000 DDOS_SCALE_STAGE=generate \
		cargo run --release --example scale_probe
	DDOS_SCALE_TARGET=10000000 \
		cargo run --release --example scale_probe
	cargo bench -p ddoscovery-bench --bench population
	cargo test -q --release --test scale_smoke -- --ignored

# Fault-injection suite under several pool widths: the chaos tests
# assert byte-identical output across worker counts internally, and
# re-running the whole binary with different DDOSCOVERY_WORKERS
# defaults exercises the global-pool path the in-test pools bypass.
chaos:
	DDOSCOVERY_WORKERS=1 cargo test -q --release --test chaos
	DDOSCOVERY_WORKERS=4 cargo test -q --release --test chaos
	DDOSCOVERY_WORKERS=8 cargo test -q --release --test chaos

# Quick-scale instrumented run: emits telemetry.json (run manifest with
# per-stage latency histograms, per-observatory counts, and pool
# utilization) plus a human-readable summary table on stderr.
telemetry:
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		trends --quick --telemetry telemetry.json
	@cat telemetry.json
