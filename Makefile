.PHONY: build test lint bench

build:
	cargo build --release

# Tier-1 gate: build + full workspace test suite + repo lint.
test: lint
	cargo build --release
	cargo test -q --release --workspace

lint:
	sh tools/lint.sh

bench:
	cargo bench --workspace
