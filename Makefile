.PHONY: build test lint bench bench-json check telemetry chaos scale trace regress store serve

build:
	cargo build --release

# Tier-1 gate: build + full workspace test suite + repo lint.
test: lint
	cargo build --release
	cargo test -q --release --workspace

lint:
	sh tools/lint.sh

bench:
	cargo bench --workspace

# Bench trajectory: the JSON-emitting benches write
# BENCH_pipeline.json, BENCH_sweep.json, BENCH_population.json,
# BENCH_store.json, and BENCH_http.json at the repo root as run
# manifests (seed, config fingerprint, metrics) so `ddoscovery runs
# diff` can compare any two of them across commits.
bench-json:
	cargo bench -p ddoscovery-bench --bench pipeline
	cargo bench -p ddoscovery-bench --bench sweep
	cargo bench -p ddoscovery-bench --bench population
	cargo bench -p ddoscovery-bench --bench store
	cargo bench -p ddoscovery-bench --bench http

# Perf regression gate: diff each fresh BENCH file against the stored
# baseline under .ddoscovery/bench/ with a generous wall-clock gate,
# then refresh the baselines. First run just seeds the baselines.
regress:
	@mkdir -p .ddoscovery/bench
	@for b in pipeline sweep population; do \
		if [ -f .ddoscovery/bench/BENCH_$$b.json ]; then \
			cargo run --release -p ddoscovery --bin ddoscovery -- \
				runs diff .ddoscovery/bench/BENCH_$$b.json BENCH_$$b.json \
				--gate 50 || exit 1; \
		else \
			echo "regress: no baseline for $$b, seeding"; \
		fi; \
		cp BENCH_$$b.json .ddoscovery/bench/BENCH_$$b.json; \
	done

# Everything `test` gates on, plus a compile-only smoke of every bench
# target so bench drift cannot rot outside the tier-1 path.
check: test
	cargo bench --workspace --no-run

# 10M-attack scale path (DESIGN.md §9): per-stage peak-RSS probes in
# separate processes (VmHWM is monotone, so stages must not share one),
# the population throughput bench (BENCH_population.json), and the
# ignored 10M release smoke test.
scale:
	DDOS_SCALE_TARGET=10000000 DDOS_SCALE_STAGE=generate \
		cargo run --release --example scale_probe
	DDOS_SCALE_TARGET=10000000 \
		cargo run --release --example scale_probe
	cargo bench -p ddoscovery-bench --bench population
	cargo test -q --release --test scale_smoke -- --ignored

# Cross-process warm smoke (DESIGN.md §11): two sequential CLI runs
# share a stage store — the second process must serve every stage from
# the disk tier (zero recomputation) and print byte-identical stdout —
# then `store list` inspects the cells and `store gc --max-bytes 0`
# empties them.
store:
	@rm -rf /tmp/ddoscovery-store-smoke && mkdir -p /tmp/ddoscovery-store-smoke
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		trends --quick --workers 2 --store /tmp/ddoscovery-store-smoke/cells \
		> /tmp/ddoscovery-store-smoke/cold.txt
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		trends --quick --workers 2 --store /tmp/ddoscovery-store-smoke/cells \
		--telemetry /tmp/ddoscovery-store-smoke/warm.json \
		> /tmp/ddoscovery-store-smoke/warm.txt
	cmp /tmp/ddoscovery-store-smoke/cold.txt /tmp/ddoscovery-store-smoke/warm.txt
	@grep -q '"stage.plan.disk_hit": 1' /tmp/ddoscovery-store-smoke/warm.json || \
		{ echo "store: warm run did not hit the plan cell" >&2; exit 1; }
	@grep -q '"stage.attacks.disk_hit": 1' /tmp/ddoscovery-store-smoke/warm.json || \
		{ echo "store: warm run did not hit the attacks cell" >&2; exit 1; }
	@grep -q '"stage.observations.disk_hit": 12' /tmp/ddoscovery-store-smoke/warm.json || \
		{ echo "store: warm run did not hit all observation cells" >&2; exit 1; }
	@grep -q '"stage.plan.computed": 0' /tmp/ddoscovery-store-smoke/warm.json || \
		{ echo "store: warm run recomputed the plan" >&2; exit 1; }
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		store list --store /tmp/ddoscovery-store-smoke/cells
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		store gc --max-bytes 0 --store /tmp/ddoscovery-store-smoke/cells
	@rm -rf /tmp/ddoscovery-store-smoke
	@echo "store: ok (cross-process warm hits, byte-identical stdout, gc)"

# Query-service smoke (DESIGN.md §12): the end-to-end suite boots real
# `ddoscovery serve` children, proves served bytes identical to CLI
# stdout, sheds a burst past a parked pool, survives chaos-injected
# handler panics, and drains cleanly inside the deadline.
serve:
	cargo test -q --release -p ddoscovery --test http_service
	cargo test -q --release -p ddoscovery-serve
	@echo "serve: ok (byte-identical payloads, shedding, chaos 500s, drain)"

# Fault-injection suite under several pool widths: the chaos tests
# assert byte-identical output across worker counts internally, and
# re-running the whole binary with different DDOSCOVERY_WORKERS
# defaults exercises the global-pool path the in-test pools bypass.
chaos:
	DDOSCOVERY_WORKERS=1 cargo test -q --release --test chaos
	DDOSCOVERY_WORKERS=4 cargo test -q --release --test chaos
	DDOSCOVERY_WORKERS=8 cargo test -q --release --test chaos

# Quick-scale instrumented run: emits telemetry.json (run manifest with
# per-stage latency histograms, per-observatory counts, and pool
# utilization) plus a human-readable summary table on stderr.
telemetry:
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		trends --quick --telemetry telemetry.json
	@cat telemetry.json

# Flight-recorder smoke: a quick traced run writes trace.json (Chrome
# trace-event JSON, loadable in Perfetto / chrome://tracing), then
# trace_check validates it — parses, every span closes, and the pool
# fan-out produced at least two distinct worker lanes. Workers are
# pinned so the lane check holds even on single-core machines.
trace:
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		trends --quick --workers 4 --trace trace.json
	cargo run --release --example trace_check -- trace.json
