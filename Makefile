.PHONY: build test lint bench telemetry

build:
	cargo build --release

# Tier-1 gate: build + full workspace test suite + repo lint.
test: lint
	cargo build --release
	cargo test -q --release --workspace

lint:
	sh tools/lint.sh

bench:
	cargo bench --workspace

# Quick-scale instrumented run: emits telemetry.json (run manifest with
# per-stage latency histograms, per-observatory counts, and pool
# utilization) plus a human-readable summary table on stderr.
telemetry:
	cargo run --release -p ddoscovery --bin ddoscovery -- \
		trends --quick --telemetry telemetry.json
	@cat telemetry.json
