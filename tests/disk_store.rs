//! Persistent stage-store contract (DESIGN.md §11): a fresh process
//! (emulated by clearing the in-memory stage cache) loads every stage
//! from disk instead of recomputing it, loads are integrity-checked —
//! a truncated or bit-flipped cell is rejected, counted, recomputed,
//! and rewritten valid — and the output bytes are identical to a cold
//! run in every case. Corruption can cost time, never correctness.
//!
//! The `stage.*` counters live in the process-global `obs` registry,
//! so every test here serializes on one mutex, measures counter
//! *deltas*, and runs under a test-unique seed and store directory.

use ddoscovery::diskstore::CELL_HEADER_LEN;
use ddoscovery::stagecache::StageCache;
use ddoscovery::{ObsId, StudyConfig, StudyRun};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ddoscovery-diskstore-it-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small, fast config writing through a private store directory.
/// Seeds must be unique per test so no stage keys are shared.
fn tiny_cfg(seed: u64, dir: &Path) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = seed;
    cfg.gen.timeline.dp_base_per_week = 20.0;
    cfg.gen.timeline.ra_base_per_week = 30.0;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg.missing_data = false;
    cfg.workers = Some(2);
    cfg.stage_cache = Some(64);
    cfg.disk_store = Some(dir.display().to_string());
    cfg
}

/// Every projection the paper consumes, flattened to bytes (bitwise:
/// NaN masks compare exactly).
fn output_fingerprint(run: &StudyRun) -> Vec<u8> {
    let mut out = Vec::new();
    for id in ObsId::ALL {
        out.extend(id.slug().as_bytes());
        for v in &run.weekly_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for v in &run.normalized_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for &(day, ip) in run.target_tuples(id) {
            out.extend(day.to_le_bytes());
            out.extend(ip.0.to_le_bytes());
        }
    }
    for &(day, ip) in run.netscout_baseline_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    for &(day, ip) in run.akamai_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    out
}

/// Snapshot of the cumulative disk-tier and execution counters, summed
/// across the three stages: `[hit, miss, write, reject, computed]`.
fn snap() -> [u64; 5] {
    let total = |kind: &str| {
        ["plan", "attacks", "observations"]
            .iter()
            .map(|stage| obs::metrics::counter(&format!("stage.{stage}.{kind}")).get())
            .sum()
    };
    [
        total("disk_hit"),
        total("disk_miss"),
        total("disk_write"),
        total("disk_reject"),
        total("computed"),
    ]
}

fn delta(before: [u64; 5], after: [u64; 5]) -> [u64; 5] {
    std::array::from_fn(|i| after[i] - before[i])
}

/// Every cell file currently in the store, sorted for determinism.
fn cell_files(dir: &Path) -> Vec<PathBuf> {
    let mut cells = Vec::new();
    for stage in ["plan", "attacks", "observations"] {
        let Ok(entries) = fs::read_dir(dir.join(stage)) else { continue };
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with('.') {
                continue;
            }
            cells.push(entry.path());
        }
    }
    cells.sort();
    cells
}

/// One full run needs 14 cells: plan, attacks, 11 observation streams,
/// and the raw Netscout alert stream.
const CELLS_PER_RUN: u64 = 14;

/// The headline guarantee: a second "process" (in-memory cache
/// cleared) serves every stage from disk — zero recomputation,
/// byte-identical output — while a same-process re-run prefers the
/// memory tier and leaves the disk untouched.
#[test]
fn warm_process_loads_every_stage_from_disk() {
    let _guard = serialize();
    let dir = scratch_dir("warm");
    let cfg = tiny_cfg(0xD15C_0001, &dir);

    let before = snap();
    let baseline = output_fingerprint(&StudyRun::execute(&cfg));
    let [hit, miss, write, reject, computed] = delta(before, snap());
    assert_eq!(computed, CELLS_PER_RUN, "cold run computes every stage");
    assert_eq!(write, CELLS_PER_RUN, "every fresh stage is persisted");
    assert_eq!(miss, CELLS_PER_RUN, "every cold load is a clean miss");
    assert_eq!((hit, reject), (0, 0));
    assert_eq!(cell_files(&dir).len() as u64, CELLS_PER_RUN);

    // Fresh process: the memory tier is empty, the disk tier is warm.
    StageCache::global().clear();
    let before = snap();
    let warm = output_fingerprint(&StudyRun::execute(&cfg));
    let [hit, _, write, reject, computed] = delta(before, snap());
    assert!(warm == baseline, "disk-served run diverged from the cold run");
    assert_eq!(computed, 0, "warm process must recompute nothing");
    assert_eq!(hit, CELLS_PER_RUN, "every stage must load from disk");
    assert_eq!((write, reject), (0, 0));

    // Same-process re-run: memory first, disk untouched.
    let before = snap();
    let hot = output_fingerprint(&StudyRun::execute(&cfg));
    let [hit, miss, write, reject, computed] = delta(before, snap());
    assert!(hot == baseline);
    assert_eq!(
        [hit, miss, write, reject, computed],
        [0, 0, 0, 0, 0],
        "a memory-warm run must not touch the disk tier at all"
    );

    let _ = fs::remove_dir_all(&dir);
}

/// Flip one payload byte in *every* stored cell: every load rejects,
/// the run recomputes everything, emits byte-identical output, and
/// rewrites every cell — so the next fresh process loads clean again.
#[test]
fn corrupted_cells_are_rejected_recomputed_and_rewritten() {
    let _guard = serialize();
    let dir = scratch_dir("flip");
    let cfg = tiny_cfg(0xD15C_0002, &dir);
    let baseline = output_fingerprint(&StudyRun::execute(&cfg));
    let cells = cell_files(&dir);
    assert_eq!(cells.len() as u64, CELLS_PER_RUN);

    for path in &cells {
        let mut bytes = fs::read(path).expect("read cell");
        assert!(bytes.len() > CELL_HEADER_LEN, "cell has a payload");
        let at = CELL_HEADER_LEN + (bytes.len() - CELL_HEADER_LEN) / 2;
        bytes[at] ^= 0x01;
        fs::write(path, bytes).expect("write corrupted cell");
    }

    StageCache::global().clear();
    let before = snap();
    let recovered = output_fingerprint(&StudyRun::execute(&cfg));
    let [hit, _, write, reject, computed] = delta(before, snap());
    assert!(recovered == baseline, "recovery run diverged from the cold run");
    assert_eq!(reject, CELLS_PER_RUN, "every corrupted cell must be rejected");
    assert_eq!(computed, CELLS_PER_RUN, "every stage must recompute");
    assert_eq!(write, CELLS_PER_RUN, "every rejected cell must be rewritten");
    assert_eq!(hit, 0);

    // The rewritten store is clean: a fresh process loads all 14.
    StageCache::global().clear();
    let before = snap();
    let reloaded = output_fingerprint(&StudyRun::execute(&cfg));
    let [hit, _, _, reject, computed] = delta(before, snap());
    assert!(reloaded == baseline);
    assert_eq!((computed, reject), (0, 0), "rewritten cells must load cleanly");
    assert_eq!(hit, CELLS_PER_RUN);

    let _ = fs::remove_dir_all(&dir);
}

/// Truncate the plan cell at every header boundary (and mid-payload):
/// each load rejects, the plan recomputes, the output stays identical,
/// and the rewritten cell is byte-for-byte the original — stage
/// serialization is deterministic, so recompute-and-rewrite converges.
#[test]
fn truncation_at_every_header_boundary_is_rejected() {
    let _guard = serialize();
    let dir = scratch_dir("trunc");
    let cfg = tiny_cfg(0xD15C_0003, &dir);
    let baseline = output_fingerprint(&StudyRun::execute(&cfg));

    let plan_cells = cell_files(&dir)
        .into_iter()
        .filter(|p| p.parent().and_then(|d| d.file_name()) == Some("plan".as_ref()))
        .collect::<Vec<_>>();
    let [plan_cell] = plan_cells.as_slice() else {
        panic!("expected exactly one plan cell, got {plan_cells:?}")
    };
    let original = fs::read(plan_cell).expect("read plan cell");
    assert!(original.len() > CELL_HEADER_LEN);

    // Header layout: magic 0..4, version 4..6, kind 6, length 7..15,
    // checksum 15..23, payload after. Cut at the start, inside and at
    // the end of every field, plus one mid-payload cut.
    let cuts = [0, 2, 4, 5, 6, 7, 11, 15, 19, CELL_HEADER_LEN, original.len() - 1];
    for cut in cuts {
        fs::write(plan_cell, &original[..cut]).expect("truncate cell");
        StageCache::global().clear();
        let before = snap();
        let out = output_fingerprint(&StudyRun::execute(&cfg));
        let [_, _, write, reject, computed] = delta(before, snap());
        assert!(out == baseline, "cut at {cut}: output diverged");
        assert_eq!(reject, 1, "cut at {cut}: the plan load must reject");
        assert_eq!(computed, 1, "cut at {cut}: only the plan recomputes");
        assert_eq!(write, 1, "cut at {cut}: the plan cell must be rewritten");
        let rewritten = fs::read(plan_cell).expect("read rewritten cell");
        assert_eq!(rewritten, original, "cut at {cut}: rewrite must converge");
    }

    let _ = fs::remove_dir_all(&dir);
}
