//! Cross-run stage-cache contract (DESIGN.md §7): sweeps and repeated
//! executions reuse exactly the stages whose fingerprinted inputs are
//! unchanged, eviction is bounded, and — the non-negotiable invariant —
//! cached output is byte-identical to recomputed output at any worker
//! count.
//!
//! The `stage.*` counters live in the process-global `obs` registry, so
//! every test here serializes on one mutex, measures counter *deltas*,
//! and runs under a test-unique seed (a seed change re-keys every
//! stage, so no entries are shared across tests).

use ddoscovery::stagecache::{Stage, StageCache, StageStats};
use ddoscovery::sweep::sweep;
use ddoscovery::{ObsId, StudyConfig, StudyRun};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn snap() -> [StageStats; 3] {
    let cache = StageCache::global();
    [
        cache.stats(Stage::Plan),
        cache.stats(Stage::Attacks),
        cache.stats(Stage::Observations),
    ]
}

/// Per-stage counter movement between two snapshots.
fn delta(before: [StageStats; 3], after: [StageStats; 3]) -> [StageStats; 3] {
    std::array::from_fn(|i| StageStats {
        hit: after[i].hit - before[i].hit,
        computed: after[i].computed - before[i].computed,
        evicted: after[i].evicted - before[i].evicted,
    })
}

/// A small, fast base config under a caller-chosen seed. Seeds must be
/// unique per test (see module docs).
fn tiny_cfg(seed: u64) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = seed;
    cfg.gen.timeline.dp_base_per_week = 20.0;
    cfg.gen.timeline.ra_base_per_week = 30.0;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg.missing_data = false;
    cfg.workers = Some(2);
    cfg.stage_cache = Some(64);
    cfg
}

/// Every projection the paper consumes, flattened to bytes (bitwise:
/// NaN masks compare exactly).
fn output_fingerprint(run: &StudyRun) -> Vec<u8> {
    let mut out = Vec::new();
    for id in ObsId::ALL {
        out.extend(id.slug().as_bytes());
        for v in &run.weekly_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for v in &run.normalized_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for &(day, ip) in run.target_tuples(id) {
            out.extend(day.to_le_bytes());
            out.extend(ip.0.to_le_bytes());
        }
    }
    for &(day, ip) in run.netscout_baseline_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    for &(day, ip) in run.akamai_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    out
}

/// The headline reuse guarantee: an observation-parameter sweep of G
/// grid points performs exactly one plan build and one attack
/// generation — generation is skipped entirely at every warm point.
#[test]
fn observation_sweep_generates_attacks_exactly_once() {
    let _guard = serialize();
    let base = tiny_cfg(0xA11C_E001);
    let before = snap();
    let report = sweep(
        &base,
        &[1800.0, 5400.0, 7200.0],
        &[ObsId::Hopscotch, ObsId::AmpPot],
        |cfg, v| cfg.obs.carpet_gap_secs = v as u32,
    )
    .expect("base config is valid");
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!(report.outcomes.len(), 6);
    assert!(report.skipped.is_empty());
    assert_eq!(plan.computed, 1, "plan must be built exactly once across the grid");
    assert_eq!(
        attacks.computed, 1,
        "attacks must be generated exactly once across the grid"
    );
    // Concurrent grid points coalesce on the shared stages and count
    // the waits as hits; every point's observation streams are fresh
    // (12 streams each: 11 observatories + the raw alert stream).
    assert_eq!(plan.hit + plan.computed, 3);
    assert_eq!(attacks.hit + attacks.computed, 3);
    assert_eq!(observations.computed, 3 * 12);
}

/// A generation-side sweep reuses the plan at every grid point.
#[test]
fn generation_sweep_builds_plan_exactly_once() {
    let _guard = serialize();
    let base = tiny_cfg(0xA11C_E002);
    let before = snap();
    let report = sweep(&base, &[0.0, 0.3, 0.6], &[ObsId::AmpPot], |cfg, v| {
        cfg.gen.timeline.sav_reduction = v;
    })
    .expect("base config is valid");
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!(report.outcomes.len(), 3);
    assert_eq!(plan.computed, 1, "plan must be built exactly once across the grid");
    assert_eq!(plan.hit + plan.computed, 3);
    // Every point's generator inputs differ, so no attack reuse …
    assert_eq!(attacks.computed, 3);
    assert_eq!(attacks.hit, 0);
    // … and downstream observation streams are all fresh too.
    assert_eq!(observations.computed, 3 * 12);
    assert_eq!(observations.hit, 0);
}

/// Changing any single classified field misses exactly the stages that
/// field feeds — and an unchanged re-run misses nothing.
#[test]
fn single_field_changes_invalidate_their_stage_only() {
    let _guard = serialize();
    let cfg = tiny_cfg(0xA11C_E003);

    let before = snap();
    let _ = StudyRun::execute(&cfg);
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!((plan.computed, attacks.computed, observations.computed), (1, 1, 12));

    // Identical config: every stage is a hit.
    let before = snap();
    let _ = StudyRun::execute(&cfg);
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!((plan.computed, attacks.computed, observations.computed), (0, 0, 0));
    assert_eq!((plan.hit, attacks.hit, observations.hit), (1, 1, 12));

    // A plan-class field (`net`) recomputes everything.
    let mut poked = cfg.clone();
    poked.net.reflector_pool_total += 1;
    let before = snap();
    let _ = StudyRun::execute(&poked);
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!((plan.computed, attacks.computed, observations.computed), (1, 1, 12));

    // An attacks-class field (`gen`) reuses the plan.
    let mut poked = cfg.clone();
    poked.gen.timeline.noise_sigma += 0.01;
    let before = snap();
    let _ = StudyRun::execute(&poked);
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!((plan.computed, plan.hit), (0, 1));
    assert_eq!((plan.computed, attacks.computed, observations.computed), (0, 1, 12));

    // An observation-class field (`obs`) reuses plan and attacks.
    let mut poked = cfg.clone();
    poked.obs.carpet_gap_secs += 60;
    let before = snap();
    let _ = StudyRun::execute(&poked);
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!((plan.hit, attacks.hit), (1, 1));
    assert_eq!((plan.computed, attacks.computed, observations.computed), (0, 0, 12));

    // Execution-class fields (`workers`, `stage_cache` bound) change no
    // fingerprint: full hit, byte-identical output.
    let mut poked = cfg.clone();
    poked.workers = Some(3);
    poked.stage_cache = Some(32);
    let before = snap();
    let _ = StudyRun::execute(&poked);
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!((plan.computed, attacks.computed, observations.computed), (0, 0, 0));
    assert_eq!((plan.hit, attacks.hit, observations.hit), (1, 1, 12));
}

/// A tiny bound evicts (one full run needs 14 entries) but never
/// corrupts: the re-run under the same tiny bound recomputes evicted
/// stages and reproduces the exact same bytes.
#[test]
fn tiny_bound_evicts_without_changing_output() {
    let _guard = serialize();
    let mut cfg = tiny_cfg(0xA11C_E004);
    cfg.workers = Some(1);
    cfg.stage_cache = Some(2);
    let before = snap();
    let a = output_fingerprint(&StudyRun::execute(&cfg));
    let [plan, attacks, observations] = delta(before, snap());
    assert_eq!((plan.computed, attacks.computed, observations.computed), (1, 1, 12));
    let evictions = plan.evicted + attacks.evicted + observations.evicted;
    assert!(
        evictions >= 12,
        "a 14-entry run at bound 2 must evict (saw {evictions})"
    );
    let b = output_fingerprint(&StudyRun::execute(&cfg));
    assert!(a == b, "post-eviction re-run diverged");
}

/// The non-negotiable invariant: cache on vs off, across worker counts,
/// is byte-for-byte identical — including warm runs served entirely
/// from cache.
#[test]
fn cache_on_off_and_worker_counts_are_byte_identical() {
    let _guard = serialize();
    let mut off = tiny_cfg(0xA11C_E005);
    off.stage_cache = Some(0);
    off.workers = Some(1);
    let baseline = output_fingerprint(&StudyRun::execute(&off));
    assert!(!baseline.is_empty());

    for workers in [1, 3] {
        let mut on = tiny_cfg(0xA11C_E005);
        on.workers = Some(workers);
        let cold = output_fingerprint(&StudyRun::execute(&on));
        assert!(
            cold == baseline,
            "cache-on output diverged from cache-off at {workers} workers"
        );
        let before = snap();
        let warm = output_fingerprint(&StudyRun::execute(&on));
        let [plan, attacks, observations] = delta(before, snap());
        assert!(warm == baseline, "warm output diverged at {workers} workers");
        assert_eq!(
            (plan.computed, attacks.computed, observations.computed),
            (0, 0, 0),
            "warm run must be served entirely from cache"
        );
    }

    // Cache off at a second worker count, for symmetry.
    off.workers = Some(3);
    assert!(output_fingerprint(&StudyRun::execute(&off)) == baseline);
}
