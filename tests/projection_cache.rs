//! Memoization contract of the study projections: every experiment in
//! the suite reads the same handful of weekly / normalized / tuple
//! projections, and the run must compute each of them at most once no
//! matter how many experiments (or repeat renders) consume them.

use ddoscovery::{run_all, ObsId, StudyConfig, StudyRun};

fn tiny_cfg() -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.gen.timeline.dp_base_per_week = 20.0;
    cfg.gen.timeline.ra_base_per_week = 30.0;
    cfg.gen.random_campaign_count = 2;
    cfg
}

#[test]
fn run_all_computes_each_projection_at_most_once() {
    let run = StudyRun::execute(&tiny_cfg());
    assert_eq!(run.projection_stats().weekly_computed, 0, "projections must be lazy");

    let first = run_all(&run);
    assert!(!first.is_empty());
    let stats = run.projection_stats();
    // Eleven series exist; run_all touches overlapping subsets from
    // many experiments, but each projection may be computed only once.
    assert!(
        stats.weekly_computed <= ObsId::ALL.len(),
        "weekly series recomputed: {} computations for {} series",
        stats.weekly_computed,
        ObsId::ALL.len()
    );
    assert!(
        stats.normalized_computed <= ObsId::ALL.len(),
        "normalized series recomputed: {}",
        stats.normalized_computed
    );
    assert!(
        stats.tuples_computed <= ObsId::ALL.len(),
        "target tuples recomputed: {}",
        stats.tuples_computed
    );
    assert!(
        stats.baseline_computed <= 1,
        "netscout baseline recomputed: {}",
        stats.baseline_computed
    );

    // A second full pass must be served entirely from the cache.
    let second = run_all(&run);
    assert_eq!(first.len(), second.len());
    assert_eq!(run.projection_stats(), stats, "second run_all recomputed projections");
}

#[test]
fn cached_projections_are_stable() {
    let run = StudyRun::execute(&tiny_cfg());
    for id in ObsId::ALL {
        let a = run.weekly_series(id).values.clone();
        let b = run.weekly_series(id).values.clone();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // The memoized slices are the same allocation, not equal copies.
        assert!(std::ptr::eq(run.weekly_series(id), run.weekly_series(id)));
        assert!(std::ptr::eq(run.target_tuples(id), run.target_tuples(id)));
    }
    assert!(std::ptr::eq(
        run.netscout_baseline_tuples(),
        run.netscout_baseline_tuples()
    ));
}
