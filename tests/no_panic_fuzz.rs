//! No-panic fuzz harness (DESIGN.md §6): randomized study configs and
//! adversarial numeric series must never panic anywhere in the public
//! surface.
//!
//! Two fronts:
//!
//! 1. **Configs** — randomized (sometimes deliberately invalid)
//!    `StudyConfig`s go through `validate` → `StudyRun::try_execute` →
//!    every projection. Invalid configs must come back as typed
//!    `Error::Config` values; valid ones must run to completion and
//!    produce bitwise-identical weekly series at different worker
//!    counts.
//! 2. **Series** — adversarial inputs (NaN, ±∞, empty, constant,
//!    extreme magnitudes) drive every public analytics entry point.
//!    The contract is "degrade, don't die": degenerate statistics are
//!    `None` or NaN, never a panic — and every call is deterministic
//!    (same input twice ⇒ bit-identical output).
//!
//! The harness runs entirely on the vendored `proptest` stand-in, so
//! case generation is deterministic per test name: failures reproduce
//! without a seed file.

use analytics::{
    average_ranks, best_lag, box_stats, concentration, correlation_matrix, median,
    monthly_profile, pearson, quarterly_correlations, relative_change_4y, seasonal_summary,
    share_series, spearman, trend_interval, upset, Heatmap, Method, WeeklySeries,
};
use ddoscovery::{Error, ObsId, StudyConfig, StudyRun};
use proptest::prelude::*;
use simcore::SimRng;

// ---------------------------------------------------------------- configs

/// Sampled knobs for a randomized (starved) study config. Ranges are
/// tiny so a full pipeline run costs milliseconds in debug builds, but
/// they cross every regime boundary the generator branches on: zero
/// rates, zero campaigns, masked vs complete data, 1..3 workers.
#[derive(Debug, Clone)]
struct FuzzKnobs {
    seed: u64,
    tail_as_count: usize,
    reflector_pool_total: u64,
    dp_base: f64,
    ra_base: f64,
    sav_reduction: f64,
    campaigns: usize,
    missing_data: bool,
}

fn config_from(k: &FuzzKnobs) -> StudyConfig {
    let mut cfg = StudyConfig::quick_complete();
    cfg.seed = k.seed;
    cfg.net.tail_as_count = k.tail_as_count;
    cfg.net.reflector_pool_total = k.reflector_pool_total;
    cfg.gen.timeline.dp_base_per_week = k.dp_base;
    cfg.gen.timeline.ra_base_per_week = k.ra_base;
    cfg.gen.timeline.sav_reduction = k.sav_reduction;
    cfg.gen.random_campaign_count = k.campaigns;
    cfg.gen.campaign_rate_scale = if k.campaigns == 0 { 0.0 } else { 0.05 };
    cfg.missing_data = k.missing_data;
    cfg
}

/// Corrupt one field based on `field_selector`; returns the dotted
/// field path `validate` must name. Covers each `Error::Config` class:
/// non-finite, out-of-range, inverted window, zero count.
fn corrupt(cfg: &mut StudyConfig, field_selector: u8) -> &'static str {
    match field_selector % 8 {
        0 => {
            cfg.gen.timeline.dp_base_per_week = f64::NAN;
            "gen.timeline.dp_base_per_week"
        }
        1 => {
            cfg.gen.timeline.ra_base_per_week = -3.0;
            "gen.timeline.ra_base_per_week"
        }
        2 => {
            cfg.gen.timeline.sav_reduction = 1.5;
            "gen.timeline.sav_reduction"
        }
        3 => {
            cfg.gen.timeline.noise_sigma = f64::INFINITY;
            "gen.timeline.noise_sigma"
        }
        4 => {
            cfg.workers = Some(0);
            "workers"
        }
        5 => {
            cfg.net.tail_as_count = 0;
            "net.tail_as_count"
        }
        6 => {
            cfg.gen.shape.duration_min_secs = 100;
            cfg.gen.shape.duration_max_secs = 10;
            "gen.shape.duration_min_secs"
        }
        _ => {
            cfg.gen.shape.pps_min = f64::NEG_INFINITY;
            "gen.shape.pps_min"
        }
    }
}

proptest! {
    // 384 cases: one in four is a corrupted-config case, so ≥256
    // configs still execute the full pipeline.
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// ≥256 randomized configs through the full pipeline: valid ones
    /// execute and project without panicking, and the weekly series are
    /// bitwise identical across worker counts; corrupted ones come back
    /// as a typed config error naming the poisoned field.
    #[test]
    fn randomized_configs_never_panic(
        seed in any::<u64>(),
        tail_as_count in 1usize..6,
        reflector_pool_total in 1u64..3_000,
        dp_base in 0.0f64..0.8,
        ra_base in 0.0f64..0.8,
        sav_reduction in 0.0f64..=1.0,
        campaigns in 0usize..3,
        missing_data in proptest::bool::ANY,
        corrupt_case in any::<u8>(),
    ) {
        let knobs = FuzzKnobs {
            seed,
            tail_as_count,
            reflector_pool_total,
            dp_base,
            ra_base,
            sav_reduction,
            campaigns,
            missing_data,
        };
        let cfg = config_from(&knobs);

        // Every fourth case poisons one field instead of executing: the
        // error path is as much fuzz surface as the happy path.
        if corrupt_case % 4 == 0 {
            let mut bad = cfg.clone();
            let field = corrupt(&mut bad, corrupt_case / 4);
            match StudyRun::try_execute(&bad) {
                Ok(_) => panic!("corrupted field {field} accepted"),
                Err(e @ Error::Config { field: named, .. }) => {
                    prop_assert_eq!(named, field);
                    prop_assert_eq!(e.exit_code(), 2);
                }
                Err(other) => panic!("expected Config error, got {other}"),
            }
            return Ok(());
        }

        prop_assert!(cfg.validate().is_ok(), "fuzz base config must be valid");
        // Three executions of the same scenario that must agree bit for
        // bit: stage cache OFF at 1 worker, stage cache ON at 3 workers
        // (cold), and the same cached config again (warm — every stage
        // served from the cache). Worker count and cache state are
        // execution knobs; neither may leak into output.
        let mut one = cfg.clone();
        one.workers = Some(1);
        one.stage_cache = Some(0);
        let mut three = cfg.clone();
        three.workers = Some(3);
        three.stage_cache = Some(64);
        let a = StudyRun::try_execute(&one).expect("validated config must run");
        let b = StudyRun::try_execute(&three).expect("validated config must run");
        let c = StudyRun::try_execute(&three).expect("validated config must run");
        prop_assert_eq!(a.attacks.len(), b.attacks.len());
        prop_assert_eq!(a.attacks.len(), c.attacks.len());

        // Touch every projection (they must not panic on starved data)
        // and hold the worker-count-invariance contract bit for bit.
        for id in ObsId::ALL {
            let wa = a.weekly_series(id);
            let wb = b.weekly_series(id);
            prop_assert_eq!(wa.len(), wb.len());
            for (x, y) in wa.values.iter().zip(&wb.values) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} diverged", id.name());
            }
            let wc = c.weekly_series(id);
            for (x, y) in wa.values.iter().zip(&wc.values) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} cached diverged", id.name());
            }
            let na = a.normalized_series(id);
            let nb = b.normalized_series(id);
            for (x, y) in na.values.iter().zip(&nb.values) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} normalized diverged", id.name());
            }
            prop_assert_eq!(a.target_tuples(id), b.target_tuples(id));
            prop_assert_eq!(a.target_tuples(id), c.target_tuples(id));
            let _ = na.trend();
        }
        prop_assert_eq!(a.netscout_baseline_tuples(), b.netscout_baseline_tuples());
        prop_assert_eq!(a.netscout_baseline_tuples(), c.netscout_baseline_tuples());
        prop_assert_eq!(a.akamai_tuples(), b.akamai_tuples());
        prop_assert_eq!(a.akamai_tuples(), c.akamai_tuples());
    }
}

// ---------------------------------------------------------------- series

/// Adversarial f64 palette: index → value. Indices sampled as `u8`
/// cover the palette uniformly enough that short vectors still hit the
/// specials.
fn palette(idx: u8) -> f64 {
    match idx % 12 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => 1.0,
        6 => -1.0,
        7 => f64::MAX,
        8 => f64::MIN_POSITIVE,
        9 => -f64::MAX,
        10 => 1e-300,
        _ => 42.5,
    }
}

/// Assert two f64 slices are bitwise identical (NaN patterns included).
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length changed between calls");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}] not deterministic");
    }
}

/// Determinism check for statistic structs that may carry NaN fields
/// (derived `PartialEq` would call NaN ≠ NaN a divergence): two calls
/// must render identically.
fn assert_same_debug<T: std::fmt::Debug>(a: &T, b: &T, what: &str) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what} not deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Adversarial vectors through every vector-input analytics entry
    /// point: no panics, deterministic output.
    #[test]
    fn adversarial_vectors_never_panic(
        xs_idx in collection::vec(any::<u8>(), 0..64),
        ys_idx in collection::vec(any::<u8>(), 0..64),
    ) {
        let xs: Vec<f64> = xs_idx.iter().copied().map(palette).collect();
        let ys: Vec<f64> = ys_idx.iter().copied().map(palette).collect();

        let ranks = average_ranks(&xs);
        assert_bits_eq(&ranks, &average_ranks(&xs), "average_ranks");
        prop_assert_eq!(ranks.len(), xs.len());

        let m1 = median(&xs);
        let m2 = median(&xs);
        prop_assert_eq!(m1.to_bits(), m2.to_bits());

        assert_same_debug(&box_stats(&xs), &box_stats(&xs), "box_stats");
        assert_same_debug(&pearson(&xs, &ys), &pearson(&xs, &ys), "pearson");
        assert_same_debug(&spearman(&xs, &ys), &spearman(&xs, &ys), "spearman");
    }

    /// Adversarial weekly series through the series/seasonal/lag/
    /// heatmap/bootstrap surface: no panics, deterministic output,
    /// degenerate inputs yield None rather than garbage.
    #[test]
    fn adversarial_series_never_panic(
        a_idx in collection::vec(any::<u8>(), 0..60),
        b_idx in collection::vec(any::<u8>(), 0..60),
        span in 1usize..16,
    ) {
        let a = WeeklySeries::new("a", a_idx.iter().copied().map(palette).collect());
        let b = WeeklySeries::new("b", b_idx.iter().copied().map(palette).collect());

        let na = a.normalize_to_baseline();
        assert_bits_eq(&na.values, &a.normalize_to_baseline().values, "normalize");
        assert_bits_eq(&a.ewma(span).values, &a.ewma(span).values, "ewma");
        assert_bits_eq(&a.centered_ma(span).values, &a.centered_ma(span).values, "centered_ma");

        let reg = a.linear_regression();
        assert_same_debug(&reg, &a.linear_regression(), "linear_regression");
        if let Some(r) = &reg {
            let _ = relative_change_4y(r);
        }
        let _ = a.trend();

        let _ = monthly_profile(&a);
        let _ = seasonal_summary(&a);
        let _ = quarterly_correlations(&a, &b);
        let _ = best_lag(&a, &b, 8);
        let s1 = share_series(&a, &b);
        assert_bits_eq(&s1.values, &share_series(&a, &b).values, "share_series");

        let mut rng1 = SimRng::new(9).fork_named("fuzz-bootstrap");
        let mut rng2 = SimRng::new(9).fork_named("fuzz-bootstrap");
        assert_same_debug(
            &trend_interval(&a, 4, 20, &mut rng1),
            &trend_interval(&a, 4, 20, &mut rng2),
            "trend_interval",
        );

        let series = [a.clone(), b.clone()];
        let _ = correlation_matrix(&series, Method::Spearman);
        let _ = correlation_matrix(&series, Method::Pearson);
        let h = Heatmap::from_series(&series, 5.0);
        for row in 0..2 {
            for w in 0..a.len().max(b.len()) {
                let _ = h.get(row, w);
            }
        }
    }

    /// Count/set-shaped entry points under adversarial inputs.
    #[test]
    fn adversarial_counts_and_sets_never_panic(
        counts in collection::vec(any::<u16>(), 0..50),
        tuple_bits in collection::vec(any::<u8>(), 0..40),
    ) {
        let counts: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        assert_same_debug(&concentration(&counts), &concentration(&counts), "concentration");

        // Small (day, ip) universe so sets collide, overlap, and empty.
        let tuples: Vec<analytics::TargetTuple> = tuple_bits
            .iter()
            .map(|&x| ((x % 5) as i64, netmodel::Ipv4((x % 7) as u32)))
            .collect();
        let (left, right) = tuples.split_at(tuples.len() / 2);
        let u = upset(&[("l".into(), left.to_vec()), ("r".into(), right.to_vec())]);
        prop_assert!(u.total_distinct <= tuples.len());
    }
}

/// Fixed extreme shapes that random sampling can miss: empty, single
/// element, all-NaN, all-constant, alternating ±∞.
#[test]
fn degenerate_fixed_inputs_never_panic() {
    let shapes: Vec<Vec<f64>> = vec![
        vec![],
        vec![f64::NAN],
        vec![f64::NAN; 30],
        vec![7.0; 30],
        (0..30)
            .map(|i| if i % 2 == 0 { f64::INFINITY } else { f64::NEG_INFINITY })
            .collect(),
    ];
    for values in &shapes {
        let s = WeeklySeries::new("edge", values.clone());
        let _ = s.normalize_to_baseline();
        let _ = s.ewma(12);
        let _ = s.centered_ma(6);
        let _ = s.linear_regression();
        let _ = s.trend();
        let _ = median(values);
        let _ = average_ranks(values);
        let _ = box_stats(values);
        let _ = pearson(values, values);
        let _ = spearman(values, values);
        let _ = monthly_profile(&s);
        let _ = seasonal_summary(&s);
        let _ = Heatmap::from_series(std::slice::from_ref(&s), 5.0);
    }
    // Degenerate statistics must be absent, not garbage.
    assert!(box_stats(&[]).is_none());
    assert!(concentration(&[]).is_none());
    assert!(WeeklySeries::new("nan", vec![f64::NAN; 10]).linear_regression().is_none());
    assert!(pearson(&[1.0], &[1.0]).is_none());
}
