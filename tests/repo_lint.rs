//! Source lint wired into the test suite (mirrors `tools/lint.sh`):
//! no wall-clock or OS-entropy primitives anywhere in simulation code.
//! Every stochastic draw must fork from the study seed and every
//! timestamp must be SimTime, or runs stop being bitwise reproducible.

use std::fs;
use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "vendor" {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_nondeterminism_primitives_in_simulation_code() {
    // Built by concatenation so this file passes its own scan.
    let forbidden: Vec<String> = vec![
        ["thread_", "rng"].concat(),
        ["System", "Time"].concat(),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in ["crates", "src", "examples", "tests"] {
        rust_sources(&root.join(dir), &mut files);
    }
    assert!(
        files.len() > 50,
        "lint scanned only {} files — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else { continue };
        for (lineno, line) in text.lines().enumerate() {
            for pat in &forbidden {
                if line.contains(pat.as_str()) {
                    violations.push(format!(
                        "{}:{}: {}",
                        file.strip_prefix(root).unwrap_or(file).display(),
                        lineno + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "forbidden nondeterminism primitives:\n{}",
        violations.join("\n")
    );
}
