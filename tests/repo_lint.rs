//! Source lint wired into the test suite (mirrors `tools/lint.sh`),
//! eight rules:
//!
//! 1. No wall-clock or OS-entropy primitives anywhere in simulation
//!    code: every stochastic draw must fork from the study seed and
//!    every timestamp must be SimTime, or runs stop being bitwise
//!    reproducible.
//! 2. Wall-clock *timing* is quarantined in `crates/obs` (the
//!    telemetry layer, DESIGN.md §5) and `crates/serve` (the IO
//!    boundary, DESIGN.md §12, whose socket deadlines and drain budget
//!    are wall-clock by nature and never feed simulation state):
//!    simulation crates measure elapsed time only through
//!    `obs::Stopwatch` / `obs::span!`. The CLI binary is user-facing
//!    and exempt.
//! 3. Library sources never print: stdout is reserved for
//!    machine-readable output and stderr goes through the leveled
//!    `obs` logger. Allowlist: the CLI binary and the logger itself.
//! 4. Library sources never call bare unwrap (DESIGN.md §6): failure
//!    paths return the typed `ddoscovery::Error`, degrade to
//!    `None`/NaN, or justify an impossible failure with
//!    `expect("why")`. This also bans the NaN-panicking
//!    `partial_cmp(..)` + unwrap comparator idiom — use `total_cmp`.
//!    Only lines before a file's first test-module marker are in
//!    scope; tests and benches may unwrap freely.
//! 5. Unwind capture (the std panic-catching primitive) is confined to
//!    `crates/simcore/src/recover.rs`, the designated recovery module
//!    (DESIGN.md §8): every caught panic flows through
//!    `recover::capture` so retry budgets and `fault.*` counters stay
//!    consistent.
//! 6. Chrome trace-event emission (the `traceEvents` document key) is
//!    confined to `crates/obs/src/trace.rs`, the flight recorder
//!    (DESIGN.md §10): one exporter owns the event schema. Consumers
//!    outside library sources (tests, `examples/trace_check.rs`) may
//!    parse the format freely.
//! 7. Stage-cell IO (the cell magic constant and the default store
//!    directory) is confined to `crates/core/src/diskstore.rs`, the
//!    persistent stage store (DESIGN.md §11): one module owns the
//!    checksummed wire layout, so every load is integrity-checked and
//!    every reject is counted. The CLI binary may name the default
//!    directory in its usage text; tests and benches may poke cells.
//! 8. Socket IO (the TCP listener/stream types) is confined to
//!    `crates/serve/src`, the query-service boundary (DESIGN.md §12):
//!    one crate owns accept loops, deadlines, and load shedding, so a
//!    socket anywhere else would dodge the admission control and the
//!    `http.*` counters. Tests and benches may open client sockets.

use std::fs;
use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "vendor" {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

struct Rule {
    /// Shown in violation reports.
    name: &'static str,
    /// Substrings that must not appear (built by concatenation so this
    /// file passes its own scan).
    patterns: Vec<String>,
    /// Directories (relative to the repo root) the rule scans.
    dirs: &'static [&'static str],
    /// Returns true when the repo-relative path is exempt.
    allow: fn(&str) -> bool,
    /// Stop scanning each file at its first test-module marker —
    /// inline `mod tests` blocks are not library code.
    library_lines_only: bool,
}

fn scan(root: &Path, rule: &Rule) -> Vec<String> {
    // Built by concatenation so this file passes its own scan.
    let test_marker = ["#[cfg(te", "st)]"].concat();
    let mut files = Vec::new();
    for dir in rule.dirs {
        rust_sources(&root.join(dir), &mut files);
    }
    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if (rule.allow)(&rel) {
            continue;
        }
        let Ok(text) = fs::read_to_string(file) else { continue };
        for (lineno, line) in text.lines().enumerate() {
            if rule.library_lines_only && line.contains(test_marker.as_str()) {
                break;
            }
            for pat in &rule.patterns {
                if line.contains(pat.as_str()) {
                    violations.push(format!(
                        "{rel}:{}: [{}] {}",
                        lineno + 1,
                        rule.name,
                        line.trim()
                    ));
                }
            }
        }
    }
    violations
}

#[test]
fn repo_lint_rules_hold() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    // Sanity: the directory layout still holds a real code base.
    let mut all = Vec::new();
    for dir in ["crates", "src", "examples", "tests"] {
        rust_sources(&root.join(dir), &mut all);
    }
    assert!(
        all.len() > 50,
        "lint scanned only {} files — directory layout changed?",
        all.len()
    );

    let rules = [
        Rule {
            name: "nondeterminism primitive",
            patterns: vec![["thread_", "rng"].concat(), ["System", "Time"].concat()],
            dirs: &["crates", "src", "examples", "tests"],
            allow: |_| false,
            library_lines_only: false,
        },
        Rule {
            name: "wall-clock timing outside crates/obs",
            patterns: vec![["Inst", "ant"].concat()],
            dirs: &["crates", "src", "tests"],
            allow: |rel| {
                rel.starts_with("crates/obs/")
                    || rel.starts_with("crates/serve/")
                    || rel.starts_with("crates/core/src/bin/")
            },
            library_lines_only: false,
        },
        Rule {
            name: "raw print in library code",
            patterns: vec![["print", "ln!"].concat(), ["eprint", "ln!"].concat()],
            dirs: &["crates", "src"],
            allow: |rel| {
                // Only library sources are in scope — crate tests and
                // benches sit outside src/ and may print freely.
                !(rel.starts_with("src/") || rel.contains("/src/"))
                    || rel.starts_with("crates/core/src/bin/")
                    || rel == "crates/obs/src/log.rs"
            },
            library_lines_only: false,
        },
        Rule {
            name: "bare unwrap in library code",
            patterns: vec![[".unwr", "ap()"].concat()],
            dirs: &["crates", "src"],
            // Same library scope as the print rule; the CLI binary is
            // NOT exempt here — its failure paths carry exit codes.
            allow: |rel| !(rel.starts_with("src/") || rel.contains("/src/")),
            library_lines_only: true,
        },
        Rule {
            name: "unwind boundary outside the recovery module",
            patterns: vec![["catch_", "unwind"].concat()],
            dirs: &["crates", "src", "examples", "tests"],
            allow: |rel| rel == "crates/simcore/src/recover.rs",
            library_lines_only: false,
        },
        Rule {
            name: "trace-event emission outside the flight recorder",
            patterns: vec![["traceEv", "ents"].concat()],
            dirs: &["crates", "src"],
            // Same library scope as the print rule: only src/ files are
            // emitters; tests and examples merely parse the format.
            allow: |rel| {
                !(rel.starts_with("src/") || rel.contains("/src/"))
                    || rel == "crates/obs/src/trace.rs"
            },
            library_lines_only: false,
        },
        Rule {
            name: "stage-cell IO outside the disk store module",
            patterns: vec![
                ["CELL_", "MAGIC"].concat(),
                [".ddoscovery", "/store"].concat(),
            ],
            dirs: &["crates", "src"],
            // Same library scope as the print rule; the CLI binary only
            // names the default directory in its usage text.
            allow: |rel| {
                !(rel.starts_with("src/") || rel.contains("/src/"))
                    || rel == "crates/core/src/diskstore.rs"
                    || rel.starts_with("crates/core/src/bin/")
            },
            library_lines_only: false,
        },
        Rule {
            name: "socket IO outside the serve crate",
            patterns: vec![["TcpList", "ener"].concat(), ["TcpStr", "eam"].concat()],
            dirs: &["crates", "src"],
            // Same library scope as the print rule: only src/ files are
            // in scope, and only crates/serve may touch sockets.
            allow: |rel| {
                !(rel.starts_with("src/") || rel.contains("/src/"))
                    || rel.starts_with("crates/serve/src/")
            },
            library_lines_only: false,
        },
    ];

    let violations: Vec<String> = rules.iter().flat_map(|r| scan(root, r)).collect();
    assert!(
        violations.is_empty(),
        "repo lint violations:\n{}",
        violations.join("\n")
    );
}
