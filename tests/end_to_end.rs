//! End-to-end integration tests: run the scaled-down study once and
//! assert the paper's qualitative findings hold across the whole
//! pipeline (generator → observatories → analytics → experiments).

use analytics::{correlation_matrix, upset, Method, TargetTuple};
use ddoscovery::{all_ids, run_all, ObsId, StudyConfig, StudyRun};
use std::sync::OnceLock;

fn run() -> &'static StudyRun {
    static RUN: OnceLock<StudyRun> = OnceLock::new();
    RUN.get_or_init(|| StudyRun::execute(&StudyConfig::quick()))
}

fn academic_sets() -> Vec<(String, Vec<TargetTuple>)> {
    ObsId::ACADEMIC
        .iter()
        .map(|&id| (id.name().to_string(), run().target_tuples(id).to_vec()))
        .collect()
}

#[test]
fn telescopes_trend_upward() {
    // Fig. 2(a,b): both telescopes saw growth over the study.
    for id in [ObsId::Ucsd, ObsId::Orion] {
        let s = run().normalized_series(id);
        let reg = s.linear_regression().unwrap();
        assert!(reg.slope > 0.0, "{} slope {}", id.name(), reg.slope);
    }
}

#[test]
fn ucsd_dominates_orion() {
    // §6.1 reason (i): the 24x-larger telescope detects far more.
    let ucsd = run().observations(ObsId::Ucsd).len();
    let orion = run().observations(ObsId::Orion).len();
    assert!(ucsd as f64 > 2.5 * orion as f64, "ucsd {ucsd} orion {orion}");
}

#[test]
fn ra_pattern_rise_2020_decline_2022() {
    // Fig. 3: RA rose into 2020H2-2021, declined through 2022.
    for id in [ObsId::Hopscotch, ObsId::AmpPot, ObsId::NetscoutRa] {
        let s = run().normalized_series(id).ewma(12);
        let level = |y: i32, m: u8| {
            let w = simcore::Date::new(y, m, 15).to_sim_time().week_index() as usize;
            s.values[w]
        };
        let peak_2020h2 = level(2020, 9).max(level(2020, 12)).max(level(2021, 2));
        assert!(
            peak_2020h2 > 1.15 * level(2019, 4),
            "{}: no 2020 rise ({peak_2020h2} vs {})",
            id.name(),
            level(2019, 4)
        );
        assert!(
            level(2022, 10) < 0.85 * peak_2020h2,
            "{}: no 2021-22 decline",
            id.name()
        );
    }
}

#[test]
fn hopscotch_misses_2023_recovery_amppot_sees_it() {
    // Fig. 3(a) vs 3(b): the 2023 rise is carried by vectors Hopscotch
    // does not emulate.
    let s_amp = run().normalized_series(ObsId::AmpPot).ewma(12);
    let s_hop = run().normalized_series(ObsId::Hopscotch).ewma(12);
    let w_jan = simcore::Date::new(2023, 1, 15).to_sim_time().week_index() as usize;
    let w_jun = simcore::Date::new(2023, 6, 15).to_sim_time().week_index() as usize;
    let amp_growth = s_amp.values[w_jun] / s_amp.values[w_jan];
    let hop_growth = s_hop.values[w_jun] / s_hop.values[w_jan];
    assert!(
        amp_growth > hop_growth,
        "AmpPot 2023 growth {amp_growth:.2} should exceed Hopscotch {hop_growth:.2}"
    );
}

#[test]
fn same_type_series_correlate_more() {
    // Fig. 6: "time series of the same attack type tended to correlate
    // more strongly".
    let series = run().all_ten_normalized();
    let m = correlation_matrix(&series, Method::Spearman);
    let mut same = Vec::new();
    let mut cross = Vec::new();
    for i in 0..10 {
        for j in (i + 1)..10 {
            if let Some(c) = m.get(i, j) {
                let same_type = ObsId::MAIN_TEN[i].is_direct_path()
                    == ObsId::MAIN_TEN[j].is_direct_path();
                if same_type {
                    same.push(c.rho);
                } else {
                    cross.push(c.rho);
                }
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&same) > mean(&cross) + 0.1,
        "same {:.2} vs cross {:.2}",
        mean(&same),
        mean(&cross)
    );
}

#[test]
fn target_overlap_structure() {
    // Fig. 7 structure: ORION mostly inside UCSD; honeypots overlap
    // partially; the all-four intersection is a sliver.
    let u = upset(&academic_sets());
    let idx = |name: &str| u.names.iter().position(|n| n == name).unwrap();
    let orion_in_ucsd = u.overlap_share(idx("ORION"), idx("UCSD"));
    assert!(orion_in_ucsd > 0.6, "ORION in UCSD {orion_in_ucsd:.2}");
    let amppot_hops = u.overlap_share(idx("AmpPot"), idx("Hopscotch"));
    assert!(
        (0.2..0.95).contains(&amppot_hops),
        "AmpPot∩Hopscotch {amppot_hops:.2} should be partial"
    );
    let all_four = u.at_least(u.full_mask()) as f64 / u.total_distinct as f64;
    assert!(all_four > 0.0, "all-four overlap should exist");
    assert!(all_four < 0.02, "all-four should be well below 2% ({all_four:.4})");
}

#[test]
fn netscout_confirms_multi_observatory_targets_best() {
    // Fig. 9: "Netscout baseline data shows the largest relative
    // overlap with the targets seen by all four observatories".
    let sets = academic_sets();
    let baseline = run().netscout_baseline_tuples();
    let c = analytics::confirmation_shares(&sets, &baseline);
    let full_mask = (1u16 << sets.len()) - 1;
    let full_share = c
        .rows
        .iter()
        .find(|(m, _, _)| *m == full_mask)
        .map(|(_, _, s)| *s)
        .unwrap_or(0.0);
    let single_shares: Vec<f64> = c
        .rows
        .iter()
        .filter(|(m, _, _)| m.count_ones() == 1)
        .map(|(_, _, s)| *s)
        .collect();
    let max_single = single_shares.iter().cloned().fold(0.0, f64::max);
    assert!(
        full_share > max_single,
        "all-four confirmation {full_share:.3} should beat singles {max_single:.3}"
    );
}

#[test]
fn netscout_share_crossing_in_2021ish() {
    // Fig. 5: the DP share durably crosses 50 % around 2021Q2 (quick
    // scale is noisier, so accept a generous window).
    let ra = run().weekly_series(ObsId::NetscoutRa).ewma(12);
    let dp = run().weekly_series(ObsId::NetscoutDp).ewma(12);
    let mut last_cross = None;
    for w in 0..ra.len() {
        let (r, d) = (ra.values[w], dp.values[w]);
        if !r.is_finite() || !d.is_finite() || r + d <= 0.0 {
            continue;
        }
        if d / (r + d) > 0.5 {
            last_cross.get_or_insert(w);
        } else {
            last_cross = None;
        }
    }
    let w = last_cross.expect("DP share should durably cross 50%");
    let lo = simcore::Date::new(2020, 3, 1).to_sim_time().week_index() as usize;
    let hi = simcore::Date::new(2022, 12, 1).to_sim_time().week_index() as usize;
    assert!(
        (lo..hi).contains(&w),
        "crossing week {w} ({}) outside the expected window",
        simcore::time::week_start_date(w as i64)
    );
}

#[test]
fn akamai_joins_are_much_smaller_than_netscout() {
    // §7.2: the Akamai join (scoped to the Prolexic-announced
    // prefixes) confirms far fewer academic targets than Netscout's
    // baseline (the paper reports ≈100×; we assert the direction with
    // headroom at this scale).
    let sets = academic_sets();
    let mean_share = |industry: &[TargetTuple]| -> f64 {
        let c = analytics::confirmation_shares(&sets, industry);
        let total: usize = c.rows.iter().map(|(_, n, _)| n).sum();
        let confirmed: f64 = c.rows.iter().map(|(_, n, s)| *n as f64 * s).sum();
        confirmed / total.max(1) as f64
    };
    let netscout = mean_share(&run().netscout_baseline_tuples());
    let akamai = mean_share(&run().akamai_tuples());
    assert!(
        netscout > 3.0 * akamai,
        "netscout share {netscout:.5} vs akamai {akamai:.5}"
    );
}

#[test]
fn all_experiments_produce_csv() {
    let results = run_all(run());
    assert_eq!(results.len(), all_ids().len());
    for r in &results {
        for (name, contents) in &r.csv {
            assert!(!contents.is_empty(), "{name} empty");
            // Markdown artifacts (the knowledge base) only need content;
            // CSV artifacts must be rectangular.
            if !name.ends_with(".csv") {
                assert!(
                    name.ends_with(".md") || name.ends_with(".txt"),
                    "{name}: unexpected artifact type"
                );
                continue;
            }
            let mut lines = contents.lines();
            let header = lines.next().unwrap_or_default();
            assert!(header.contains(','), "{name} header: {header}");
            let cols = header.split(',').count();
            for (i, line) in lines.enumerate().take(50) {
                assert_eq!(
                    line.split(',').count(),
                    cols,
                    "{name} row {i} column mismatch"
                );
            }
        }
    }
}

#[test]
fn brazil_campaign_spikes_honeypots_not_industry() {
    // §6.2 / Appendix I: the mid-2022 carpet-bombing spike is a
    // honeypot phenomenon.
    let window = |s: &analytics::WeeklySeries, y: i32, m: u8| -> f64 {
        let w = simcore::Date::new(y, m, 15).to_sim_time().week_index() as usize;
        s.values[w.saturating_sub(2)..(w + 2).min(s.values.len())]
            .iter()
            .filter(|v| v.is_finite())
            .sum::<f64>()
            / 4.0
    };
    let hops = run().normalized_series(ObsId::Hopscotch);
    let spike = window(&hops, 2022, 6) / window(&hops, 2022, 3).max(1e-9);
    assert!(spike > 1.3, "Hopscotch mid-2022 spike missing ({spike:.2})");
    let ns = run().normalized_series(ObsId::NetscoutRa);
    let ns_spike = window(&ns, 2022, 6) / window(&ns, 2022, 3).max(1e-9);
    assert!(
        ns_spike < spike * 0.8,
        "Netscout should not see the carpet spike (hp {spike:.2} vs ns {ns_spike:.2})"
    );
}
