//! Cross-crate packet-fidelity tests: drive the packet-level detectors
//! with attacks produced by the real generator (not hand-built ones)
//! and check they agree with the event-level observatory models.

use attackgen::packets::{backscatter_packets, sensor_request_packets};
use attackgen::{AttackClass, AttackGenerator, GenConfig};
use honeypot::{merge_sensor_flows, HoneypotConfig, HoneypotDetector};
use netmodel::{InternetPlan, NetScale};
use simcore::SimRng;
use telescope::{RsdosConfig, RsdosDetector, Telescope};

fn plan_and_attacks() -> (InternetPlan, Vec<attackgen::Attack>) {
    let mut rng = SimRng::new(2024);
    let plan = InternetPlan::build(&NetScale::tiny(), &mut rng);
    let mut cfg = GenConfig::default();
    cfg.timeline.dp_base_per_week = 15.0;
    cfg.timeline.ra_base_per_week = 25.0;
    cfg.random_campaign_count = 0;
    cfg.campaign_rate_scale = 0.0;
    let root = SimRng::new(7);
    let gen = AttackGenerator::new(&plan, cfg, &root);
    let mut cols = attackgen::AttackColumns::new();
    // Two months of attacks are plenty for fidelity checks.
    for week in 0..9 {
        gen.generate_week(week, &mut cols);
    }
    (plan, cols.to_vec())
}

#[test]
fn corsaro_agreement_on_generated_attacks() {
    let (plan, attacks) = plan_and_attacks();
    let tele = Telescope::ucsd(&plan);
    let root = SimRng::new(11);
    let mut agree = 0usize;
    let mut total = 0usize;
    for a in attacks
        .iter()
        .filter(|a| a.class == AttackClass::DirectPathSpoofed)
        .take(80)
    {
        let event = tele.observe(a, &root).is_some();
        let mut prng = root.fork(a.id.0).fork_named("fidelity");
        let pkts = backscatter_packets(a, &tele.spec, &mut prng);
        let mut det = RsdosDetector::new(RsdosConfig::default());
        for p in &pkts {
            det.ingest(p);
        }
        let packet = !det.finish().is_empty();
        total += 1;
        agree += (event == packet) as usize;
    }
    assert!(total >= 40, "too few RSDoS attacks generated ({total})");
    let rate = agree as f64 / total as f64;
    assert!(rate >= 0.8, "agreement {rate:.2} over {total} attacks");
}

#[test]
fn honeypot_detector_sees_generated_reflection_attacks() {
    let (plan, attacks) = plan_and_attacks();
    let cfg = HoneypotConfig::hopscotch(&plan);
    let sensor = cfg.sensors[0];
    let root = SimRng::new(13);
    let mut detected = 0usize;
    let mut total = 0usize;
    let mut det = HoneypotDetector::new(cfg.clone());
    let mut packets = Vec::new();
    for a in attacks
        .iter()
        .filter(|a| {
            a.class == AttackClass::ReflectionAmplification
                && a.reflectors.map(|r| cfg.supports(r.vector)) == Some(true)
        })
        .take(60)
    {
        let mut prng = root.fork(a.id.0).fork_named("hp-fidelity");
        let pkts = sensor_request_packets(a, sensor, &mut prng);
        let refl = a.reflectors.unwrap();
        let expected = a.pps / refl.reflector_count.max(1) as f64 * a.duration_secs as f64
            / a.targets.len() as f64;
        // Count only comfortably-above-threshold attacks for the
        // detection-rate check (near-threshold ones are legitimately
        // coin flips).
        if expected > 3.0 * cfg.min_packets as f64 {
            total += 1;
            let mut one = HoneypotDetector::new(cfg.clone());
            for p in &pkts {
                one.ingest(p);
            }
            detected += (!one.finish().is_empty()) as usize;
        }
        packets.extend(pkts);
    }
    assert!(total >= 10, "too few qualifying RA attacks ({total})");
    assert!(
        detected as f64 >= 0.9 * total as f64,
        "detected {detected}/{total}"
    );
    // The merged stream across attacks still yields sane flows.
    packets.sort_by_key(|p| p.time);
    for p in &packets {
        det.ingest(p);
    }
    let flows = det.finish();
    let events = merge_sensor_flows(&flows, cfg.timeout_secs);
    assert!(!events.is_empty());
    for e in &events {
        assert!(e.first_seen <= e.last_seen);
        assert!(e.packets >= cfg.min_packets);
    }
}

#[test]
fn generated_carpet_attacks_reconstructable() {
    // The Appendix-I reconstruction groups a carpet attack's per-victim
    // observations back into one event.
    use honeypot::{carpet_prefix, reconstruct_carpet_attacks};
    let (plan, attacks) = plan_and_attacks();
    let carpet = attacks
        .iter()
        .find(|a| a.is_carpet_bombing() && plan.routed_prefix_of(a.targets[0]).is_some());
    let Some(carpet) = carpet else {
        // Carpet probability is small; with a tiny sample it can miss.
        return;
    };
    // Fabricate per-victim observations as a honeypot would emit them.
    let per_victim: Vec<attackgen::ObservedAttack> = carpet
        .targets
        .iter()
        .enumerate()
        .map(|(i, &t)| attackgen::ObservedAttack {
            attack_id: attackgen::AttackId(carpet.id.0 * 1000 + i as u64),
            start: carpet.start.plus_secs(i as i64),
            targets: vec![t],
        })
        .collect();
    let merged = reconstruct_carpet_attacks(&plan, &per_victim, 3600);
    // All targets share one routed block (generator invariant), so they
    // collapse into a single event covering every victim.
    let prefixes: std::collections::HashSet<_> = carpet
        .targets
        .iter()
        .filter_map(|&t| carpet_prefix(&plan, t))
        .collect();
    if prefixes.len() == 1 {
        assert_eq!(merged.len(), 1, "carpet should merge into one event");
        assert_eq!(merged[0].targets.len(), carpet.targets.len());
    } else {
        assert!(merged.len() <= per_victim.len());
    }
}
