//! Reproducibility contract: the whole study is a pure function of the
//! seed, and observation order / concurrency never leaks into results.

use ddoscovery::{ObsId, StudyConfig, StudyRun};

fn tiny_cfg(seed: u64) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = seed;
    // Shrink further: determinism doesn't need volume.
    cfg.gen.timeline.dp_base_per_week = 20.0;
    cfg.gen.timeline.ra_base_per_week = 30.0;
    cfg.gen.random_campaign_count = 2;
    // Bypass the cross-run stage cache: these tests assert that
    // *recomputation* is deterministic, which a cache hit (returning
    // the very same `Arc`s) would make vacuous.
    cfg.stage_cache = Some(0);
    cfg
}

#[test]
fn identical_seeds_identical_results() {
    let a = StudyRun::execute(&tiny_cfg(99));
    let b = StudyRun::execute(&tiny_cfg(99));
    assert_eq!(a.attacks.len(), b.attacks.len());
    for (x, y) in a.attacks.iter().zip(b.attacks.iter()) {
        assert_eq!(x, y);
    }
    for id in ObsId::MAIN_TEN {
        assert_eq!(
            a.observations(id),
            b.observations(id),
            "{} observations diverged",
            id.name()
        );
        // Bitwise comparison: masked weeks are NaN, and NaN != NaN.
        let av: Vec<u64> = a.weekly_series(id).values.iter().map(|v| v.to_bits()).collect();
        let bv: Vec<u64> = b.weekly_series(id).values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(av, bv, "{} weekly series diverged", id.name());
    }
    assert_eq!(a.netscout_baseline_tuples(), b.netscout_baseline_tuples());
}

#[test]
fn worker_count_never_changes_results() {
    // The execution-engine contract: a study executed on 1, 2, or N
    // workers is byte-identical — same attacks, same observation ids in
    // the same order for every one of the eleven series, same weekly
    // bit patterns, same baseline sample.
    use simcore::ExecPool;
    let cfg = tiny_cfg(41);
    let serial = StudyRun::execute_on(&cfg, &ExecPool::serial());
    for workers in [2, 3, 8] {
        let par = StudyRun::execute_on(&cfg, &ExecPool::new(workers));
        assert_eq!(serial.attacks, par.attacks, "attacks diverged at {workers} workers");
        for id in ObsId::ALL {
            assert_eq!(
                serial.observations(id),
                par.observations(id),
                "{} observations diverged at {workers} workers",
                id.name()
            );
            let sv: Vec<u64> =
                serial.weekly_series(id).values.iter().map(|v| v.to_bits()).collect();
            let pv: Vec<u64> =
                par.weekly_series(id).values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sv, pv, "{} weekly series diverged at {workers} workers", id.name());
        }
        assert_eq!(
            serial.netscout_baseline_tuples(),
            par.netscout_baseline_tuples()
        );
    }
    // The config-level knob routes through the same machinery.
    let mut one = cfg.clone();
    one.workers = Some(1);
    let mut four = cfg.clone();
    four.workers = Some(4);
    let a = StudyRun::execute(&one);
    let b = StudyRun::execute(&four);
    assert_eq!(a.attacks, b.attacks);
    for id in ObsId::ALL {
        assert_eq!(a.observations(id), b.observations(id));
    }
}

#[test]
fn parallel_generation_matches_serial() {
    use attackgen::AttackGenerator;
    use netmodel::InternetPlan;
    use simcore::{ExecPool, SimRng};
    let cfg = tiny_cfg(43);
    let root = SimRng::new(cfg.seed);
    let mut plan_rng = root.fork_named("plan");
    let plan = InternetPlan::build(&cfg.net, &mut plan_rng);
    let gen = AttackGenerator::new(&plan, cfg.gen.clone(), &root);
    let serial = gen.generate_study_on(&ExecPool::serial());
    for workers in [2, 5] {
        let par = gen.generate_study_on(&ExecPool::new(workers));
        assert_eq!(serial, par, "generation diverged at {workers} workers");
    }
}

#[test]
fn different_seeds_differ() {
    let a = StudyRun::execute(&tiny_cfg(1));
    let b = StudyRun::execute(&tiny_cfg(2));
    // Attack populations differ in content (counts may coincide).
    let same = a
        .attacks
        .iter()
        .zip(b.attacks.iter())
        .filter(|(x, y)| x.targets == y.targets && x.start == y.start)
        .count();
    assert!(
        (same as f64) < 0.01 * a.attacks.len() as f64,
        "{same} identical attacks"
    );
}

#[test]
fn observation_independent_of_stream_order() {
    // Event-level verdicts are keyed by (attack id, observatory), so
    // observing a shuffled stream must produce the same verdict set.
    use simcore::SimRng;
    use telescope::Telescope;
    let cfg = tiny_cfg(5);
    let run = StudyRun::execute(&cfg);
    let root = SimRng::new(cfg.seed).fork_named("observatories");
    let tele = Telescope::ucsd(&run.plan);
    let attacks = run.attacks.to_vec();
    let forward = tele.observe_all(&attacks, &root);
    let mut reversed_attacks = attacks.clone();
    reversed_attacks.reverse();
    let mut backward = tele.observe_all(&reversed_attacks, &root);
    backward.sort_by_key(|o| o.attack_id);
    let mut forward_sorted = forward.clone();
    forward_sorted.sort_by_key(|o| o.attack_id);
    assert_eq!(forward_sorted, backward);
}

#[test]
fn config_serde_roundtrip_preserves_results() {
    let cfg = tiny_cfg(7);
    let json = serde_json::to_string(&cfg).unwrap();
    let cfg2: StudyConfig = serde_json::from_str(&json).unwrap();
    let a = StudyRun::execute(&cfg);
    let b = StudyRun::execute(&cfg2);
    assert_eq!(a.attacks.len(), b.attacks.len());
    for id in ObsId::MAIN_TEN {
        assert_eq!(a.observations(id).len(), b.observations(id).len());
    }
}
