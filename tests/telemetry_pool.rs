//! Cross-crate telemetry tests: counters shared by `ExecPool` workers
//! must sum exactly, and the pool must leave utilization metrics in
//! the global registry without perturbing results.

use simcore::ExecPool;

#[test]
fn concurrent_pool_increments_sum_exactly() {
    // One counter, many workers, dynamic shard claiming: every item
    // accounted for exactly once regardless of scheduling.
    let registry = obs::metrics::Registry::new();
    let counter = registry.counter("test.pool_increments");
    let items: Vec<u32> = (0..25_000).collect();
    for workers in [1, 2, 8] {
        let before = counter.get();
        let out = ExecPool::new(workers).par_chunks_indexed(&items, 7, |_, shard| {
            for _ in shard {
                counter.inc();
            }
            shard.len()
        });
        assert_eq!(out.iter().sum::<usize>(), items.len());
        assert_eq!(
            counter.get() - before,
            items.len() as u64,
            "workers={workers} lost or double-counted increments"
        );
    }
}

#[test]
fn pool_fanout_records_utilization_metrics() {
    let tasks = obs::metrics::counter("pool.tasks");
    let calls = obs::metrics::counter("pool.calls");
    let busy = obs::metrics::histogram("pool.worker_busy_ns", &obs::metrics::LATENCY_NS);
    let (t0, c0, b0) = (tasks.get(), calls.get(), busy.count());

    let items: Vec<u64> = (0..4096).collect();
    let sums = ExecPool::new(4).par_chunks_indexed(&items, 64, |_, shard| {
        shard.iter().map(|v| v.wrapping_mul(31)).sum::<u64>()
    });
    assert_eq!(sums.len(), 64);

    // 64 shards dispatched, at least one parallel call, and busy-time
    // samples for its workers. Other tests in this binary may also use
    // the pool, so assert deltas as lower bounds.
    assert!(tasks.get() >= t0 + 64, "pool.tasks did not advance");
    assert!(calls.get() >= c0 + 1, "pool.calls did not advance");
    assert!(busy.count() >= b0 + 2, "no worker busy-time samples");

    let imbalance = obs::metrics::gauge("pool.imbalance").get();
    assert!(
        imbalance >= 1.0,
        "imbalance {imbalance} must be max/mean >= 1 after a parallel call"
    );
}

#[test]
fn serial_pool_skips_parallel_metrics_but_counts_tasks() {
    let tasks = obs::metrics::counter("pool.tasks");
    let before = tasks.get();
    let items: Vec<u8> = vec![0; 10];
    ExecPool::serial().par_chunks_indexed(&items, 1, |_, s| s.len());
    assert!(tasks.get() >= before + 10);
}
