//! Property tests pinning the §5 aggregation seams (ISSUE 6 satellite):
//! `weekly_counts` and `distinct_target_tuples` behavior is frozen
//! *before* the columnar refactor, so the SoA equivalents are checked
//! against these invariants rather than against whatever the new code
//! happens to do.
//!
//! Pinned contracts:
//!
//! * `weekly_counts` — always `STUDY_WEEKS` buckets; every in-study
//!   observation lands in exactly the bucket of its week index;
//!   out-of-range weeks (negative starts, past study end) are silently
//!   dropped, never a panic or an out-of-bounds write.
//! * `distinct_target_tuples` — sorted ascending, strictly deduplicated,
//!   and exactly the set of `(start day, target ip)` pairs; the borrowed
//!   `distinct_target_tuples_of` path agrees with the owned path on any
//!   subset without cloning records.

use attackgen::{
    distinct_target_tuples, distinct_target_tuples_of, weekly_counts, AttackId,
    ObservationColumns, ObservedAttack,
};
use netmodel::Ipv4;
use proptest::prelude::*;
use simcore::{SimTime, STUDY_WEEKS};
use std::collections::BTreeSet;

/// Seconds spanning well past both study edges (the study is ~234
/// weeks; this covers ± several years outside it, including the exact
/// boundary instants the bucketing must get right).
const WILD_SECS: std::ops::Range<i64> = -200_000_000i64..400_000_000i64;

fn obs(start_secs: i64, ips: &[u32]) -> ObservedAttack {
    ObservedAttack {
        attack_id: AttackId(start_secs.unsigned_abs()),
        start: SimTime(start_secs),
        targets: ips.iter().map(|&i| Ipv4(i)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bucketing: every observation is either counted in exactly its
    /// own week's bucket or dropped because it falls outside the study
    /// — nothing is double counted, nothing panics.
    #[test]
    fn weekly_counts_bucket_or_drop(
        starts in proptest::collection::vec(WILD_SECS, 0..40),
    ) {
        let observations: Vec<ObservedAttack> =
            starts.iter().map(|&s| obs(s, &[1])).collect();
        let counts = weekly_counts(&observations);
        prop_assert_eq!(counts.len(), STUDY_WEEKS);

        let in_range = observations
            .iter()
            .filter(|o| (0..STUDY_WEEKS as i64).contains(&o.week()))
            .count();
        let total: f64 = counts.iter().sum();
        prop_assert_eq!(total as usize, in_range, "counts must equal in-study observations");

        // Per-bucket recount from first principles.
        for (w, &c) in counts.iter().enumerate() {
            let expect = observations
                .iter()
                .filter(|o| o.week() == w as i64)
                .count();
            prop_assert_eq!(c as usize, expect, "week {} miscounted", w);
        }
    }

    /// The exact boundary weeks: second 0 is week 0, the last second
    /// before the study end is the last week, one week past is dropped.
    #[test]
    fn weekly_counts_boundaries(off in 0i64..604_800) {
        let last_week_start = (STUDY_WEEKS as i64 - 1) * 604_800;
        let observations = vec![
            obs(off, &[1]),                    // inside week 0
            obs(-1 - off, &[1]),               // just before the study
            obs(last_week_start + off % 604_800, &[1]), // inside last week
            obs(STUDY_WEEKS as i64 * 604_800 + off, &[1]), // past the end
        ];
        let counts = weekly_counts(&observations);
        prop_assert_eq!(counts[0], 1.0);
        prop_assert_eq!(counts[STUDY_WEEKS - 1], 1.0);
        let total: f64 = counts.iter().sum();
        prop_assert_eq!(total, 2.0, "out-of-study observations must be dropped");
    }

    /// Tuples: sorted, strictly deduplicated, and exactly the
    /// set-theoretic union of every observation's (day, ip) pairs.
    #[test]
    fn distinct_tuples_are_the_sorted_set(
        records in proptest::collection::vec(
            (WILD_SECS, proptest::collection::vec(0u32..50, 0..5)),
            0..30,
        ),
    ) {
        let observations: Vec<ObservedAttack> =
            records.iter().map(|(s, ips)| obs(*s, ips)).collect();
        let tuples = distinct_target_tuples(&observations);

        // Strictly increasing ⇒ both sorted and deduplicated.
        for pair in tuples.windows(2) {
            prop_assert!(pair[0] < pair[1], "tuples not strictly sorted: {:?}", pair);
        }

        let expect: BTreeSet<(i64, Ipv4)> = observations
            .iter()
            .flat_map(|o| o.target_tuples())
            .collect();
        prop_assert_eq!(tuples.len(), expect.len());
        for (got, want) in tuples.iter().zip(expect.iter()) {
            prop_assert_eq!(got, want);
        }
    }

    /// Columnar equivalence (DESIGN.md §9): the SoA projections over
    /// an `ObservationColumns` arena agree bit-for-bit with the AoS
    /// reference paths on the same records — including negative
    /// starts, out-of-study weeks, and empty target lists — and the
    /// round trip through the columns loses nothing.
    #[test]
    fn columnar_projections_match_aos(
        records in proptest::collection::vec(
            (WILD_SECS, proptest::collection::vec(0u32..50, 0..5)),
            0..30,
        ),
    ) {
        let observations: Vec<ObservedAttack> =
            records.iter().map(|(s, ips)| obs(*s, ips)).collect();
        let columns = ObservationColumns::from_observed(&observations);
        prop_assert_eq!(columns.len(), observations.len());

        prop_assert_eq!(
            columns.weekly_counts(),
            weekly_counts(&observations),
            "columnar weekly_counts diverged from the AoS reference"
        );
        prop_assert_eq!(
            columns.distinct_target_tuples(),
            distinct_target_tuples(&observations),
            "columnar distinct_target_tuples diverged from the AoS reference"
        );

        // Row views and the full round trip preserve every record.
        for (i, o) in observations.iter().enumerate() {
            let row = columns.get(i);
            prop_assert_eq!(row.attack_id, o.attack_id);
            prop_assert_eq!(row.start, o.start);
            prop_assert_eq!(row.targets, o.targets.as_slice());
        }
        prop_assert_eq!(columns.to_vec(), observations);
    }

    /// The borrowed-iterator path agrees with the owned path on any
    /// subset of the records (this is the §7.2 baseline-sample shape:
    /// a `Vec<&ObservedAttack>` projected without cloning).
    #[test]
    fn borrowed_path_matches_owned(
        records in proptest::collection::vec(
            (WILD_SECS, proptest::collection::vec(0u32..20, 1..4)),
            1..20,
        ),
        keep_mask in any::<u32>(),
    ) {
        let observations: Vec<ObservedAttack> =
            records.iter().map(|(s, ips)| obs(*s, ips)).collect();
        let subset: Vec<&ObservedAttack> = observations
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << (i % 32)) != 0)
            .map(|(_, o)| o)
            .collect();
        let owned: Vec<ObservedAttack> = subset.iter().map(|&o| o.clone()).collect();
        prop_assert_eq!(
            distinct_target_tuples_of(subset.into_iter()),
            distinct_target_tuples(&owned)
        );
    }
}
