//! Fault-injection acceptance suite (DESIGN.md §8): the degraded-mode
//! pipeline must stay deterministic and finite.
//!
//! * A fixed `FaultPlan` produces byte-identical output at any worker
//!   count and any stage-cache setting — including with recoverable
//!   control-plane chaos injected on top.
//! * An *empty* fault plan is bitwise inert: it consumes no randomness
//!   and touches no float path, so today's output reproduces exactly.
//! * An outage blacking out baseline weeks degrades into masked (NaN)
//!   weeks, never zero counts: normalization, trends, and correlations
//!   stay finite and the lost weeks are reported in the run manifest.
//!
//! Tests share the process-global metrics registry and stage cache, so
//! each runs under a test-unique seed and counter assertions measure
//! deltas.

use ddoscovery::{ChaosPlan, FaultPlan, ObsId, OutageSpec, StudyConfig, StudyRun};
use simcore::ExecPool;

/// Silence the default panic printer for *injected* chaos panics (they
/// are caught and retried by design; the noise would drown real
/// failures). Anything else still reaches the previous hook.
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("chaos:") {
                prev(info);
            }
        }));
    });
}

/// A small, fast study under a caller-chosen seed (unique per test).
fn tiny_cfg(seed: u64) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = seed;
    cfg.gen.timeline.dp_base_per_week = 20.0;
    cfg.gen.timeline.ra_base_per_week = 30.0;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg.missing_data = false;
    cfg
}

/// A representative fault plan touching all three data-plane fault
/// kinds: a telescope outage, honeypot fleet churn, flow degradation.
fn faulty_plan() -> FaultPlan {
    FaultPlan {
        outages: vec![
            OutageSpec {
                source: "ucsd".into(),
                start_week: 40,
                end_week: 55,
            },
            OutageSpec {
                source: "ixp".into(),
                start_week: 100,
                end_week: 110,
            },
        ],
        honeypot_churn: Some(ddoscovery::ChurnSpec {
            decline_per_year: 0.15,
            offline_weekly: 0.05,
        }),
        flow_degradation: Some(ddoscovery::DegradationSpec {
            drop_fraction: 0.2,
            start_week: 120,
        }),
        seed: 0xFA17,
    }
}

/// Every projection the paper consumes, flattened to bytes (bitwise:
/// NaN masks compare exactly).
fn output_fingerprint(run: &StudyRun) -> Vec<u8> {
    let mut out = Vec::new();
    for id in ObsId::ALL {
        out.extend(id.slug().as_bytes());
        for v in &run.weekly_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for v in &run.normalized_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for &(day, ip) in run.target_tuples(id) {
            out.extend(day.to_le_bytes());
            out.extend(ip.0.to_le_bytes());
        }
    }
    out
}

/// The headline invariant: one fault plan, one seed ⇒ one output, no
/// matter how the work is scheduled or cached — even with recoverable
/// control-plane chaos injected into every stage and pool shard.
#[test]
fn faulted_output_is_invariant_across_workers_cache_and_chaos() {
    quiet_chaos_panics();
    let mut base = tiny_cfg(0xC4A0_5001);
    base.faults = faulty_plan();
    let reference = {
        let mut cfg = base.clone();
        cfg.workers = Some(1);
        cfg.stage_cache = Some(0);
        output_fingerprint(&StudyRun::execute_on(&cfg, &ExecPool::new(1)))
    };
    for workers in [1usize, 4, 8] {
        for cache in [0usize, 64] {
            for chaos in [None, Some(ChaosPlan::recoverable(0.3, 0xBAD))] {
                let mut cfg = base.clone();
                cfg.workers = Some(workers);
                cfg.stage_cache = Some(cache);
                cfg.chaos = chaos;
                let fp = output_fingerprint(&StudyRun::execute_on(&cfg, &ExecPool::new(workers)));
                assert!(
                    fp == reference,
                    "output diverged at workers={workers} cache={cache} chaos={}",
                    chaos.is_some(),
                );
            }
        }
    }
    // The chaos runs above really did inject and recover faults.
    assert!(obs::metrics::counter("fault.injected").get() > 0);
    assert!(obs::metrics::counter("fault.recovered").get() > 0);
}

/// An empty fault plan is bitwise inert: even with a different fault
/// seed (which re-keys the observation stage fingerprint), the output
/// bytes are those of the default, fault-free study.
#[test]
fn empty_fault_plan_is_bitwise_inert() {
    let cfg = tiny_cfg(0xC4A0_5002);
    let baseline = output_fingerprint(&StudyRun::execute(&cfg));
    let mut reseeded = cfg.clone();
    reseeded.faults = FaultPlan {
        seed: 0xDEAD_BEEF,
        ..FaultPlan::default()
    };
    assert!(reseeded.faults.is_empty());
    assert!(
        output_fingerprint(&StudyRun::execute(&reseeded)) == baseline,
        "an empty fault plan must not perturb a single byte"
    );
}

/// An outage covering part of the 15-week normalization baseline must
/// degrade into masked weeks — the baseline slides to observed weeks,
/// every downstream statistic stays finite, and the manifest names the
/// lost weeks. Masked weeks are NaN, never zero counts.
#[test]
fn baseline_outage_degrades_gracefully() {
    let mut cfg = tiny_cfg(0xC4A0_5003);
    cfg.faults.outages.push(OutageSpec {
        source: "ucsd".into(),
        start_week: 5,
        end_week: 25,
    });
    let degraded_before = obs::metrics::counter("fault.degraded_weeks").get();
    let run = StudyRun::execute(&cfg);
    assert!(obs::metrics::counter("fault.degraded_weeks").get() >= degraded_before + 20);

    // The raw weekly series masks the outage as missing data.
    let weekly = run.weekly_series(ObsId::Ucsd);
    assert!(weekly.values[10].is_nan(), "outage weeks must be NaN");
    assert!(weekly.values[30].is_finite());
    assert_eq!(weekly.week_mask().missing.len(), 20);

    // Normalization slides past the gap instead of dividing by a
    // poisoned baseline: present weeks stay finite and positive.
    let normalized = run.normalized_series(ObsId::Ucsd);
    let present: Vec<f64> = normalized
        .values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    assert!(!present.is_empty());
    assert!(present.iter().all(|v| v.is_finite()));
    assert!(present.iter().any(|&v| v > 0.0));

    // Trend fitting and cross-observatory correlation operate on the
    // valid-week intersection and stay defined.
    assert!(normalized.linear_regression().is_some());
    let other = run.normalized_series(ObsId::Hopscotch);
    let corr = analytics::spearman(&normalized.values, &other.values)
        .expect("correlation over the valid-week intersection");
    assert!(corr.rho.is_finite());

    // The run manifest reports which weeks were degraded.
    let manifest = obs::manifest::RunManifest::capture(obs::manifest::RunInfo {
        scenario: "chaos-test".into(),
        seed: cfg.seed,
        workers: cfg.workers,
        config_hash: 0,
        stages: Vec::new(),
        degraded_weeks: cfg.faults.degraded_weeks(),
    });
    let json = manifest.to_json();
    assert!(json.contains("\"degraded_weeks\""));
    assert!(json.contains("\"ucsd\""));
    let weeks = &manifest.run.degraded_weeks;
    assert_eq!(weeks.len(), 1);
    assert_eq!(weeks[0].0, "ucsd");
    assert_eq!(weeks[0].1.len(), 20);
    assert!(manifest.summary_table().contains("degraded source"));
}

/// Permanent chaos (failures ≥ the retry budget) surfaces as the same
/// deterministic panic — lowest failing shard — for every worker count,
/// so even the *failure mode* is schedule-independent.
#[test]
fn permanent_chaos_fails_deterministically() {
    quiet_chaos_panics();
    let mut cfg = tiny_cfg(0xC4A0_5004);
    cfg.chaos = Some(ChaosPlan {
        probability: 1.0,
        failures_per_site: simcore::recover::MAX_ATTEMPTS,
        seed: 3,
    });
    let message_at = |workers: usize| {
        let cfg = cfg.clone();
        match simcore::recover::capture("chaos-test", move || {
            StudyRun::execute_on(&cfg, &ExecPool::new(workers))
        }) {
            Ok(_) => panic!("permanent chaos must abort the run"),
            Err(caught) => caught.message,
        }
    };
    let serial = message_at(1);
    assert!(serial.contains("gave up after"), "message: {serial}");
    assert_eq!(serial, message_at(4), "failure must not depend on schedule");
}
