//! 10M-attack scale smoke (DESIGN.md §9, `make scale`): the columnar
//! population must carry a tens-of-millions-attack study through
//! generate → observe → project in release mode on this container.
//!
//! `#[ignore]`d: the run takes on the order of a minute in release and
//! would dominate the tier-1 suite. Run it with
//! `cargo test --release --test scale_smoke -- --ignored`.

use ddoscovery::{ObsId, StudyConfig, StudyRun};
use simcore::ExecPool;

/// Approximate attack volume of `StudyConfig::paper()`.
const PAPER_VOLUME: f64 = 600_000.0;
const TARGET: f64 = 10_000_000.0;

#[test]
#[ignore = "10M-attack release-only smoke; run via `make scale`"]
fn ten_million_attack_pipeline_completes() {
    if cfg!(debug_assertions) {
        // Debug builds are ~20x slower; the smoke is a release gate.
        return;
    }

    let mut cfg = StudyConfig::paper();
    cfg.seed = 0x5CA1_AB1E;
    let scale = TARGET / PAPER_VOLUME;
    cfg.gen.timeline.dp_base_per_week *= scale;
    cfg.gen.timeline.ra_base_per_week *= scale;
    cfg.stage_cache = Some(0);
    cfg.missing_data = false;

    let run = StudyRun::execute_on(&cfg, &ExecPool::global());

    let n = run.attacks.len();
    assert!(
        (8_000_000..16_000_000).contains(&n),
        "10M-scale config produced {n} attacks"
    );

    // The observe stage must have fed every observatory, and the
    // projections must come back non-degenerate from the same arena.
    for &id in &ObsId::ALL {
        let observed = run.observations(id).len();
        assert!(observed > 0, "{id:?} observed nothing at 10M scale");
        let series = run.weekly_series(id);
        assert!(
            series.values.iter().any(|&v| v > 0.0),
            "{id:?} weekly series is all-zero at 10M scale"
        );
        assert!(
            !run.target_tuples(id).is_empty(),
            "{id:?} produced no target tuples at 10M scale"
        );
    }

    // Per-stage peak-RSS accounting must have populated the manifest
    // gauges for every stage of this run.
    for stage in ["plan", "attacks", "observe"] {
        let bytes = obs::metrics::gauge(&format!("run.peak_rss.{stage}")).get();
        assert!(bytes > 0.0, "run.peak_rss.{stage} gauge not recorded");
    }
}
