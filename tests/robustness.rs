//! Robustness / failure-injection tests: degenerate configurations and
//! hostile inputs must degrade gracefully, never panic, and keep the
//! analytics well-defined.

use analytics::{correlation_matrix, upset, Method, WeeklySeries};
use ddoscovery::{all_ids, run_experiment, ObsId, StudyConfig, StudyRun};

/// A configuration with (almost) no attacks: sparse observatories,
/// all-zero weeks, empty target sets.
fn starved_config() -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = 777;
    cfg.gen.timeline.dp_base_per_week = 0.3;
    cfg.gen.timeline.ra_base_per_week = 0.3;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg
}

#[test]
fn starved_study_runs_every_experiment() {
    let run = StudyRun::execute(&starved_config());
    assert!(run.attacks.len() < 2000, "starved run too big");
    for id in all_ids() {
        let r = run_experiment(&run, id)
            .unwrap_or_else(|| panic!("{id} missing from registry"));
        assert!(!r.body.is_empty(), "{id} empty body on starved data");
        for (_, csv) in &r.csv {
            assert!(csv.lines().next().is_some());
        }
    }
}

#[test]
fn starved_series_stay_finite_after_normalization() {
    let run = StudyRun::execute(&starved_config());
    for id in ObsId::MAIN_TEN {
        let s = run.normalized_series(id);
        for (w, v) in s.present() {
            assert!(
                v.is_finite() && v >= 0.0,
                "{} week {w}: {v}",
                id.name()
            );
        }
    }
}

#[test]
fn missing_data_mask_does_not_break_statistics() {
    let mut cfg = StudyConfig::quick();
    cfg.seed = 778;
    cfg.missing_data = true;
    let run = StudyRun::execute(&cfg);
    // ORION has a two-quarter hole; correlations must still compute
    // against every other series using pairwise-complete data.
    let series = run.all_ten_normalized();
    let m = correlation_matrix(&series, Method::Spearman);
    let orion_row = 0;
    for (j, other) in series.iter().enumerate().skip(1) {
        let c = m
            .get(orion_row, j)
            .unwrap_or_else(|| panic!("ORION vs {} missing", other.name));
        assert!(c.n > 150, "pairwise n too small: {}", c.n);
        assert!(c.rho.is_finite());
    }
    // Trend classification over the gap works too.
    let _ = run.normalized_series(ObsId::Orion).trend();
}

#[test]
fn all_nan_series_is_handled() {
    let s = WeeklySeries::new("void", vec![f64::NAN; 235]);
    assert!(s.linear_regression().is_none());
    assert_eq!(s.trend(), analytics::Trend::Steady);
    let e = s.ewma(12);
    assert!(e.values.iter().all(|v| v.is_nan()));
    // Normalization of an all-NaN series must not panic; the fallback
    // produces NaN values, which downstream statistics skip.
    let n = s.normalize_to_baseline();
    assert_eq!(n.len(), 235);
}

#[test]
fn upset_with_disjoint_and_duplicate_sets() {
    use netmodel::Ipv4;
    // Disjoint sets: every mask has one bit.
    let u = upset(&[
        ("a".into(), vec![(0, Ipv4(1))]),
        ("b".into(), vec![(0, Ipv4(2))]),
    ]);
    assert_eq!(u.at_least(0b11), 0);
    assert_eq!(u.total_distinct, 2);
    // A set listed against itself (duplicate content).
    let same = vec![(0, Ipv4(9)), (1, Ipv4(9))];
    let u = upset(&[("x".into(), same.clone()), ("y".into(), same)]);
    assert_eq!(u.at_least(0b11), 2);
    assert_eq!(u.exclusive.get(&0b01), None);
}

#[test]
fn extreme_seed_values_work() {
    for seed in [0u64, 1, u64::MAX] {
        let mut cfg = starved_config();
        cfg.seed = seed;
        let run = StudyRun::execute(&cfg);
        // Sanity rather than shape: the pipeline completes and counts
        // are consistent.
        for id in ObsId::MAIN_TEN {
            let total: f64 = run
                .weekly_series(id)
                .present()
                .map(|(_, v)| v)
                .sum();
            assert!(total as usize <= run.attacks.len() * 2);
        }
    }
}

#[test]
fn detector_tolerates_out_of_order_packets_within_interval() {
    // Corsaro processes packets roughly in order; small reordering
    // (within the expiry interval) must not panic or corrupt flows.
    use attackgen::PacketEvent;
    use netmodel::{Ipv4, Transport};
    use simcore::SimTime;
    use telescope::{RsdosConfig, RsdosDetector};
    let mut det = RsdosDetector::new(RsdosConfig::default());
    let mut times: Vec<i64> = (0..200).collect();
    // Swap adjacent pairs to create mild disorder.
    for i in (0..198).step_by(2) {
        times.swap(i, i + 1);
    }
    for t in times {
        det.ingest(&PacketEvent {
            time: SimTime(t),
            src: Ipv4(1),
            src_port: 80,
            dst: Ipv4(2),
            dst_port: 5,
            transport: Transport::Tcp,
            size_bytes: 60,
        });
    }
    let attacks = det.finish();
    assert_eq!(attacks.len(), 1);
    assert_eq!(attacks[0].packets, 200);
}

#[test]
fn experiments_are_pure() {
    // Running the same experiment twice on one run yields identical
    // output (no hidden mutation).
    let run = StudyRun::execute(&starved_config());
    for id in ["table1", "fig6", "fig7", "stats7"] {
        let a = run_experiment(&run, id).unwrap();
        let b = run_experiment(&run, id).unwrap();
        assert_eq!(a.body, b.body, "{id} not pure");
        assert_eq!(a.csv, b.csv);
    }
}
