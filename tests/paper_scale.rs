//! Paper-scale invariants: the headline EXPERIMENTS.md numbers, checked
//! against a full-volume run. Ignored by default (several seconds even
//! in release, much longer in debug); run explicitly with:
//!
//! ```sh
//! cargo test --release --test paper_scale -- --ignored
//! ```

use analytics::{upset, TargetTuple, Trend};
use ddoscovery::{ObsId, StudyConfig, StudyRun};

#[test]
#[ignore = "full paper-scale run; invoke with --ignored in release mode"]
fn paper_scale_headline_numbers() {
    let run = StudyRun::execute(&StudyConfig::paper());

    // Table 1: the exact trend matrix of EXPERIMENTS.md — every
    // non-Akamai DP series up, Akamai down/steady, RA series never up.
    for id in [ObsId::Ucsd, ObsId::Orion, ObsId::NetscoutDp, ObsId::IxpDp] {
        assert_eq!(
            run.normalized_series(id).trend(),
            Trend::Increasing,
            "{} trend",
            id.name()
        );
    }
    assert_ne!(
        run.normalized_series(ObsId::AkamaiDp).trend(),
        Trend::Increasing,
        "Akamai (DP) must diverge from the DP family"
    );
    for id in [ObsId::Hopscotch, ObsId::AmpPot, ObsId::NetscoutRa] {
        assert_ne!(
            run.normalized_series(id).trend(),
            Trend::Increasing,
            "{} must not trend up",
            id.name()
        );
    }

    // Fig. 5: crossing in 2021Q2.
    let dp = run.weekly_series(ObsId::NetscoutDp);
    let ra = run.weekly_series(ObsId::NetscoutRa);
    let share = analytics::share_series(&dp, &ra).centered_ma(6);
    let w = analytics::durable_crossing(&share.values, 0.5).expect("50% crossing");
    let date = simcore::time::week_start_date(w as i64);
    assert_eq!(date.quarter_label(), "2021Q2", "crossing at {date}");

    // Fig. 7 / §7 structure.
    let sets: Vec<(String, Vec<TargetTuple>)> = ObsId::ACADEMIC
        .iter()
        .map(|&id| (id.name().to_string(), run.target_tuples(id).to_vec()))
        .collect();
    let u = upset(&sets);
    let idx = |name: &str| u.names.iter().position(|n| n == name).unwrap();
    let orion_in_ucsd = u.overlap_share(idx("ORION"), idx("UCSD"));
    assert!(
        (0.80..=0.92).contains(&orion_in_ucsd),
        "ORION in UCSD {orion_in_ucsd:.3} (paper: 0.87)"
    );
    let amppot_hops = u.overlap_share(idx("AmpPot"), idx("Hopscotch"));
    assert!(
        (0.40..=0.70).contains(&amppot_hops),
        "AmpPot shared {amppot_hops:.3} (paper: 0.57)"
    );
    let all_four = u.at_least(u.full_mask()) as f64 / u.total_distinct as f64;
    assert!(
        (0.0003..=0.01).contains(&all_four),
        "all-four share {all_four:.5} (paper: 0.0055)"
    );
}
