//! Columnar-refactor equivalence gate (ISSUE 6): the SoA population
//! must produce byte-identical projections to the pre-refactor AoS
//! path. The `GOLDEN_*` constants below are FNV-1a hashes of the full
//! projection fingerprint (every weekly/normalized series bit pattern,
//! every target-tuple set, the Netscout baseline sample and the Akamai
//! retention tuples) captured on the last `Vec<Attack>` commit — the
//! frozen reference the columnar engine is checked against, across
//! worker counts × stage-cache on/off × a non-empty `FaultPlan`.

use ddoscovery::faults::{ChurnSpec, DegradationSpec, FaultPlan, OutageSpec};
use ddoscovery::{ObsId, StudyConfig, StudyRun};
use obs::manifest::fnv1a;

/// Small fast config with every masking path live: paper missing-data
/// gaps on, plus a fault plan that exercises outages, honeypot churn
/// and flow degradation.
fn golden_cfg(cache: usize, workers: usize) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = 0x60_1DE2;
    cfg.gen.timeline.dp_base_per_week = 20.0;
    cfg.gen.timeline.ra_base_per_week = 30.0;
    cfg.gen.random_campaign_count = 1;
    cfg.missing_data = true;
    cfg.faults = FaultPlan {
        outages: vec![
            OutageSpec {
                source: "ucsd".into(),
                start_week: 5,
                end_week: 9,
            },
            OutageSpec {
                source: "ixp".into(),
                start_week: 100,
                end_week: 104,
            },
        ],
        honeypot_churn: Some(ChurnSpec {
            decline_per_year: 0.1,
            offline_weekly: 0.05,
        }),
        flow_degradation: Some(DegradationSpec {
            drop_fraction: 0.2,
            start_week: 120,
        }),
        seed: 7,
    };
    cfg.stage_cache = Some(cache);
    cfg.workers = Some(workers);
    cfg
}

/// Every projection the paper consumes, flattened to bytes (bitwise:
/// NaN masks compare exactly). Mirrors `tests/stage_cache.rs`.
fn output_fingerprint(run: &StudyRun) -> Vec<u8> {
    let mut out = Vec::new();
    for id in ObsId::ALL {
        out.extend(id.slug().as_bytes());
        for v in &run.weekly_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for v in &run.normalized_series(id).values {
            out.extend(v.to_bits().to_le_bytes());
        }
        for &(day, ip) in run.target_tuples(id) {
            out.extend(day.to_le_bytes());
            out.extend(ip.0.to_le_bytes());
        }
    }
    for &(day, ip) in run.netscout_baseline_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    for &(day, ip) in run.akamai_tuples() {
        out.extend(day.to_le_bytes());
        out.extend(ip.0.to_le_bytes());
    }
    out
}

/// The frozen pre-refactor hash: identical for every (workers, cache)
/// combination by the worker-invariance contract, so one constant
/// covers the whole matrix.
const GOLDEN: u64 = 0xe5de_be41_dc18_4ec3;

#[test]
fn columnar_output_matches_frozen_aos_golden() {
    for workers in [1, 3] {
        for cache in [0, 64] {
            let run = StudyRun::execute(&golden_cfg(cache, workers));
            let got = fnv1a(&output_fingerprint(&run));
            assert_eq!(
                got, GOLDEN,
                "projection bytes diverged from the frozen AoS reference \
                 at workers={workers} cache={cache} (got {got:#018x})"
            );
        }
    }
}

/// Capture helper: prints the hash so a new golden can be pinned after
/// an *intentional* output change. `cargo test -q --test
/// equivalence_golden -- --ignored --nocapture`.
#[test]
#[ignore = "golden capture helper, not a gate"]
fn print_golden_hash() {
    let run = StudyRun::execute(&golden_cfg(0, 1));
    println!("GOLDEN = {:#018x}", fnv1a(&output_fingerprint(&run)));
}
