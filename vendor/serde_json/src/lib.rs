//! Minimal offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde::Value` tree as JSON. The
//! contract is self-consistency — `from_str(&to_string(&x))` rebuilds
//! `x` for every type the workspace derives — not byte compatibility
//! with upstream serde_json. Floats use Rust's shortest round-trip
//! formatting; non-finite floats serialize as `null` (matching
//! upstream's behavior) and `null` deserializes to NaN where an `f64`
//! is expected.

pub use serde::{Error, Value};
use serde::{Deserialize, Serialize};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize a value to its intermediate [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from its [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parse a JSON string into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is guaranteed round-trip-shortest.
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, level, items.len(), '[', ']', |out, i, ind, lvl| {
                write_value(&items[i], out, ind, lvl)
            })
        }
        Value::Object(fields) => {
            write_seq(out, indent, level, fields.len(), '{', '}', |out, i, ind, lvl| {
                write_string(&fields[i].0, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(&fields[i].1, out, ind, lvl)
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (level + 1)));
        }
        write_item(out, i, indent, level + 1);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * level));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-7i64).unwrap()).unwrap(), -7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        let f = 0.30000000000000004f64;
        assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.5f64, 2.0], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s).unwrap(), v);
        let o: Option<String> = Some("a \"quoted\"\nline".into());
        let s = to_string(&o).unwrap();
        assert_eq!(from_str::<Option<String>>(&s).unwrap(), o);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn nan_becomes_null_and_back() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
