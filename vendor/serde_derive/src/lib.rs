//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Supports exactly the item shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums whose variants are unit or tuple variants.
//!
//! Generics, struct variants and `#[serde(...)]` attributes are not
//! supported and fail loudly at expansion time. The parser walks raw
//! `proc_macro` token trees (`syn`/`quote` are unavailable offline);
//! angle-bracket depth is tracked manually because `<...>` is not a
//! delimited group at the token level.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<(String, usize)> },
}

impl Shape {
    fn name(&self) -> &str {
        match self {
            Shape::NamedStruct { name, .. }
            | Shape::TupleStruct { name, .. }
            | Shape::UnitStruct { name }
            | Shape::Enum { name, .. } => name,
        }
    }
}

/// Skip any leading `#[...]` attributes and visibility qualifiers.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` / `pub(super)` carry a paren group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Count top-level comma-separated segments of a type list, tracking
/// `<...>` depth by hand (angle brackets are plain puncts).
fn count_segments(stream: TokenStream) -> usize {
    let mut segments = 0usize;
    let mut seen_any = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if seen_any {
                    segments += 1;
                    seen_any = false;
                }
                continue;
            }
            _ => {}
        }
        seen_any = true;
    }
    if seen_any {
        segments += 1;
    }
    segments
}

/// Extract field names from a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive: expected field name, found `{tt}`");
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{name}`, found {other:?}"),
        }
        fields.push(name.to_string());
        // Consume the type, up to a comma at angle depth 0.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Extract `(variant name, payload arity)` pairs from an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive: expected variant name, found `{tt}`");
        };
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_segments(g.stream());
                    tokens.next();
                }
                Delimiter::Brace => {
                    panic!("serde_derive: struct variant `{name}` is not supported")
                }
                _ => {}
            }
        }
        variants.push((name.to_string(), arity));
        // Consume an optional `= discriminant` and the trailing comma.
        for tt in tokens.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct { name, arity: count_segments(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        kw => panic!("serde_derive: cannot derive for `{kw} {name}`"),
    }
}

// ---------------------------------------------------------------------
// Code generation (string-built, then reparsed)
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let name = shape.name().to_string();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct { arity: 1, .. } => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Shape::Enum { variants, .. } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())"
                    ),
                    1 => format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x0))])"
                    ),
                    k => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let name = shape.name().to_string();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")\
                           .ok_or_else(|| ::serde::Error::missing(\"{name}\", \"{f}\"))?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct { arity: 1, .. } => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct { arity, .. } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         Ok({name}({})),\n\
                     other => Err(::serde::Error::unexpected(\"{name}\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { .. } => format!("Ok({name})"),
        Shape::Enum { variants, .. } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(_payload)?)),"
                        )
                    } else {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => match _payload {{\n\
                                 ::serde::Value::Array(items) if items.len() == {arity} => \
                                     Ok({name}::{v}({})),\n\
                                 other => Err(::serde::Error::unexpected(\"{name}::{v}\", other)),\n\
                             }},",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => Err(::serde::Error::msg(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (k, _payload) = &fields[0];\n\
                         match k.as_str() {{\n\
                             {payloads}\n\
                             other => Err(::serde::Error::msg(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::unexpected(\"{name}\", other)),\n\
                 }}",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}
