//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert*`/`prop_assume`, range and `any::<T>()` strategies,
//! tuple composition, `prop_map`, and `collection::{vec, hash_set}`.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (derived from the test name) so every run is identical, and
//! there is **no shrinking** — a failing case panics with the plain
//! assertion message. That trades debugging convenience for zero
//! dependencies, which is what an offline build can afford.

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

// ---- integer / float ranges ----------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Occasionally emit the endpoints: boundary bugs hide there.
                match rng.below(16) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match rng.below(16) {
                    0 => lo,
                    1 => hi,
                    _ => {
                        let span = (hi as i128 - lo as i128) as u64;
                        if span == u64::MAX {
                            rng.next_u64() as $t
                        } else {
                            (lo as i128 + rng.below(span + 1) as i128) as $t
                        }
                    }
                }
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + (hi - lo) * rng.unit_f64()) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                match rng.below(16) {
                    0 => lo as $t,
                    1 => hi as $t,
                    _ => (lo + (hi - lo) * rng.unit_f64()) as $t,
                }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

// ---- any::<T>() -----------------------------------------------------

/// Types with a full-domain default strategy.
pub trait ArbitrarySample {
    fn arb(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arb_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arb(rng: &mut TestRng) -> $t {
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitrarySample for bool {
    fn arb(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl ArbitrarySample for f64 {
    fn arb(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        let mag = (rng.unit_f64() * 40.0 - 20.0).exp2();
        if rng.below(2) == 0 {
            mag
        } else {
            -mag
        }
    }
}

/// Boolean strategies (upstream `proptest::bool`).
pub mod bool {
    /// Uniform `true`/`false`.
    pub const ANY: super::Any<bool> = super::Any(std::marker::PhantomData);
}

/// Strategy returned by [`any`].
pub struct Any<T>(pub PhantomData<T>);

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

/// The default full-domain strategy for `T`.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(PhantomData)
}

// ---- tuples ---------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

// ---- collections ----------------------------------------------------

pub mod collection {
    use super::*;

    /// Inclusive-lo, exclusive-hi size bounds.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let want = self.size.lo + rng.below(span.max(1)) as usize;
            let mut out = HashSet::with_capacity(want);
            // Duplicates shrink the set below the floor; retry a bounded
            // number of times to reach it.
            for _ in 0..want.saturating_mul(64).max(64) {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }
}

// ---- macros ---------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                    let mut __one_case = || -> ::core::result::Result<(), ()> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let _ = __one_case();
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ArbitrarySample, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0u8..=32, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 32);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map(p in (any::<u32>(), 0u8..=7).prop_map(|(a, b)| (a, b))) {
            prop_assert!(p.1 <= 7);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n > 3);
            prop_assert!(n > 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn vec_sizes(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn set_floor(s in collection::hash_set(0u32..1000, 2..6)) {
            prop_assert!(s.len() >= 2 && s.len() < 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
