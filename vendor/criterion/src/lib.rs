//! Minimal offline stand-in for the `criterion` crate.
//!
//! Keeps the same authoring surface (`criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`) but replaces the
//! statistical machinery with a simple median-of-samples wall-clock
//! report. Each `bench_function` runs a short warm-up, then `sample_size`
//! timed batches, and prints the per-iteration median plus throughput
//! when configured. Good enough to compare before/after on the same
//! machine; not a substitute for upstream's outlier analysis.

use std::time::{Duration, Instant};

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };

        // Warm-up: one batch, also used to size the timed batches.
        f(&mut bencher);
        let per_iter_estimate = if bencher.iters > 0 {
            bencher.elapsed.as_secs_f64() / bencher.iters as f64
        } else {
            0.0
        };
        // Aim for ~20ms per sample, at least one iteration.
        let iters_per_sample = if per_iter_estimate > 0.0 {
            ((0.02 / per_iter_estimate) as u64).clamp(1, 1_000_000)
        } else {
            1
        };

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            for _ in 0..iters_per_sample {
                f(&mut bencher);
            }
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);

        let mut line = format!(
            "{}/{:<32} time: {:>12}",
            self.name,
            id,
            format_duration(median)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                line.push_str(&format!("   thrpt: {:>14.0} elem/s", n as f64 / median));
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                line.push_str(&format!("   thrpt: {:>14.0} B/s", n as f64 / median));
            }
            _ => {}
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

/// Timing handle handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `routine`, accumulating into the current sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export of `std::hint::black_box` for call sites that import it
/// from criterion rather than std.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
