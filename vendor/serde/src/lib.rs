//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access, so
//! the real serde cannot be fetched. This crate provides the subset the
//! workspace actually uses: `#[derive(Serialize, Deserialize)]` on
//! plain structs (named fields and tuple/newtype) and enums (unit and
//! tuple variants), serialized through an owned JSON-like [`Value`]
//! tree that `serde_json` (also vendored) renders and parses.
//!
//! The design intentionally trades serde's zero-copy visitor
//! architecture for a simple value tree: every workspace type that
//! derives the traits is small configuration/record data, and the only
//! consumers are our own `serde_json::to_string` / `from_str`, so
//! self-consistent round-trips are the contract — not wire
//! compatibility with upstream serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// An owned JSON-like value tree: the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and the `serde_json` facade.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (used when a value is negative).
    Int(i64),
    /// Unsigned integers (the common case; keeps full u64 range).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The name of this value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }

    pub fn missing(ty: &str, field: &str) -> Error {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    pub fn unexpected(ty: &str, got: &Value) -> Error {
        Error(format!("unexpected {} while deserializing {ty}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::UInt(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Match serde_json: non-finite floats become null.
                if self.is_finite() { Value::Float(*self as f64) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::unexpected("char", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(items.map(Serialize::to_value).collect())
}

fn value_to_seq<T: Deserialize>(v: &Value, ty: &str) -> Result<Vec<T>, Error> {
    match v {
        Value::Array(items) => items.iter().map(T::from_value).collect(),
        other => Err(Error::unexpected(ty, other)),
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        value_to_seq(v, "Vec")
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = value_to_seq::<T>(v, "array")?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected {N} elements, got {n}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq(v, "BTreeSet")?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Hash iteration order is unstable; serialized form is not.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(value_sort_key);
        Value::Array(items)
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq(v, "HashSet")?.into_iter().collect())
    }
}

/// Deterministic ordering over serialized values (for hash containers).
fn value_sort_key(a: &Value, b: &Value) -> std::cmp::Ordering {
    format!("{a:?}").cmp(&format!("{b:?}"))
}

/// Maps serialize as an array of `[key, value]` pairs so that non-string
/// keys (e.g. enum keys) need no special casing.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v, "BTreeMap")
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect();
        items.sort_by(value_sort_key);
        Value::Array(items)
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v, "HashMap")
    }
}

fn map_pairs<K: Deserialize, V: Deserialize, M: FromIterator<(K, V)>>(
    v: &Value,
    ty: &str,
) -> Result<M, Error> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(Error::unexpected(ty, other)),
            })
            .collect(),
        other => Err(Error::unexpected(ty, other)),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $idx; // positional
                            $name::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?
                        },)+))
                    }
                    other => Err(Error::unexpected("tuple", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

// `Value` round-trips as itself, so callers can parse or emit
// schema-free JSON (e.g. inspecting a telemetry manifest without
// declaring its full type).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn map_as_pairs() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "b".to_string());
        let v = m.to_value();
        let back: BTreeMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
