//! Adversarial corpus for the byte-capped HTTP parser: truncated
//! request lines, huge headers, bad methods, pipelined garbage, early
//! disconnects, flaky readers. The contract under test is twofold —
//! *no input panics the parser* (property-tested on arbitrary bytes
//! via the vendored `proptest` stand-in) and *every named attack maps
//! to its documented `ParseError` variant*, which the server turns
//! into the right 4xx/timeout wire behavior.

use proptest::prelude::*;
use serve::http::{parse_head, read_head, read_request, ParseError};
use std::io::Read;

const CAP: usize = 8 * 1024;

fn parse(bytes: &[u8]) -> Result<serve::Request, ParseError> {
    read_request(&mut &bytes[..], CAP)
}

/// A reader that yields one byte at a time and then fails with a
/// caller-chosen error kind — the parser must treat mid-head errors
/// the same regardless of read granularity.
struct FlakyReader<'a> {
    bytes: &'a [u8],
    fail_kind: Option<std::io::ErrorKind>,
}

impl Read for FlakyReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.bytes.split_first() {
            Some((first, rest)) => {
                buf[0] = *first;
                self.bytes = rest;
                Ok(1)
            }
            None => match self.fail_kind {
                Some(kind) => Err(std::io::Error::new(kind, "injected")),
                None => Ok(0),
            },
        }
    }
}

#[test]
fn corpus_truncated_request_lines() {
    let full = b"GET /v1/trends HTTP/1.1\r\nHost: x\r\n\r\n";
    for cut in 0..full.len() - 4 {
        let result = parse(&full[..cut]);
        assert!(
            matches!(result, Err(ParseError::Disconnect) | Err(ParseError::Malformed(_))),
            "cut at {cut}: {result:?}"
        );
    }
}

#[test]
fn corpus_bad_methods_and_protocols() {
    for bad in [
        &b"get / HTTP/1.1\r\n\r\n"[..],
        b"G E T / HTTP/1.1\r\n\r\n",
        b"GETGETGETGETGETGETGET / HTTP/1.1\r\n\r\n",
        b"DELETE\t/ HTTP/1.1\r\n\r\n",
        b"GET / FTP/1.1\r\n\r\n",
        b"GET / HTTP/2\r\n\r\n",
        b"\r\nGET / HTTP/1.1\r\n\r\n",
        b"\xff\xfe / HTTP/1.1\r\n\r\n",
    ] {
        assert!(
            matches!(parse(bad), Err(ParseError::Malformed(_))),
            "{:?} -> {:?}",
            String::from_utf8_lossy(bad),
            parse(bad)
        );
    }
}

#[test]
fn corpus_huge_heads_hit_the_byte_cap() {
    // One header padded past the cap.
    let padded = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "z".repeat(CAP));
    assert_eq!(parse(padded.as_bytes()), Err(ParseError::TooLarge));
    // An endless stream of headers with no terminator.
    let endless: String = std::iter::repeat("X-A: b\r\n").take(CAP).collect();
    let head = format!("GET / HTTP/1.1\r\n{endless}");
    assert_eq!(parse(head.as_bytes()), Err(ParseError::TooLarge));
    // Too many headers, even under the byte cap.
    let many: String = (0..100).map(|i| format!("H{i}: v\r\n")).collect();
    let head = format!("GET / HTTP/1.1\r\n{many}\r\n");
    assert_eq!(
        read_request(&mut head.as_bytes(), 64 * 1024),
        Err(ParseError::TooLarge)
    );
    // An oversized request target is malformed, not a crash.
    let target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4000));
    assert!(matches!(parse(target.as_bytes()), Err(ParseError::Malformed(_))));
}

#[test]
fn corpus_pipelined_garbage_is_ignored() {
    let bytes = b"GET /ok HTTP/1.1\r\n\r\n\x00\xffTOTAL GARBAGE\r\n\r\nGET /second HTTP/1.1\r\n\r\n";
    let req = parse(bytes).expect("first request is well-formed");
    assert_eq!(req.path, "/ok");
}

#[test]
fn corpus_early_disconnect_and_transport_errors() {
    assert_eq!(parse(b""), Err(ParseError::Disconnect));
    let mut timing_out = FlakyReader {
        bytes: b"GET / HT",
        fail_kind: Some(std::io::ErrorKind::WouldBlock),
    };
    assert_eq!(read_head(&mut timing_out, CAP), Err(ParseError::Timeout));
    let mut timing_out = FlakyReader {
        bytes: b"",
        fail_kind: Some(std::io::ErrorKind::TimedOut),
    };
    assert_eq!(read_head(&mut timing_out, CAP), Err(ParseError::Timeout));
    let mut broken = FlakyReader {
        bytes: b"GET / HTTP/1.1\r\n",
        fail_kind: Some(std::io::ErrorKind::ConnectionReset),
    };
    assert!(matches!(read_head(&mut broken, CAP), Err(ParseError::Io(_))));
}

#[test]
fn byte_at_a_time_reads_parse_identically() {
    let head = b"GET /v1/series/ucsd?norm=1 HTTP/1.1\r\nHost: a\r\nAccept: */*\r\n\r\n";
    let mut trickle = FlakyReader { bytes: head, fail_kind: None };
    let slow = read_request(&mut trickle, CAP).expect("trickled head parses");
    let fast = parse(head).expect("buffered head parses");
    assert_eq!(slow, fast);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No byte sequence panics the parser; success implies the request
    /// invariants (uppercase method, absolute path) actually hold.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(req) = parse(&bytes) {
            prop_assert!(!req.method.is_empty());
            prop_assert!(req.method.bytes().all(|b| b.is_ascii_uppercase()));
            prop_assert!(req.path.starts_with('/'));
            prop_assert!(req.headers.len() <= serve::http::MAX_HEADERS);
        }
    }

    /// Mutating one byte of a valid head never panics, and the parser
    /// stays deterministic over the mutation.
    #[test]
    fn single_byte_mutations_never_panic(pos in 0usize..60, byte in any::<u8>()) {
        let mut bytes = b"GET /v1/trends HTTP/1.1\r\nHost: example\r\nAccept: */*\r\n\r\n".to_vec();
        let idx = pos % bytes.len();
        bytes[idx] = byte;
        let first = parse(&bytes);
        prop_assert_eq!(first, parse(&bytes));
    }

    /// `parse_head` (the pure half) accepts arbitrary byte soup too —
    /// even inputs that `read_head` could never produce.
    #[test]
    fn parse_head_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_head(&bytes);
    }
}
