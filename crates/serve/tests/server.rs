//! Socket-level tests for the bounded server: typed bind failures,
//! load shedding under a saturated pool, slowloris deadlines, and
//! graceful drain. Client-side `TcpStream` use is fine here — lint
//! rule 8 confines socket IO to `crates/serve/src`, and tests are the
//! one place we deliberately play the hostile peer.
//!
//! The `http.*` counters are process-global, so every assertion on
//! them is a *delta* around the scenario — the test binary runs
//! scenarios in parallel threads sharing one metrics registry.

use serve::{DrainReport, Handler, Request, Response, ServeConfig, Server, ServeError, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Small deadlines so hostile-peer scenarios resolve in milliseconds.
fn quick_cfg() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        read_timeout_ms: 150,
        write_timeout_ms: 500,
        drain_deadline_ms: 3_000,
        ..ServeConfig::default()
    }
}

fn start(
    cfg: ServeConfig,
    handler: Arc<dyn Handler>,
) -> (SocketAddr, ShutdownHandle, thread::JoinHandle<DrainReport>) {
    let server = Server::bind(cfg, handler).expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let join = thread::spawn(move || server.run());
    (addr, shutdown, join)
}

/// Send raw bytes, read the whole response (the server always closes).
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send request");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn bind_classifies_bad_input_as_config_errors() {
    let hello: Arc<dyn Handler> = Arc::new(|_req: &Request| Response::text(200, "hi"));
    let cases = [
        ("not-an-addr", "serve.addr"),
        ("localhost:8080", "serve.addr"), // numeric only, no DNS
        ("127.0.0.1", "serve.addr"),      // missing port
    ];
    for (addr, field) in cases {
        let cfg = ServeConfig { addr: addr.to_string(), ..ServeConfig::default() };
        match Server::bind(cfg, hello.clone()).err() {
            Some(ServeError::Config { field: f, .. }) => assert_eq!(f, field, "addr {addr:?}"),
            other => panic!("{addr:?}: expected Config error, got {other:?}"),
        }
    }
    let cfg = ServeConfig { workers: 0, ..quick_cfg() };
    match Server::bind(cfg, hello.clone()).err() {
        Some(ServeError::Config { field, .. }) => assert_eq!(field, "serve.workers"),
        other => panic!("expected Config error for workers=0, got {other:?}"),
    }
    let cfg = ServeConfig { queue_depth: 0, ..quick_cfg() };
    assert!(matches!(
        Server::bind(cfg, hello).err(),
        Some(ServeError::Config { .. })
    ));
}

#[test]
fn bind_reports_an_occupied_port_as_io() {
    // Occupy a port with a plain listener, then ask the server for it.
    let squatter = TcpListener::bind("127.0.0.1:0").expect("squat a port");
    let addr = squatter.local_addr().expect("squatter addr");
    let cfg = ServeConfig { addr: addr.to_string(), ..ServeConfig::default() };
    let hello: Arc<dyn Handler> = Arc::new(|_req: &Request| Response::text(200, "hi"));
    match Server::bind(cfg, hello).err() {
        Some(ServeError::Io { addr: reported, message }) => {
            assert_eq!(reported, addr.to_string());
            assert!(message.contains("bind failed"), "message: {message}");
        }
        other => panic!("expected Io error on occupied port, got {other:?}"),
    }
}

#[test]
fn serves_requests_and_drains_cleanly() {
    let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
        Response::text(200, &format!("echo {}\n", req.path))
    });
    let (addr, shutdown, join) = start(quick_cfg(), handler);
    for i in 0..4 {
        let resp = roundtrip(addr, format!("GET /ping/{i} HTTP/1.1\r\n\r\n").as_bytes());
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "resp: {resp:?}");
        assert!(resp.contains("Connection: close"));
        assert!(resp.ends_with(&format!("echo /ping/{i}\n")));
    }
    shutdown.shutdown();
    let report = join.join().expect("server thread");
    assert!(report.drained, "drain inside the deadline: {report:?}");
    assert!(report.served >= 4, "report: {report:?}");
}

#[test]
fn overload_sheds_with_retry_after() {
    // One worker stuck behind a 400 ms handler and a queue of one:
    // a burst of connections must overflow admission and get 503s.
    let handler: Arc<dyn Handler> = Arc::new(|_req: &Request| {
        thread::sleep(Duration::from_millis(400));
        Response::text(200, "slow ok\n")
    });
    let cfg = ServeConfig { workers: 1, queue_depth: 1, ..quick_cfg() };
    let (addr, shutdown, join) = start(cfg, handler);
    let shed_before = obs::metrics::counter("http.shed").get();

    let clients: Vec<_> = (0..8)
        .map(|_| thread::spawn(move || roundtrip(addr, b"GET /burst HTTP/1.1\r\n\r\n")))
        .collect();
    let responses: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    let shed_responses = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 503 "))
        .count();
    assert!(shed_responses > 0, "burst of 8 at capacity 2 must shed: {responses:?}");
    for resp in responses.iter().filter(|r| r.starts_with("HTTP/1.1 503 ")) {
        assert!(resp.contains("Retry-After: 1\r\n"), "shed response: {resp:?}");
    }
    // Every accepted connection got *some* complete response.
    for resp in &responses {
        assert!(
            resp.starts_with("HTTP/1.1 200 ") || resp.starts_with("HTTP/1.1 503 "),
            "unexpected response: {resp:?}"
        );
    }
    let shed_delta = obs::metrics::counter("http.shed").get() - shed_before;
    assert!(shed_delta >= shed_responses as u64, "http.shed must count sheds");

    shutdown.shutdown();
    let report = join.join().expect("server thread");
    assert!(report.drained, "report: {report:?}");
}

#[test]
fn slowloris_peers_time_out_without_holding_a_worker() {
    let handler: Arc<dyn Handler> = Arc::new(|_req: &Request| Response::text(200, "ok\n"));
    let (addr, shutdown, join) = start(quick_cfg(), handler);

    // Trickle half a request line and stall past the read deadline.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.write_all(b"GET /slow HT").expect("partial head");
    let mut out = String::new();
    let _ = slow.read_to_string(&mut out);
    assert!(
        out.is_empty() || out.starts_with("HTTP/1.1 408 "),
        "slowloris answer: {out:?}"
    );
    drop(slow);

    // The pool is free again: a well-formed request still succeeds.
    let resp = roundtrip(addr, b"GET /after HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "resp: {resp:?}");

    shutdown.shutdown();
    assert!(join.join().expect("server thread").drained);
}

#[test]
fn malformed_and_oversized_heads_get_4xx_not_a_crash() {
    let handler: Arc<dyn Handler> = Arc::new(|_req: &Request| Response::text(200, "ok\n"));
    let (addr, shutdown, join) = start(quick_cfg(), handler);

    let bad = roundtrip(addr, b"BLARG\r\n\r\n");
    assert!(bad.starts_with("HTTP/1.1 400 "), "malformed: {bad:?}");

    let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "z".repeat(16 * 1024));
    let too_large = roundtrip(addr, huge.as_bytes());
    assert!(too_large.starts_with("HTTP/1.1 431 "), "oversized: {too_large:?}");

    // Early disconnect: open, write nothing, close. Server just moves on.
    drop(TcpStream::connect(addr).expect("connect"));
    let resp = roundtrip(addr, b"GET /still-alive HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "resp: {resp:?}");

    shutdown.shutdown();
    assert!(join.join().expect("server thread").drained);
}

#[test]
fn panicking_handler_costs_one_500_not_the_worker() {
    let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
        if req.path == "/boom" {
            panic!("handler exploded on purpose");
        }
        Response::text(200, "fine\n")
    });
    let (addr, shutdown, join) = start(quick_cfg(), handler);
    let panics_before = obs::metrics::counter("http.panic").get();

    let boom = roundtrip(addr, b"GET /boom HTTP/1.1\r\n\r\n");
    assert!(boom.starts_with("HTTP/1.1 500 "), "panic response: {boom:?}");
    // Same pool keeps serving afterwards — the unwind was contained.
    let ok = roundtrip(addr, b"GET /fine HTTP/1.1\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "resp: {ok:?}");
    assert!(obs::metrics::counter("http.panic").get() > panics_before);

    shutdown.shutdown();
    let report = join.join().expect("server thread");
    assert!(report.drained, "report: {report:?}");
}
