//! `serve` — the hardened zero-dependency HTTP/1.1 service core.
//!
//! This crate is the workspace's *only* socket layer (repo lint rule 8):
//! `TcpListener`/`TcpStream` may not appear in any other library source.
//! It knows nothing about studies — it exposes a [`Handler`] trait and a
//! [`server::Server`] that drives it; the application layer
//! (`ddoscovery::service::StudyService`) lives in `crates/core` and maps
//! requests onto memoized `StudyRun` projections.
//!
//! The design center is robustness under hostile or overloaded input,
//! not routing (DESIGN.md §12):
//!
//! * **Admission control & load shedding** — a bounded acceptor feeds a
//!   fixed worker pool through a `sync_channel` of depth `queue_depth`;
//!   over-capacity connections are answered `503` + `Retry-After`
//!   immediately (counted in `http.shed`) instead of queueing without
//!   bound.
//! * **Deadlines everywhere** — per-connection read/write timeouts plus
//!   a byte-capped head parser ([`http::read_request`]) defeat slowloris
//!   trickles and oversized headers; malformed input maps to 4xx, never
//!   a panic.
//! * **Single unwind site** — a panicking handler (organic or injected
//!   by a `ChaosSchedule` at the registered `http.request` site) is
//!   recovered through `simcore::recover::capture`, 500s exactly that
//!   one request, and leaves the worker alive.
//! * **Graceful drain** — shutdown stops accepting, finishes queued and
//!   in-flight requests, and is bounded by `drain_deadline_ms`; once the
//!   deadline expires, still-queued connections get a fast `503`.
//!
//! Wall-clock use: this crate is an IO boundary like `crates/obs` — its
//! `Instant` reads drive socket deadlines and the drain budget only and
//! never feed simulation state, which is why lint rule 2 allowlists it.

pub mod http;
pub mod server;

pub use http::{ParseError, Request, Response};
pub use server::{DrainReport, ServeConfig, ServeError, Server, ShutdownHandle};

/// An application-layer request handler driven by [`server::Server`].
///
/// Implementations must be panic-tolerant in aggregate — the server
/// wraps every call in `simcore::recover::capture`, so a panic costs
/// one 500 response, never a worker — but should prefer returning 4xx
/// [`Response`]s for bad input.
pub trait Handler: Send + Sync + 'static {
    /// Produce the response for one parsed request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}
