//! Bounded acceptor + worker pool with admission control, load
//! shedding, per-connection deadlines, and graceful drain.
//!
//! Capacity model (DESIGN.md §12): at most `workers` requests are being
//! handled and at most `queue_depth` accepted connections are waiting;
//! everything past that is shed with `503` + `Retry-After` the moment
//! it is accepted. The acceptor itself never blocks on a client — shed
//! responses are written under the same write deadline as everything
//! else — so one slow or hostile peer cannot stall admission for the
//! rest.

use crate::http::{self, ParseError, Response};
use crate::Handler;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`]. The defaults suit an interactive query
/// service over a warm study; tests shrink them to force shedding and
/// timeouts quickly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Numeric listen address, `IP:PORT` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads handling requests concurrently.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker.
    pub queue_depth: usize,
    /// Per-connection budget for reading the request head.
    pub read_timeout_ms: u64,
    /// Per-connection budget for writing the response.
    pub write_timeout_ms: u64,
    /// Byte cap on a request head (slowloris / huge-header defense).
    pub max_head_bytes: usize,
    /// Budget for finishing queued + in-flight work during drain.
    pub drain_deadline_ms: u64,
    /// `Retry-After` value sent with shed (`503`) responses.
    pub retry_after_secs: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 4,
            queue_depth: 64,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            max_head_bytes: 8 * 1024,
            drain_deadline_ms: 5_000,
            retry_after_secs: 1,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        let bad = |field: &str, message: String| {
            Err(ServeError::Config {
                field: format!("serve.{field}"),
                message,
            })
        };
        if self.workers == 0 {
            return bad("workers", "worker pool must have at least one thread".into());
        }
        if self.queue_depth == 0 {
            return bad("queue_depth", "admission queue must hold at least one connection".into());
        }
        if self.max_head_bytes < 64 {
            return bad("max_head_bytes", "head budget below a minimal request line".into());
        }
        if self.read_timeout_ms == 0 || self.write_timeout_ms == 0 {
            return bad("timeouts", "read/write deadlines must be nonzero".into());
        }
        Ok(())
    }
}

/// Why the server could not start (or keep) its socket. Maps onto the
/// workspace error taxonomy: `Config` is operator input (exit code 2),
/// `Io` is environment (exit code 1) — see DESIGN.md §6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Invalid configuration, e.g. a `--addr` that is not `IP:PORT`.
    Config {
        /// Which knob was invalid (`serve.addr`, `serve.workers`, …).
        field: String,
        /// What was wrong with it.
        message: String,
    },
    /// The OS refused a socket operation, e.g. `EADDRINUSE`.
    Io {
        /// The address involved.
        addr: String,
        /// The OS error text.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { field, message } => write!(f, "{field}: {message}"),
            ServeError::Io { addr, message } => write!(f, "{addr}: {message}"),
        }
    }
}

/// Triggers a graceful drain from another thread (or a request
/// handler, via `/admin/drain`).
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has a drain been requested?
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What [`Server::run`] observed by the time it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// True when every worker finished inside `drain_deadline_ms`.
    pub drained: bool,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Requests that got a handler response (any status).
    pub served: u64,
    /// Connections shed with `503` (admission or drain overflow).
    pub shed: u64,
}

/// `http.*` metric handles, resolved once per server.
struct Metrics {
    accepted: Arc<obs::metrics::Counter>,
    served: Arc<obs::metrics::Counter>,
    shed: Arc<obs::metrics::Counter>,
    timeouts: Arc<obs::metrics::Counter>,
    disconnects: Arc<obs::metrics::Counter>,
    malformed: Arc<obs::metrics::Counter>,
    too_large: Arc<obs::metrics::Counter>,
    panics: Arc<obs::metrics::Counter>,
    class_2xx: Arc<obs::metrics::Counter>,
    class_3xx: Arc<obs::metrics::Counter>,
    class_4xx: Arc<obs::metrics::Counter>,
    class_5xx: Arc<obs::metrics::Counter>,
    latency: Arc<obs::metrics::Histogram>,
}

impl Metrics {
    fn resolve() -> Metrics {
        Metrics {
            accepted: obs::metrics::counter("http.accepted"),
            served: obs::metrics::counter("http.served"),
            shed: obs::metrics::counter("http.shed"),
            timeouts: obs::metrics::counter("http.timeout"),
            disconnects: obs::metrics::counter("http.disconnect"),
            malformed: obs::metrics::counter("http.malformed"),
            too_large: obs::metrics::counter("http.too_large"),
            panics: obs::metrics::counter("http.panic"),
            class_2xx: obs::metrics::counter("http.status.2xx"),
            class_3xx: obs::metrics::counter("http.status.3xx"),
            class_4xx: obs::metrics::counter("http.status.4xx"),
            class_5xx: obs::metrics::counter("http.status.5xx"),
            latency: obs::metrics::histogram("http.request_ns", &obs::metrics::LATENCY_NS),
        }
    }

    fn count_status(&self, status: u16) {
        match status / 100 {
            2 => self.class_2xx.inc(),
            3 => self.class_3xx.inc(),
            4 => self.class_4xx.inc(),
            _ => self.class_5xx.inc(),
        }
    }
}

/// A bound, not-yet-running HTTP server. [`Server::run`] consumes it
/// and blocks until a [`ShutdownHandle`] fires.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    cfg: ServeConfig,
    handler: Arc<dyn Handler>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Validate `cfg`, parse and bind its address, and prepare the
    /// pool. Fails with a typed [`ServeError`] — never a panic — on bad
    /// input (`Config`) or an OS refusal like `EADDRINUSE` (`Io`).
    pub fn bind(cfg: ServeConfig, handler: Arc<dyn Handler>) -> Result<Server, ServeError> {
        cfg.validate()?;
        // Numeric parse only: a DNS lookup here would make bind time
        // depend on resolver state, and the CLI contract says `--addr`
        // is `IP:PORT`.
        let addr: SocketAddr = cfg.addr.parse().map_err(|_| ServeError::Config {
            field: "serve.addr".to_string(),
            message: format!(
                "{:?} is not a numeric socket address (expected IP:PORT, e.g. 127.0.0.1:8080)",
                cfg.addr
            ),
        })?;
        let io_err = |what: &str, e: &std::io::Error| ServeError::Io {
            addr: cfg.addr.clone(),
            message: format!("{what}: {e}"),
        };
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind failed", &e))?;
        // Nonblocking accept lets the acceptor poll the shutdown flag;
        // per-connection sockets are switched back to blocking +
        // deadline mode in the worker.
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("set_nonblocking failed", &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| io_err("local_addr failed", &e))?;
        Ok(Server {
            listener,
            local_addr,
            cfg,
            handler,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address (resolves port 0 to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that triggers graceful drain when fired.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shutdown.clone())
    }

    /// Accept and serve until the shutdown handle fires, then drain:
    /// stop accepting, finish queued and in-flight requests within
    /// `drain_deadline_ms` (late queued connections get a fast `503`),
    /// and report what happened.
    pub fn run(self) -> DrainReport {
        let metrics = Arc::new(Metrics::resolve());
        let (tx, rx) = sync_channel::<TcpStream>(self.cfg.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        // Set once when drain starts; workers use it to fast-503 queued
        // connections after the deadline instead of handling them fully.
        let drain_started: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
        let live = Arc::new(AtomicUsize::new(self.cfg.workers));
        for i in 0..self.cfg.workers {
            let rx = rx.clone();
            let handler = self.handler.clone();
            let metrics = metrics.clone();
            let cfg = self.cfg.clone();
            let worker_live = live.clone();
            let drain_started = drain_started.clone();
            let spawned = thread::Builder::new()
                .name(format!("http-worker-{i}"))
                .spawn(move || {
                    worker_loop(&rx, &*handler, &metrics, &cfg, &drain_started);
                    worker_live.fetch_sub(1, Ordering::SeqCst);
                });
            if spawned.is_err() {
                // Degrade to fewer workers rather than dying: capacity
                // shrinks, correctness does not.
                live.fetch_sub(1, Ordering::SeqCst);
                obs::warn!("http: failed to spawn worker {i}; continuing with fewer");
            }
        }
        obs::info!(
            "http: listening on {} ({} workers, queue depth {})",
            self.local_addr,
            self.cfg.workers,
            self.cfg.queue_depth
        );

        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    metrics.accepted.inc();
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => shed(stream, &self.cfg, &metrics),
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    obs::warn!("http: accept failed: {e}");
                    thread::sleep(Duration::from_millis(5));
                }
            }
        }

        // Drain: closing the sender ends worker loops once the queue
        // empties; the deadline bounds how long we wait for stragglers.
        obs::info!("http: draining (deadline {} ms)", self.cfg.drain_deadline_ms);
        *lock(&drain_started) = Some(Instant::now());
        drop(tx);
        let deadline = Duration::from_millis(self.cfg.drain_deadline_ms);
        let started = Instant::now();
        while live.load(Ordering::SeqCst) > 0 && started.elapsed() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        let drained = live.load(Ordering::SeqCst) == 0;
        if !drained {
            obs::warn!(
                "http: {} worker(s) still busy past the drain deadline; detaching",
                live.load(Ordering::SeqCst)
            );
        }
        DrainReport {
            drained,
            accepted: metrics.accepted.get(),
            served: metrics.served.get(),
            shed: metrics.shed.get(),
        }
    }
}

/// Lock a mutex, surviving poison: the protected values here (a drain
/// timestamp, a receiver) stay valid even if a holder panicked.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    handler: &dyn Handler,
    metrics: &Metrics,
    cfg: &ServeConfig,
    drain_started: &Mutex<Option<Instant>>,
) {
    loop {
        // Holding the lock across recv() parks exactly one idle worker
        // on the channel; handling happens after the guard drops, so
        // the pool still serves `workers` requests concurrently.
        let received = lock(rx).recv();
        let Ok(stream) = received else { return };
        let past_deadline = lock(drain_started)
            .map(|t| t.elapsed() >= Duration::from_millis(cfg.drain_deadline_ms))
            .unwrap_or(false);
        if past_deadline {
            shed(stream, cfg, metrics);
            continue;
        }
        handle_connection(stream, handler, metrics, cfg);
    }
}

/// Answer an over-capacity connection with `503` + `Retry-After` under
/// the normal write deadline, and count it in `http.shed`.
fn shed(stream: TcpStream, cfg: &ServeConfig, metrics: &Metrics) {
    metrics.shed.inc();
    let resp = Response::text(503, "over capacity; retry shortly\n")
        .with_header("Retry-After", &cfg.retry_after_secs.to_string());
    write_response(stream, &resp, cfg);
}

fn write_response(mut stream: TcpStream, resp: &Response, cfg: &ServeConfig) -> bool {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
    let bytes = resp.encode();
    match stream.write_all(&bytes).and_then(|()| stream.flush()) {
        Ok(()) => true,
        Err(e) => {
            obs::debug!("http: response write failed: {e}");
            false
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    handler: &dyn Handler,
    metrics: &Metrics,
    cfg: &ServeConfig,
) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)));
    match http::read_request(&mut stream, cfg.max_head_bytes) {
        Ok(req) => {
            // The single workspace unwind site: a panicking handler
            // (organic or chaos-injected) costs one 500, not a worker.
            let resp = match simcore::recover::capture(simcore::chaos::sites::HTTP_REQUEST, || {
                handler.handle(&req)
            }) {
                Ok(resp) => resp,
                Err(caught) => {
                    metrics.panics.inc();
                    obs::warn!("http: handler panicked: {caught}");
                    Response::text(500, "internal error: request handler panicked\n")
                }
            };
            metrics.served.inc();
            metrics.count_status(resp.status);
            let ok = write_response(stream, &resp, cfg);
            if obs::enabled() {
                metrics
                    .latency
                    .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
            // Access log on the leveled logger (DDOSCOVERY_LOG=debug).
            obs::debug!(
                "http: {} {}{}{} -> {} ({} bytes{})",
                req.method,
                req.path,
                if req.query.is_empty() { "" } else { "?" },
                req.query,
                resp.status,
                resp.body.len(),
                if ok { "" } else { ", write failed" }
            );
        }
        Err(ParseError::TooLarge) => {
            metrics.too_large.inc();
            write_response(stream, &Response::text(431, "request head too large\n"), cfg);
        }
        Err(ParseError::Malformed(why)) => {
            metrics.malformed.inc();
            write_response(stream, &Response::bad_request(why), cfg);
        }
        Err(ParseError::Timeout) => {
            metrics.timeouts.inc();
            // Best effort: a slowloris peer may not read it either.
            write_response(stream, &Response::text(408, "request head timed out\n"), cfg);
        }
        Err(ParseError::Disconnect) => {
            metrics.disconnects.inc();
        }
        Err(ParseError::Io(e)) => {
            metrics.disconnects.inc();
            obs::debug!("http: request read failed: {e}");
        }
    }
}
