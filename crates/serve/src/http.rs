//! Byte-capped HTTP/1.1 request parsing and response encoding.
//!
//! The parser is deliberately small and paranoid: it reads at most
//! `max_head_bytes` from the socket looking for the end-of-head blank
//! line, classifies every failure into a [`ParseError`] variant with a
//! definite status-code mapping, and never panics on any byte sequence
//! (property-tested by `crates/serve/tests/parser_fuzz.rs`). Bodies are
//! ignored by design — every endpoint of the query service is a GET, and
//! the server closes each connection after one response, so pipelined
//! trailing bytes are dropped rather than interpreted.

use std::io::Read;

/// Hard cap on header lines per request; more maps to 431.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on the request-target length; more maps to 400.
pub const MAX_TARGET_BYTES: usize = 2048;

/// A parsed request head. Header names are lower-cased at parse time;
/// the query string is kept raw (no percent-decoding — the service's
/// parameters are plain ASCII tokens and numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase ASCII method token, e.g. `GET`.
    pub method: String,
    /// Path component of the request target, always starting with `/`.
    pub path: String,
    /// Raw query string after `?`, empty when absent.
    pub query: String,
    /// `(lowercase-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }

    /// Value of `key` in an `a=b&c=d` query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Why a request head could not be produced. Each variant has one
/// documented wire outcome, applied by the server's connection loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically invalid head → `400 Bad Request`.
    Malformed(&'static str),
    /// Head exceeded the byte or header-count budget → `431`.
    TooLarge,
    /// The read deadline expired mid-head (slowloris) → `408`.
    Timeout,
    /// The peer closed before sending a single byte → drop silently.
    Disconnect,
    /// Any other socket error → drop, counted as a transport error.
    Io(String),
}

/// Read from `r` until the end-of-head blank line, returning the head
/// bytes (terminator excluded). At most `max_bytes` are buffered; a
/// head that has not terminated by then is [`ParseError::TooLarge`].
pub fn read_head(r: &mut impl Read, max_bytes: usize) -> Result<Vec<u8>, ParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if let Some(end) = head_end(&buf) {
            buf.truncate(end);
            return Ok(buf);
        }
        if buf.len() >= max_bytes {
            return Err(ParseError::TooLarge);
        }
        match r.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    ParseError::Disconnect
                } else {
                    ParseError::Malformed("connection closed mid-head")
                });
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => match e.kind() {
                std::io::ErrorKind::Interrupted => {}
                // Both surface for an expired SO_RCVTIMEO depending on
                // platform; either way the peer was too slow.
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    return Err(ParseError::Timeout)
                }
                _ => return Err(ParseError::Io(e.to_string())),
            },
        }
    }
}

/// Offset of the head terminator (`\r\n\r\n`, or bare `\n\n` from
/// sloppy clients), if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Parse a complete head (as returned by [`read_head`]) into a
/// [`Request`]. Pure — feed it arbitrary bytes.
pub fn parse_head(head: &[u8]) -> Result<Request, ParseError> {
    let text = std::str::from_utf8(head).map_err(|_| ParseError::Malformed("non-UTF-8 head"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::Malformed("request line is not METHOD TARGET VERSION")),
    };
    if method.is_empty()
        || method.len() > 16
        || !method.bytes().all(|b| b.is_ascii_uppercase())
    {
        return Err(ParseError::Malformed("method is not an uppercase ASCII token"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported protocol version"));
    }
    if !target.starts_with('/') || target.len() > MAX_TARGET_BYTES {
        return Err(ParseError::Malformed("request target must be an origin-form path"));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header line has no colon"))?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(ParseError::Malformed("header name is not a token"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        headers,
    })
}

/// [`read_head`] then [`parse_head`]: one bounded read of a request.
pub fn read_request(r: &mut impl Read, max_bytes: usize) -> Result<Request, ParseError> {
    parse_head(&read_head(r, max_bytes)?)
}

/// An application response: status, media type, body, extra headers
/// (`ETag`, `Retry-After`, …). `Content-Length` and `Connection: close`
/// are added by [`Response::encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes (empty for 304).
    pub body: Vec<u8>,
    /// Additional `(name, value)` headers.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// An `application/json` response from pre-serialized JSON.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// A `text/csv` response.
    pub fn csv(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/csv; charset=utf-8",
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// `404` with a one-line body naming what was missing.
    pub fn not_found(what: &str) -> Response {
        Response::text(404, format!("not found: {what}\n"))
    }

    /// `400` with a one-line reason.
    pub fn bad_request(why: &str) -> Response {
        Response::text(400, format!("bad request: {why}\n"))
    }

    /// A bodyless `304 Not Modified` carrying the matched ETag.
    pub fn not_modified(etag: &str) -> Response {
        Response {
            status: 304,
            content_type: "text/plain; charset=utf-8",
            body: Vec::new(),
            headers: vec![("ETag".to_string(), etag.to_string())],
        }
    }

    /// Builder-style extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize head + body to wire bytes, adding `Content-Length` and
    /// `Connection: close` (the server handles one request per
    /// connection by design).
    pub fn encode(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Request, ParseError> {
        read_request(&mut s.as_bytes(), 8192)
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /v1/trends?norm=1 HTTP/1.1\r\nHost: x\r\nIf-None-Match: \"ab\"\r\n\r\n")
            .expect("well-formed");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/trends");
        assert_eq!(req.query, "norm=1");
        assert_eq!(req.query_param("norm"), Some("1"));
        assert_eq!(req.header("if-none-match"), Some("\"ab\""));
        assert_eq!(req.header("IF-NONE-MATCH"), Some("\"ab\""));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET / HTTP/1.1\nHost: x\n\n").expect("lf-only head");
        assert_eq!(req.path, "/");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn classifies_malformed_heads() {
        for bad in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "GET / SPDY/9\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET / HTTP/1.1\r\nbad name: v\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(ParseError::Malformed(_))),
                "expected Malformed for {bad:?}, got {:?}",
                parse(bad)
            );
        }
    }

    #[test]
    fn oversized_heads_are_too_large() {
        let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(9000));
        assert_eq!(parse(&huge), Err(ParseError::TooLarge));
        let many: String = (0..80).map(|i| format!("X-H{i}: v\r\n")).collect();
        let req = format!("GET / HTTP/1.1\r\n{many}\r\n");
        assert_eq!(
            read_request(&mut req.as_bytes(), 64 * 1024),
            Err(ParseError::TooLarge)
        );
    }

    #[test]
    fn early_disconnects_and_truncation_are_distinct() {
        assert_eq!(parse(""), Err(ParseError::Disconnect));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: x"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn pipelined_trailing_bytes_are_dropped() {
        let two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let req = parse(two).expect("first request parses");
        assert_eq!(req.path, "/a");
    }

    #[test]
    fn encodes_responses_with_length_and_close() {
        let bytes = Response::text(200, "hi").with_header("ETag", "\"x\"").encode();
        let text = String::from_utf8(bytes).expect("ascii head");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("ETag: \"x\"\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }
}
