//! Property-based tests for the flow-monitoring observatories.

use attackgen::attack::{Attack, AttackClass, AttackId, AttackVector, ReflectorUse};
use flowmon::{Akamai, IxpBlackholing, Netscout, Severity};
use netmodel::{AmpVector, InternetPlan, Ipv4, NetScale};
use proptest::prelude::*;
use simcore::{SimRng, SimTime};
use std::sync::OnceLock;

fn plan() -> &'static InternetPlan {
    static PLAN: OnceLock<InternetPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    })
}

fn attack(id: u64, class: AttackClass, pps: f64, asn: netmodel::Asn, target: Ipv4) -> Attack {
    let (vector, reflectors, spoof) = match class {
        AttackClass::ReflectionAmplification => (
            AttackVector::Amplification(AmpVector::Dns),
            Some(ReflectorUse {
                vector: AmpVector::Dns,
                reflector_count: 500,
            }),
            0.0,
        ),
        AttackClass::DirectPathSpoofed => (AttackVector::SynFlood, None, 1.0),
        AttackClass::DirectPathNonSpoofed => (AttackVector::SynFlood, None, 0.0),
    };
    Attack {
        id: AttackId(id),
        class,
        vector,
        start: SimTime(5_000),
        duration_secs: 300,
        targets: vec![target],
        target_asn: asn,
        pps,
        bps: pps * 3360.0,
        reflectors,
        spoof_space_fraction: spoof,
        campaign: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Netscout never alerts on non-customers; severity is monotone in
    /// pps; observations are deterministic.
    #[test]
    fn netscout_invariants(pps in 100.0f64..1e7, id in 0u64..10_000) {
        let plan = plan();
        let ns = Netscout::with_defaults(plan);
        let root = SimRng::new(1);
        let customer = *plan.netscout_customers.iter().next().unwrap();
        let a = attack(id, AttackClass::DirectPathNonSpoofed, pps, customer, Ipv4(1));
        let first = ns.observe(&a, &root);
        prop_assert_eq!(&ns.observe(&a, &root), &first);
        if let Some(alert) = &first {
            prop_assert!(a.pps >= ns.cfg.medium_pps);
            if alert.severity == Severity::High {
                prop_assert!(a.pps >= ns.cfg.high_pps);
            }
        } else if pps >= ns.cfg.medium_pps {
            // Missing despite severity ⇒ only the alert-probability coin
            // can explain it; verify by checking a sibling id is seen at
            // ~90 %. (Statistical check folded into unit tests; here we
            // only assert no *systematic* failure for huge attacks.)
        }
        // Non-customer: never.
        let outsider = plan
            .registry
            .iter()
            .find(|r| !plan.netscout_customers.contains(&r.asn) && r.target_weight > 0.0)
            .unwrap()
            .asn;
        let b = attack(id, AttackClass::DirectPathNonSpoofed, pps, outsider, Ipv4(1));
        prop_assert!(ns.observe(&b, &root).is_none());
    }

    /// IXP detection is monotone in bps: if an attack is observed, the
    /// same attack with higher rate (same id ⇒ same coins) is too.
    #[test]
    fn ixp_monotone_in_rate(pps in 1_000.0f64..1e7, id in 0u64..10_000) {
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(plan);
        let root = SimRng::new(2);
        let member = *plan.ixp_members.iter().next().unwrap();
        let lo = attack(id, AttackClass::DirectPathNonSpoofed, pps, member, Ipv4(1));
        let hi = attack(id, AttackClass::DirectPathNonSpoofed, pps * 10.0, member, Ipv4(1));
        if ixp.observe(&lo, &root).is_some() {
            prop_assert!(ixp.observe(&hi, &root).is_some());
        }
        // Detection class matches attack class when observed.
        if let Some((det, obs)) = ixp.observe(&hi, &root) {
            prop_assert_eq!(det, flowmon::IxpDetection::DirectPath);
            prop_assert_eq!(obs.attack_id, hi.id);
        }
    }

    /// Akamai observation targets are always within protected space and
    /// a subset of the attack's targets.
    #[test]
    fn akamai_scope_invariant(offset in 0u64..1_000, id in 0u64..10_000) {
        let plan = plan();
        let ak = Akamai::with_defaults(plan);
        let root = SimRng::new(3);
        let pfx = plan.akamai_prefix_list[0];
        let inside = pfx.nth(offset % pfx.size());
        let outside = Ipv4::new(223, 255, 0, 1);
        let mut a = attack(id, AttackClass::ReflectionAmplification, 100_000.0,
            netmodel::Asn(1), inside);
        a.targets = vec![inside, outside];
        if let Some((_, obs)) = ak.observe(&a, &root) {
            for t in &obs.targets {
                prop_assert!(ak.protects(*t));
                prop_assert!(a.targets.contains(t));
            }
        }
        // An attack entirely outside protected space is never seen.
        let b = attack(id, AttackClass::DirectPathSpoofed, 100_000.0,
            netmodel::Asn(1), outside);
        prop_assert!(ak.observe(&b, &root).is_none());
    }

    /// The packet-level IXP classifier never returns RA without
    /// amplification-port UDP traffic present.
    #[test]
    fn ixp_classifier_requires_amp_ports(
        n_pkts in 100usize..2_000,
        src_count in 1u32..100,
        tcp in proptest::bool::ANY,
    ) {
        use attackgen::PacketEvent;
        use netmodel::Transport;
        let cfg = flowmon::IxpConfig::default();
        let packets: Vec<PacketEvent> = (0..n_pkts)
            .map(|i| PacketEvent {
                time: SimTime((i / 500) as i64),
                src: Ipv4(i as u32 % src_count),
                src_port: 31_000, // never an amplification port
                dst: Ipv4::new(10, 0, 0, 1),
                dst_port: 80,
                transport: if tcp { Transport::Tcp } else { Transport::Udp },
                size_bytes: 1500,
            })
            .collect();
        let verdict = flowmon::classify_blackholed_traffic(&packets, &cfg);
        prop_assert_ne!(verdict, Some(flowmon::IxpDetection::ReflectionAmplification));
    }
}
