//! The IXP-blackholing observatory (Kopp et al., PAM 2021 — ref [82] of
//! the paper).
//!
//! Vantage point: a large European IXP. Customers under attack announce
//! blackholes; the method classifies the traffic toward blackholed
//! prefixes using the Table-2 identifiers:
//!
//! * reflection-amplification: UDP with an amplification source port,
//!   ≥ 10 source IPs, > 1 Gbps;
//! * direct-path: TCP, ≥ 10 source IPs, > 100 Mbps.
//!
//! The paper stresses this is "a lower bound of direct-path attacks
//! passing this IXP and may depend on IXP customer actions" (§6.1) —
//! our model keeps both filters: the attack must traverse the IXP *and*
//! the customer must request blackholing.

use attackgen::{Attack, AttackClass, AttackRef, ObservedAttack, PacketEvent};
use netmodel::{AmpVector, Asn, InternetPlan, Transport};
use serde::{Deserialize, Serialize};
use simcore::SimRng;
use std::collections::{HashMap, HashSet};

/// What the classifier labeled a blackholed traffic aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IxpDetection {
    ReflectionAmplification,
    DirectPath,
}

/// Classifier thresholds (Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IxpConfig {
    /// Minimum distinct source IPs for either class.
    pub min_src_ips: u64,
    /// RA bit-rate floor (bits/second).
    pub ra_min_bps: f64,
    /// DP bit-rate floor (bits/second).
    pub dp_min_bps: f64,
    /// Probability that a given attack's traffic traverses this IXP at
    /// all (path diversity, §4: "some (or all) attack traffic may
    /// transit paths other than the IXP").
    pub path_probability: f64,
    /// Probability that the victim's network reacts with a blackhole
    /// announcement.
    pub blackhole_request_probability: f64,
}

impl Default for IxpConfig {
    fn default() -> Self {
        IxpConfig {
            min_src_ips: 10,
            ra_min_bps: 1e9,
            dp_min_bps: 1e8,
            path_probability: 0.9,
            blackhole_request_probability: 0.5,
        }
    }
}

/// The event-level IXP observatory.
#[derive(Debug, Clone)]
pub struct IxpBlackholing {
    pub cfg: IxpConfig,
    members: HashSet<Asn>,
    /// Injected data-plane faults (outage windows, flow-sampling
    /// degradation). Empty by default and bit-for-bit inert when empty.
    pub faults: simcore::faults::ObsFaults,
}

impl IxpBlackholing {
    pub fn new(plan: &InternetPlan, cfg: IxpConfig) -> Self {
        IxpBlackholing {
            cfg,
            members: plan.ixp_members.clone(),
            faults: simcore::faults::ObsFaults::default(),
        }
    }

    pub fn with_defaults(plan: &InternetPlan) -> Self {
        Self::new(plan, IxpConfig::default())
    }

    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Event-level detection verdict for one attack row. The IXP's
    /// observation tuple is just the attack's (id, start, targets), so
    /// columnar callers append it to their own sink without cloning.
    pub fn observe_view(&self, attack: AttackRef<'_>, root: &SimRng) -> Option<IxpDetection> {
        // Outage check first, before any RNG fork, so unaffected weeks
        // keep their exact detection streams.
        let week = attack.start.week_index();
        if self.faults.is_down(week) {
            return None;
        }
        if !self.members.contains(&attack.target_asn) {
            return None;
        }
        // Sampling degradation swallows the would-be detection from a
        // dedicated RNG fork, leaving the main draw stream untouched.
        if self.faults.drops_sample(root, attack.id.0, week) {
            return None;
        }
        let mut rng = root.fork(attack.id.0).fork_named("ixp-blackholing");
        if !rng.chance(self.cfg.path_probability) {
            return None;
        }
        if !rng.chance(self.cfg.blackhole_request_probability) {
            return None;
        }
        // Distinct sources of the attack aggregate: reflectors for RA;
        // effectively unbounded for spoofed floods; botnet-sized for
        // non-spoofed.
        let (detection, src_ips, min_bps, transport_ok) = match attack.class {
            AttackClass::ReflectionAmplification => {
                let refl = attack.reflectors?;
                (
                    IxpDetection::ReflectionAmplification,
                    refl.reflector_count as u64,
                    self.cfg.ra_min_bps,
                    true, // reflected responses are UDP from the service port
                )
            }
            AttackClass::DirectPathSpoofed => (
                IxpDetection::DirectPath,
                u64::MAX,
                self.cfg.dp_min_bps,
                attack.vector.transport() == Transport::Tcp,
            ),
            AttackClass::DirectPathNonSpoofed => (
                IxpDetection::DirectPath,
                50_000, // botnet population
                self.cfg.dp_min_bps,
                attack.vector.transport() == Transport::Tcp,
            ),
        };
        if !transport_ok || src_ips < self.cfg.min_src_ips || attack.bps <= min_bps {
            return None;
        }
        Some(detection)
    }

    /// Event-level observation. Returns the detection class alongside
    /// the observation so the core pipeline can maintain the IXP's two
    /// separate series (Fig. 2(e) and Fig. 3(e)).
    pub fn observe(&self, attack: &Attack, root: &SimRng) -> Option<(IxpDetection, ObservedAttack)> {
        let detection = self.observe_view(attack.view(), root)?;
        Some((
            detection,
            ObservedAttack {
                attack_id: attack.id,
                start: attack.start,
                targets: attack.targets.clone(),
            },
        ))
    }

    /// Observe a stream, returning the two series separately.
    pub fn observe_all(
        &self,
        attacks: &[Attack],
        root: &SimRng,
    ) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
        split_detections(
            attacks
                .iter()
                .filter_map(|a| self.observe(a, root))
                .collect(),
        )
    }

    /// Observe a stream sharded across `pool`, returning the two series
    /// separately. Identical output to [`IxpBlackholing::observe_all`]:
    /// per-attack draws fork from (attack id, "ixp-blackholing") and
    /// shards merge in input order before the class split.
    pub fn observe_all_on(
        &self,
        attacks: &[Attack],
        root: &SimRng,
        pool: &simcore::ExecPool,
    ) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
        split_detections(pool.par_filter_map(attacks, |a| self.observe(a, root)))
    }
}

fn split_detections(
    tagged: Vec<(IxpDetection, ObservedAttack)>,
) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
    let mut ra = Vec::new();
    let mut dp = Vec::new();
    for (det, o) in tagged {
        match det {
            IxpDetection::ReflectionAmplification => ra.push(o),
            IxpDetection::DirectPath => dp.push(o),
        }
    }
    (ra, dp)
}

/// Packet-level classification of one blackholed traffic aggregate
/// (all packets toward one victim prefix during one blackhole episode).
///
/// Mirrors the Table-2 identifiers exactly; used to validate the
/// event-level model and in the detector-validation example.
pub fn classify_blackholed_traffic(packets: &[PacketEvent], cfg: &IxpConfig) -> Option<IxpDetection> {
    if packets.is_empty() {
        return None;
    }
    let amp_ports: HashSet<u16> = AmpVector::ALL.iter().map(|v| v.src_port()).collect();
    let t_min = packets.iter().map(|p| p.time.0).min().unwrap_or(0);
    let t_max = packets.iter().map(|p| p.time.0).max().unwrap_or(0);
    let span = (t_max - t_min).max(1) as f64;

    let mut udp_amp_srcs: HashMap<netmodel::Ipv4, ()> = HashMap::new();
    let mut tcp_srcs: HashMap<netmodel::Ipv4, ()> = HashMap::new();
    let mut udp_amp_bytes = 0u64;
    let mut tcp_bytes = 0u64;
    for p in packets {
        match p.transport {
            Transport::Udp if amp_ports.contains(&p.src_port) => {
                udp_amp_srcs.insert(p.src, ());
                udp_amp_bytes += p.size_bytes as u64;
            }
            Transport::Tcp => {
                tcp_srcs.insert(p.src, ());
                tcp_bytes += p.size_bytes as u64;
            }
            _ => {}
        }
    }
    let udp_bps = udp_amp_bytes as f64 * 8.0 / span;
    let tcp_bps = tcp_bytes as f64 * 8.0 / span;
    if udp_amp_srcs.len() as u64 >= cfg.min_src_ips && udp_bps > cfg.ra_min_bps {
        return Some(IxpDetection::ReflectionAmplification);
    }
    if tcp_srcs.len() as u64 >= cfg.min_src_ips && tcp_bps > cfg.dp_min_bps {
        return Some(IxpDetection::DirectPath);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use attackgen::attack::{AttackId, AttackVector, ReflectorUse};
    use netmodel::{Ipv4, NetScale};
    use simcore::SimTime;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn member_asn(plan: &InternetPlan) -> Asn {
        *plan.ixp_members.iter().next().expect("no IXP members")
    }

    fn attack(plan: &InternetPlan, id: u64, class: AttackClass, bps: f64) -> Attack {
        let asn = member_asn(plan);
        let (vector, reflectors) = match class {
            AttackClass::ReflectionAmplification => (
                AttackVector::Amplification(AmpVector::Dns),
                Some(ReflectorUse {
                    vector: AmpVector::Dns,
                    reflector_count: 500,
                }),
            ),
            _ => (AttackVector::SynFlood, None),
        };
        Attack {
            id: AttackId(id),
            class,
            vector,
            start: SimTime(1000),
            duration_secs: 300,
            targets: vec![Ipv4::new(10, 0, 0, 1)],
            target_asn: asn,
            pps: bps / 8.0 / 420.0,
            bps,
            reflectors,
            spoof_space_fraction: if class == AttackClass::DirectPathSpoofed { 1.0 } else { 0.0 },
            campaign: None,
        }
    }

    #[test]
    fn big_attacks_on_members_sometimes_observed() {
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(&plan);
        let root = SimRng::new(1);
        let seen = (0..200)
            .filter(|&id| {
                ixp.observe(&attack(&plan, id, AttackClass::DirectPathSpoofed, 5e8), &root)
                    .is_some()
            })
            .count();
        // path(0.9) × blackhole(0.5) ≈ 45 %.
        assert!((55..=130).contains(&seen), "seen {seen}");
    }

    #[test]
    fn non_members_invisible() {
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(&plan);
        let root = SimRng::new(1);
        let non_member = plan
            .registry
            .iter()
            .find(|r| !plan.ixp_members.contains(&r.asn) && r.target_weight > 0.0)
            .unwrap()
            .asn;
        for id in 0..100 {
            let mut a = attack(&plan, id, AttackClass::DirectPathSpoofed, 5e8);
            a.target_asn = non_member;
            assert!(ixp.observe(&a, &root).is_none());
        }
    }

    #[test]
    fn dp_threshold_100mbps() {
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(&plan);
        let root = SimRng::new(1);
        for id in 0..100 {
            let a = attack(&plan, id, AttackClass::DirectPathSpoofed, 5e7); // 50 Mbps
            assert!(ixp.observe(&a, &root).is_none());
        }
    }

    #[test]
    fn ra_threshold_1gbps() {
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(&plan);
        let root = SimRng::new(1);
        let mut below = 0;
        let mut above = 0;
        for id in 0..200 {
            let weak = attack(&plan, id, AttackClass::ReflectionAmplification, 5e8);
            below += ixp.observe(&weak, &root).is_some() as u32;
            let strong = attack(&plan, 1000 + id, AttackClass::ReflectionAmplification, 5e9);
            above += ixp.observe(&strong, &root).is_some() as u32;
        }
        assert_eq!(below, 0);
        assert!(above > 40, "above {above}");
    }

    #[test]
    fn ra_needs_enough_reflectors() {
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(&plan);
        let root = SimRng::new(1);
        for id in 0..100 {
            let mut a = attack(&plan, id, AttackClass::ReflectionAmplification, 5e9);
            a.reflectors = Some(ReflectorUse {
                vector: AmpVector::Dns,
                reflector_count: 5, // under the 10-source floor
            });
            assert!(ixp.observe(&a, &root).is_none());
        }
    }

    #[test]
    fn udp_direct_path_unclassified() {
        // The DP identifier is TCP-only (Table 2): a UDP flood that is
        // not reflection goes unlabeled.
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(&plan);
        let root = SimRng::new(1);
        for id in 0..100 {
            let mut a = attack(&plan, id, AttackClass::DirectPathSpoofed, 5e9);
            a.vector = AttackVector::UdpFlood;
            assert!(ixp.observe(&a, &root).is_none());
        }
    }

    #[test]
    fn detection_class_matches_attack_class() {
        let plan = plan();
        let ixp = IxpBlackholing::with_defaults(&plan);
        let root = SimRng::new(1);
        let attacks: Vec<Attack> = (0..300)
            .map(|id| {
                if id % 2 == 0 {
                    attack(&plan, id, AttackClass::ReflectionAmplification, 5e9)
                } else {
                    attack(&plan, id, AttackClass::DirectPathNonSpoofed, 5e8)
                }
            })
            .collect();
        let (ra, dp) = ixp.observe_all(&attacks, &root);
        assert!(!ra.is_empty() && !dp.is_empty());
        for o in &ra {
            assert_eq!(o.attack_id.0 % 2, 0);
        }
        for o in &dp {
            assert_eq!(o.attack_id.0 % 2, 1);
        }
    }

    #[test]
    fn packet_classifier_ra() {
        let cfg = IxpConfig::default();
        // 2000 pps of 1500-byte DNS responses for 10 s = 24 Mbps... need
        // > 1 Gbps: 100k pps of 1500 B = 1.2 Gbps.
        let mut packets = Vec::new();
        for i in 0..200_000u32 {
            packets.push(PacketEvent {
                time: SimTime((i / 100_000) as i64),
                src: Ipv4(1000 + (i % 50)),
                src_port: AmpVector::Dns.src_port(),
                dst: Ipv4::new(10, 0, 0, 1),
                dst_port: 80,
                transport: Transport::Udp,
                size_bytes: 1500,
            });
        }
        assert_eq!(
            classify_blackholed_traffic(&packets, &cfg),
            Some(IxpDetection::ReflectionAmplification)
        );
    }

    #[test]
    fn packet_classifier_dp() {
        let cfg = IxpConfig::default();
        let mut packets = Vec::new();
        for i in 0..100_000u32 {
            packets.push(PacketEvent {
                time: SimTime((i / 50_000) as i64),
                src: Ipv4(i), // random spoofed
                src_port: 31_000,
                dst: Ipv4::new(10, 0, 0, 1),
                dst_port: 80,
                transport: Transport::Tcp,
                size_bytes: 500,
            });
        }
        assert_eq!(
            classify_blackholed_traffic(&packets, &cfg),
            Some(IxpDetection::DirectPath)
        );
    }

    #[test]
    fn packet_classifier_rejects_few_sources() {
        let cfg = IxpConfig::default();
        let packets: Vec<PacketEvent> = (0..100_000u32)
            .map(|i| PacketEvent {
                time: SimTime((i / 50_000) as i64),
                src: Ipv4(5), // single source
                src_port: 31_000,
                dst: Ipv4::new(10, 0, 0, 1),
                dst_port: 80,
                transport: Transport::Tcp,
                size_bytes: 1500,
            })
            .collect();
        assert_eq!(classify_blackholed_traffic(&packets, &cfg), None);
    }

    #[test]
    fn packet_classifier_empty() {
        assert_eq!(classify_blackholed_traffic(&[], &IxpConfig::default()), None);
    }
}
