//! The Netscout Atlas observatory model.
//!
//! Netscout "receives anonymized DDoS attack statistics from more than
//! 500 ISPs and 1500 enterprises worldwide" (§5) and shared daily attack
//! counts split by type (RA / DP), with the DP counts further split into
//! spoofed and non-spoofed. For the target-overlap study (§7.2), the
//! comparison baseline was ≈ 28 % of all Netscout alerts, and alerts
//! below the product-defined "medium" severity are excluded.

use attackgen::{Attack, AttackClass, AttackRef, ObservationColumns, ObservedAttack, ObservedRef};
use netmodel::{Asn, InternetPlan};
use serde::{Deserialize, Serialize};
use simcore::SimRng;
use std::collections::HashSet;

/// Severity grades of Atlas alerts. Only `Medium` and above enter the
/// shared data (§7.2 caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Low,
    Medium,
    High,
}

/// One Netscout alert: an observation plus its classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetscoutAlert {
    pub observation: ObservedAttack,
    pub class: AttackClass,
    pub severity: Severity,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetscoutConfig {
    /// Packet-rate floor of a `Medium` alert. Atlas grades severity on
    /// packet rate so reflection and direct-path attacks face the same
    /// bar — a bit-rate floor would systematically over-select RA
    /// (amplified responses carry far more bytes per packet).
    pub medium_pps: f64,
    /// Packet-rate floor of a `High` alert.
    pub high_pps: f64,
    /// Probability that an in-scope attack produces an alert at all
    /// (sensor placement inside the customer network).
    pub alert_probability: f64,
    /// Fraction of alerts entering the shared research baseline
    /// (§7.2: "approximately 28 % of all Netscout alerts").
    pub baseline_fraction: f64,
}

impl Default for NetscoutConfig {
    fn default() -> Self {
        NetscoutConfig {
            medium_pps: 5_000.0,
            high_pps: 100_000.0,
            alert_probability: 0.9,
            baseline_fraction: 0.28,
        }
    }
}

/// Event-level Netscout Atlas.
#[derive(Debug, Clone)]
pub struct Netscout {
    pub cfg: NetscoutConfig,
    customers: HashSet<Asn>,
    /// Injected data-plane faults (outage windows, flow-sampling
    /// degradation). Empty by default and bit-for-bit inert when empty.
    pub faults: simcore::faults::ObsFaults,
}

impl Netscout {
    pub fn new(plan: &InternetPlan, cfg: NetscoutConfig) -> Self {
        Netscout {
            cfg,
            customers: plan.netscout_customers.clone(),
            faults: simcore::faults::ObsFaults::default(),
        }
    }

    pub fn with_defaults(plan: &InternetPlan) -> Self {
        Self::new(plan, NetscoutConfig::default())
    }

    pub fn customer_count(&self) -> usize {
        self.customers.len()
    }

    fn severity(&self, pps: f64) -> Option<Severity> {
        if pps >= self.cfg.high_pps {
            Some(Severity::High)
        } else if pps >= self.cfg.medium_pps {
            Some(Severity::Medium)
        } else {
            // Low alerts exist internally but are excluded from the
            // shared data — we drop them at the source like the paper's
            // baseline does.
            None
        }
    }

    /// Event-level alert verdict for one attack row. Returns the alert's
    /// classification when one fires; the observation itself is just the
    /// attack's (id, start, targets), which columnar callers append to
    /// their own sink.
    pub fn observe_view(&self, attack: AttackRef<'_>, root: &SimRng) -> Option<(AttackClass, Severity)> {
        // Outage check first, before any RNG fork, so unaffected weeks
        // keep their exact alert streams.
        let week = attack.start.week_index();
        if self.faults.is_down(week) {
            return None;
        }
        if !self.customers.contains(&attack.target_asn) {
            return None;
        }
        let mut rng = root.fork(attack.id.0).fork_named("netscout-atlas");
        if !rng.chance(self.cfg.alert_probability) {
            return None;
        }
        // Sampling degradation swallows the would-be alert from a
        // dedicated RNG fork, leaving the main draw stream untouched.
        if self.faults.drops_sample(root, attack.id.0, week) {
            return None;
        }
        // Atlas alerts are per victim: a carpet attack spreading its
        // rate over many addresses is graded by per-target rate — which
        // is exactly why carpet bombing evades per-IP thresholds
        // (§2.2 / Appendix I).
        let severity = self.severity(attack.pps_per_target())?;
        Some((attack.class, severity))
    }

    /// Event-level observation: an alert at `Medium`+ severity for an
    /// attack on a customer network.
    pub fn observe(&self, attack: &Attack, root: &SimRng) -> Option<NetscoutAlert> {
        let (class, severity) = self.observe_view(attack.view(), root)?;
        Some(NetscoutAlert {
            observation: ObservedAttack {
                attack_id: attack.id,
                start: attack.start,
                targets: attack.targets.clone(),
            },
            class,
            severity,
        })
    }

    /// Observe a stream; returns all alerts.
    pub fn observe_all(&self, attacks: &[Attack], root: &SimRng) -> Vec<NetscoutAlert> {
        attacks
            .iter()
            .filter_map(|a| self.observe(a, root))
            .collect()
    }

    /// Observe a stream sharded across `pool`. Identical output to
    /// [`Netscout::observe_all`]: per-attack draws fork from (attack id,
    /// "netscout-atlas") and shards merge in input order.
    pub fn observe_all_on(
        &self,
        attacks: &[Attack],
        root: &SimRng,
        pool: &simcore::ExecPool,
    ) -> Vec<NetscoutAlert> {
        pool.par_filter_map(attacks, |a| self.observe(a, root))
    }

    /// Per-alert draw deciding whether an alert lands in the shared
    /// research baseline. Deterministic in (root, attack id).
    pub fn baseline_keep(&self, attack_id: u64, root: &SimRng) -> bool {
        let mut rng = root.fork(attack_id).fork_named("netscout-baseline");
        rng.chance(self.cfg.baseline_fraction)
    }

    /// Draw the shared research baseline: ≈ `baseline_fraction` of all
    /// alerts, sampled deterministically per alert.
    pub fn baseline_sample<'a>(
        &self,
        alerts: &'a [NetscoutAlert],
        root: &SimRng,
    ) -> Vec<&'a NetscoutAlert> {
        alerts
            .iter()
            .filter(|al| self.baseline_keep(al.observation.attack_id.0, root))
            .collect()
    }
}

/// Columnar alert stream: the observation columns plus per-alert class
/// and severity lanes, all indexed by the same row.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertColumns {
    pub obs: ObservationColumns,
    pub class: Vec<AttackClass>,
    pub severity: Vec<Severity>,
}

impl AlertColumns {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(rows: usize) -> Self {
        Self {
            obs: ObservationColumns::with_capacity(rows),
            class: Vec::with_capacity(rows),
            severity: Vec::with_capacity(rows),
        }
    }

    pub fn len(&self) -> usize {
        self.class.len()
    }

    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// Append one alert row taking the observation tuple straight from
    /// the attack (Atlas alerts carry the attack's full target list).
    pub fn push(&mut self, attack: AttackRef<'_>, class: AttackClass, severity: Severity) {
        self.obs.begin_row(attack.id, attack.start);
        for &t in attack.targets {
            self.obs.push_target(t);
        }
        self.obs.commit_row();
        self.class.push(class);
        self.severity.push(severity);
    }

    /// Observation view plus the alert lanes for row `i`.
    pub fn get(&self, i: usize) -> (ObservedRef<'_>, AttackClass, Severity) {
        (self.obs.get(i), self.class[i], self.severity[i])
    }

    /// Consume `shard`, appending its rows after ours.
    pub fn append(&mut self, shard: AlertColumns) {
        self.obs.append(shard.obs);
        self.class.extend_from_slice(&shard.class);
        self.severity.extend_from_slice(&shard.severity);
    }

    /// Materialise struct-of-pointers alerts (tests, AoS interop).
    pub fn to_vec(&self) -> Vec<NetscoutAlert> {
        (0..self.len())
            .map(|i| NetscoutAlert {
                observation: self.obs.get(i).to_observed(),
                class: self.class[i],
                severity: self.severity[i],
            })
            .collect()
    }

    /// Build columns from struct alerts (tests, AoS interop).
    pub fn from_alerts(alerts: &[NetscoutAlert]) -> Self {
        let mut out = Self::with_capacity(alerts.len());
        for al in alerts {
            out.obs.begin_row(al.observation.attack_id, al.observation.start);
            for &t in &al.observation.targets {
                out.obs.push_target(t);
            }
            out.obs.commit_row();
            out.class.push(al.class);
            out.severity.push(al.severity);
        }
        out
    }

    /// Drop accumulated growth slack in every lane.
    pub fn shrink_to_fit(&mut self) {
        self.obs.shrink_to_fit();
        self.class.shrink_to_fit();
        self.severity.shrink_to_fit();
    }

    /// Resident bytes of the column storage (lengths, not capacities).
    pub fn resident_bytes(&self) -> usize {
        self.obs.resident_bytes()
            + self.class.len() * std::mem::size_of::<AttackClass>()
            + self.severity.len() * std::mem::size_of::<Severity>()
    }

    /// Encode to the stage-store wire format (DESIGN.md §11):
    /// observation columns followed by one-byte class and severity
    /// lanes. Deterministic bytes for identical streams.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = netmodel::wire::Writer::with_capacity(self.len() * 26 + 48);
        w.bytes(&self.obs.to_wire_bytes());
        w.u64(self.class.len() as u64);
        for &c in &self.class {
            w.u8(attackgen::wire::class_tag(c));
        }
        w.u64(self.severity.len() as u64);
        for &s in &self.severity {
            w.u8(match s {
                Severity::Low => 0,
                Severity::Medium => 1,
                Severity::High => 2,
            });
        }
        w.into_bytes()
    }

    /// Decode a wire payload; `Err` (never a panic) on truncated,
    /// corrupt, or row-count-inconsistent input.
    pub fn from_wire_bytes(bytes: &[u8]) -> netmodel::wire::WireResult<AlertColumns> {
        let mut r = netmodel::wire::Reader::new(bytes);
        let obs_len = r.count(1)?;
        let obs = ObservationColumns::from_wire_bytes(r.raw(obs_len)?)?;
        let n = r.count(1)?;
        let mut class = Vec::with_capacity(n);
        for _ in 0..n {
            class.push(attackgen::wire::class_from_tag(r.u8()?)?);
        }
        let n = r.count(1)?;
        let mut severity = Vec::with_capacity(n);
        for _ in 0..n {
            severity.push(match r.u8()? {
                0 => Severity::Low,
                1 => Severity::Medium,
                2 => Severity::High,
                t => return Err(format!("unknown Severity tag {t}")),
            });
        }
        r.finish()?;
        if class.len() != obs.len() || severity.len() != obs.len() {
            return Err(format!(
                "alert lanes disagree: {} observations, {} classes, {} severities",
                obs.len(),
                class.len(),
                severity.len()
            ));
        }
        Ok(AlertColumns { obs, class, severity })
    }
}

/// Split alerts into the two published series (RA and DP observations).
pub fn split_by_class(alerts: &[NetscoutAlert]) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
    let mut ra = Vec::new();
    let mut dp = Vec::new();
    for al in alerts {
        match al.class {
            AttackClass::ReflectionAmplification => ra.push(al.observation.clone()),
            _ => dp.push(al.observation.clone()),
        }
    }
    (ra, dp)
}

/// Columnar [`split_by_class`]: same row order, column storage.
pub fn split_by_class_columns(alerts: &AlertColumns) -> (ObservationColumns, ObservationColumns) {
    let mut ra = ObservationColumns::new();
    let mut dp = ObservationColumns::new();
    for i in 0..alerts.len() {
        let row = alerts.obs.get(i);
        let out = match alerts.class[i] {
            AttackClass::ReflectionAmplification => &mut ra,
            _ => &mut dp,
        };
        out.push_row(row.attack_id, row.start, row.targets);
    }
    (ra, dp)
}

/// Columnar [`split_dp_spoofing`]: same row order, column storage.
pub fn split_dp_spoofing_columns(alerts: &AlertColumns) -> (ObservationColumns, ObservationColumns) {
    let mut spoofed = ObservationColumns::new();
    let mut nonspoofed = ObservationColumns::new();
    for i in 0..alerts.len() {
        let row = alerts.obs.get(i);
        match alerts.class[i] {
            AttackClass::DirectPathSpoofed => spoofed.push_row(row.attack_id, row.start, row.targets),
            AttackClass::DirectPathNonSpoofed => {
                nonspoofed.push_row(row.attack_id, row.start, row.targets)
            }
            AttackClass::ReflectionAmplification => {}
        }
    }
    (spoofed, nonspoofed)
}

/// Split DP alerts into spoofed / non-spoofed counts (the extra split
/// Netscout provided, §5).
pub fn split_dp_spoofing(alerts: &[NetscoutAlert]) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
    let mut spoofed = Vec::new();
    let mut nonspoofed = Vec::new();
    for al in alerts {
        match al.class {
            AttackClass::DirectPathSpoofed => spoofed.push(al.observation.clone()),
            AttackClass::DirectPathNonSpoofed => nonspoofed.push(al.observation.clone()),
            AttackClass::ReflectionAmplification => {}
        }
    }
    (spoofed, nonspoofed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attackgen::attack::{AttackId, AttackVector};
    use netmodel::{Ipv4, NetScale};
    use simcore::SimTime;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    #[test]
    fn alert_columns_wire_round_trip() {
        let plan = plan();
        let root = SimRng::new(41);
        let netscout = Netscout::with_defaults(&plan);
        let mut cols = AlertColumns::new();
        for id in 0..400u64 {
            let a = attack(&plan, id, 50_000.0 + id as f64, AttackClass::DirectPathSpoofed);
            if let Some((class, severity)) = netscout.observe_view(a.view(), &root) {
                cols.push(a.view(), class, severity);
            }
        }
        assert!(!cols.is_empty(), "sample stream must produce alerts");
        let bytes = cols.to_wire_bytes();
        let back = AlertColumns::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(back, cols);
        assert_eq!(back.to_wire_bytes(), bytes);
        // Truncations and flips reject or decode, never panic.
        for cut in (0..bytes.len()).step_by(7) {
            let _ = AlertColumns::from_wire_bytes(&bytes[..cut]);
        }
        for i in (0..bytes.len()).step_by(13) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let _ = AlertColumns::from_wire_bytes(&bad);
        }
    }

    fn attack(plan: &InternetPlan, id: u64, pps: f64, class: AttackClass) -> Attack {
        let asn = *plan.netscout_customers.iter().next().unwrap();
        Attack {
            id: AttackId(id),
            class,
            vector: AttackVector::SynFlood,
            start: SimTime(1000),
            duration_secs: 300,
            targets: vec![Ipv4::new(10, 0, 0, 1)],
            target_asn: asn,
            pps,
            bps: pps * 420.0 * 8.0,
            reflectors: None,
            spoof_space_fraction: 0.0,
            campaign: None,
        }
    }

    #[test]
    fn medium_floor_enforced() {
        let plan = plan();
        let ns = Netscout::with_defaults(&plan);
        let root = SimRng::new(1);
        let low = attack(&plan, 1, 500.0, AttackClass::DirectPathNonSpoofed);
        let mut seen = 0;
        for id in 0..100 {
            let mut a = low.clone();
            a.id = AttackId(id);
            seen += ns.observe(&a, &root).is_some() as u32;
        }
        assert_eq!(seen, 0, "sub-medium attacks must be excluded");
    }

    #[test]
    fn severity_grades() {
        let plan = plan();
        let ns = Netscout::with_defaults(&plan);
        let root = SimRng::new(1);
        let mut found_medium = false;
        let mut found_high = false;
        for id in 0..100 {
            if let Some(al) = ns.observe(&attack(&plan, id, 20_000.0, AttackClass::DirectPathNonSpoofed), &root) {
                assert_eq!(al.severity, Severity::Medium);
                found_medium = true;
            }
            if let Some(al) = ns.observe(&attack(&plan, 1000 + id, 500_000.0, AttackClass::DirectPathNonSpoofed), &root) {
                assert_eq!(al.severity, Severity::High);
                found_high = true;
            }
        }
        assert!(found_medium && found_high);
    }

    #[test]
    fn non_customers_invisible() {
        let plan = plan();
        let ns = Netscout::with_defaults(&plan);
        let root = SimRng::new(1);
        let outsider = plan
            .registry
            .iter()
            .find(|r| !plan.netscout_customers.contains(&r.asn) && r.target_weight > 0.0)
            .unwrap()
            .asn;
        for id in 0..100 {
            let mut a = attack(&plan, id, 50_000.0, AttackClass::DirectPathNonSpoofed);
            a.target_asn = outsider;
            assert!(ns.observe(&a, &root).is_none());
        }
    }

    #[test]
    fn alert_probability_applies() {
        let plan = plan();
        let ns = Netscout::with_defaults(&plan);
        let root = SimRng::new(1);
        let seen = (0..1000)
            .filter(|&id| ns.observe(&attack(&plan, id, 50_000.0, AttackClass::DirectPathNonSpoofed), &root).is_some())
            .count();
        assert!((850..=950).contains(&seen), "seen {seen}");
    }

    #[test]
    fn baseline_sample_fraction() {
        let plan = plan();
        let ns = Netscout::with_defaults(&plan);
        let root = SimRng::new(1);
        let attacks: Vec<Attack> = (0..2000)
            .map(|id| attack(&plan, id, 50_000.0, AttackClass::DirectPathNonSpoofed))
            .collect();
        let alerts = ns.observe_all(&attacks, &root);
        let baseline = ns.baseline_sample(&alerts, &root);
        let frac = baseline.len() as f64 / alerts.len() as f64;
        assert!((frac - 0.28).abs() < 0.04, "baseline fraction {frac}");
        // Deterministic.
        let again = ns.baseline_sample(&alerts, &root);
        assert_eq!(baseline.len(), again.len());
    }

    #[test]
    fn outage_and_degradation_thin_the_alert_stream() {
        let plan = plan();
        let root = SimRng::new(1);
        let healthy = Netscout::with_defaults(&plan);
        let attacks: Vec<Attack> = (0..1000)
            .map(|id| attack(&plan, id, 50_000.0, AttackClass::DirectPathNonSpoofed))
            .collect();
        let full = healthy.observe_all(&attacks, &root).len();

        // An outage covering the attacks' week blacks everything out.
        let week = SimTime(1000).week_index() as u32;
        let mut dark = Netscout::with_defaults(&plan);
        dark.faults.outages.push(simcore::faults::OutageWindow {
            start_week: week,
            end_week: week + 1,
        });
        assert_eq!(dark.observe_all(&attacks, &root).len(), 0);

        // Sampling degradation drops roughly the configured fraction and
        // never resurrects an alert the healthy path dropped.
        let mut degraded = Netscout::with_defaults(&plan);
        degraded.faults.degradation = Some(simcore::faults::FlowDegradation {
            drop_fraction: 0.5,
            start_week: 0,
        });
        let thinned = degraded.observe_all(&attacks, &root);
        let frac = thinned.len() as f64 / full as f64;
        assert!((0.4..=0.6).contains(&frac), "kept fraction {frac}");
        let full_ids: std::collections::HashSet<u64> = healthy
            .observe_all(&attacks, &root)
            .iter()
            .map(|al| al.observation.attack_id.0)
            .collect();
        assert!(thinned
            .iter()
            .all(|al| full_ids.contains(&al.observation.attack_id.0)));
    }

    #[test]
    fn class_splits() {
        let plan = plan();
        let ns = Netscout::with_defaults(&plan);
        let root = SimRng::new(1);
        let mut attacks = Vec::new();
        for id in 0..300 {
            let class = match id % 3 {
                0 => AttackClass::ReflectionAmplification,
                1 => AttackClass::DirectPathSpoofed,
                _ => AttackClass::DirectPathNonSpoofed,
            };
            attacks.push(attack(&plan, id, 50_000.0, class));
        }
        let alerts = ns.observe_all(&attacks, &root);
        let (ra, dp) = split_by_class(&alerts);
        assert_eq!(ra.len() + dp.len(), alerts.len());
        assert!(ra.iter().all(|o| o.attack_id.0 % 3 == 0));
        let (spoofed, nonspoofed) = split_dp_spoofing(&alerts);
        assert_eq!(spoofed.len() + nonspoofed.len(), dp.len());
        assert!(spoofed.iter().all(|o| o.attack_id.0 % 3 == 1));
        assert!(nonspoofed.iter().all(|o| o.attack_id.0 % 3 == 2));
    }
}
