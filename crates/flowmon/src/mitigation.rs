//! Cross-observatory interference through mitigation (§5):
//! "observatories might interfere with each other's visibility. For
//! example, an observed but quickly mitigated randomly-spoofed
//! direct-path attack might not reflect packets into a network
//! telescope."
//!
//! This model captures that coupling: attacks on protected targets get
//! mitigated after a detection delay, truncating the *effective*
//! duration of the traffic that reaches passive observers. The
//! `interference` experiment quantifies how much telescope visibility
//! this removes.

use attackgen::Attack;
use netmodel::InternetPlan;
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// Mitigation-speed parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitigationParams {
    /// Seconds from attack start until a DPS (Akamai-style, inline on
    /// the path) filters the traffic.
    pub dps_delay_secs: u32,
    /// Seconds until an alerting provider's customer (Netscout-style,
    /// operator in the loop) deploys filtering.
    pub alerting_delay_secs: u32,
    /// Probability that the mitigation actually suppresses backscatter
    /// (scrubbing answers nothing; blackholing still elicits ICMP from
    /// routers — partial suppression).
    pub suppression_probability: f64,
}

impl Default for MitigationParams {
    fn default() -> Self {
        MitigationParams {
            // Just under Corsaro's 60 s minimum flow duration: an
            // always-on DPS reacting inside the first minute removes
            // the attack from telescope view entirely.
            dps_delay_secs: 45,
            alerting_delay_secs: 900,
            suppression_probability: 0.8,
        }
    }
}

/// The mitigation landscape over the plan's protection scopes.
#[derive(Debug, Clone)]
pub struct MitigationModel {
    pub params: MitigationParams,
}

impl MitigationModel {
    pub fn new(params: MitigationParams) -> Self {
        MitigationModel { params }
    }

    /// The effective duration of an attack's un-mitigated traffic, as a
    /// passive observer would experience it. Deterministic per attack
    /// (forked from the attack id).
    pub fn effective_duration_secs(
        &self,
        attack: &Attack,
        plan: &InternetPlan,
        root: &SimRng,
    ) -> u32 {
        let target = attack.primary_target();
        let delay = if plan.akamai_protects(target) {
            Some(self.params.dps_delay_secs)
        } else if plan.netscout_customers.contains(&attack.target_asn) {
            Some(self.params.alerting_delay_secs)
        } else {
            None
        };
        match delay {
            Some(d) if d < attack.duration_secs => {
                let mut rng = root.fork(attack.id.0).fork_named("mitigation");
                if rng.chance(self.params.suppression_probability) {
                    d
                } else {
                    attack.duration_secs
                }
            }
            _ => attack.duration_secs,
        }
    }

    /// Convenience: a clone of the attack with its duration truncated to
    /// the effective value (what the telescope's visibility math should
    /// consume under interference).
    pub fn apply(&self, attack: &Attack, plan: &InternetPlan, root: &SimRng) -> Attack {
        let mut truncated = attack.clone();
        truncated.duration_secs = self.effective_duration_secs(attack, plan, root);
        truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attackgen::attack::{AttackClass, AttackId, AttackVector};
    use netmodel::{Asn, Ipv4, NetScale};

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn rsdos(id: u64, target: Ipv4, asn: Asn, duration: u32) -> Attack {
        Attack {
            id: AttackId(id),
            class: AttackClass::DirectPathSpoofed,
            vector: AttackVector::SynFlood,
            start: simcore::SimTime(1000),
            duration_secs: duration,
            targets: vec![target],
            target_asn: asn,
            pps: 50_000.0,
            bps: 1e8,
            reflectors: None,
            spoof_space_fraction: 1.0,
            campaign: None,
        }
    }

    #[test]
    fn unprotected_targets_untouched() {
        let plan = plan();
        let m = MitigationModel::new(MitigationParams::default());
        let root = SimRng::new(1);
        let outsider = plan
            .registry
            .iter()
            .find(|r| {
                !plan.netscout_customers.contains(&r.asn)
                    && r.target_weight > 0.0
                    && r.prefixes.iter().all(|p| !plan.akamai_protects(p.base()))
            })
            .unwrap();
        let a = rsdos(1, outsider.prefixes[0].nth(1), outsider.asn, 3600);
        assert_eq!(m.effective_duration_secs(&a, &plan, &root), 3600);
    }

    #[test]
    fn dps_truncates_fast() {
        let plan = plan();
        let m = MitigationModel::new(MitigationParams {
            suppression_probability: 1.0,
            ..MitigationParams::default()
        });
        let root = SimRng::new(1);
        let target = plan.akamai_prefix_list[0].nth(1);
        let asn = plan.asn_of(target).unwrap();
        let a = rsdos(1, target, asn, 3600);
        assert_eq!(m.effective_duration_secs(&a, &plan, &root), 45);
    }

    #[test]
    fn short_attacks_finish_before_mitigation() {
        let plan = plan();
        let m = MitigationModel::new(MitigationParams {
            suppression_probability: 1.0,
            ..MitigationParams::default()
        });
        let root = SimRng::new(1);
        let target = plan.akamai_prefix_list[0].nth(1);
        let asn = plan.asn_of(target).unwrap();
        let a = rsdos(1, target, asn, 30); // finishes before the delay
        assert_eq!(m.effective_duration_secs(&a, &plan, &root), 30);
    }

    #[test]
    fn suppression_probability_respected() {
        let plan = plan();
        let m = MitigationModel::new(MitigationParams {
            suppression_probability: 0.5,
            ..MitigationParams::default()
        });
        let root = SimRng::new(2);
        let target = plan.akamai_prefix_list[0].nth(1);
        let asn = plan.asn_of(target).unwrap();
        let truncated = (0..400)
            .filter(|&id| {
                m.effective_duration_secs(&rsdos(id, target, asn, 3600), &plan, &root) == 45
            })
            .count();
        assert!((140..=260).contains(&truncated), "truncated {truncated}/400");
    }

    #[test]
    fn apply_only_changes_duration() {
        let plan = plan();
        let m = MitigationModel::new(MitigationParams {
            suppression_probability: 1.0,
            ..MitigationParams::default()
        });
        let root = SimRng::new(1);
        let target = plan.akamai_prefix_list[0].nth(1);
        let asn = plan.asn_of(target).unwrap();
        let a = rsdos(1, target, asn, 3600);
        let t = m.apply(&a, &plan, &root);
        assert_eq!(t.duration_secs, 45);
        assert_eq!(t.id, a.id);
        assert_eq!(t.targets, a.targets);
        assert_eq!(t.pps, a.pps);
    }

    #[test]
    fn deterministic_per_attack() {
        let plan = plan();
        let m = MitigationModel::new(MitigationParams::default());
        let root = SimRng::new(3);
        let target = plan.akamai_prefix_list[0].nth(1);
        let asn = plan.asn_of(target).unwrap();
        let a = rsdos(42, target, asn, 3600);
        let first = m.effective_duration_secs(&a, &plan, &root);
        for _ in 0..10 {
            assert_eq!(m.effective_duration_secs(&a, &plan, &root), first);
        }
    }
}
