//! Remote-triggered blackhole (RTBH) event mechanics (§2.3).
//!
//! The IXP observatory's raw material is blackhole announcements: "a
//! target (victim) remotely triggers the dropping of traffic to a whole
//! IP prefix when one or more addresses in that prefix is under a DDoS
//! attack. Blackholing risks collateral damage." This module makes the
//! announcements first-class events — reaction latency, withdrawal lag
//! (operators leave blackholes up long after the attack ends), and the
//! collateral cost of dropping a whole prefix to protect one address —
//! the phenomena of refs [77]/[113] that the paper's IXP counts sit on
//! top of.

use attackgen::{Attack, AttackId};
use netmodel::{InternetPlan, Prefix};
use serde::{Deserialize, Serialize};
use simcore::dist::log_normal;
use simcore::{SimRng, SimTime};

/// Operator-behavior parameters of the blackholing process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RtbhParams {
    /// Median seconds from attack start until the victim announces the
    /// blackhole (detection + human/automation reaction).
    pub reaction_median_secs: f64,
    pub reaction_sigma: f64,
    /// Median seconds the blackhole stays up *after* the attack ends
    /// (operators withdraw late; [113] reports hours-long tails).
    pub overstay_median_secs: f64,
    pub overstay_sigma: f64,
    /// Probability that the victim announces a covering /24 rather than
    /// the single /32 (coarse announcements maximize collateral).
    pub announce_slash24_probability: f64,
}

impl Default for RtbhParams {
    fn default() -> Self {
        RtbhParams {
            reaction_median_secs: 300.0,
            reaction_sigma: 0.8,
            overstay_median_secs: 7_200.0,
            overstay_sigma: 1.0,
            announce_slash24_probability: 0.6,
        }
    }
}

/// One blackhole announcement at the IXP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackholeEvent {
    pub attack_id: AttackId,
    /// The announced (dropped) prefix.
    pub prefix: Prefix,
    pub announced_at: SimTime,
    pub withdrawn_at: SimTime,
}

impl BlackholeEvent {
    pub fn duration_secs(&self) -> i64 {
        self.withdrawn_at.0 - self.announced_at.0
    }
}

/// Derive the blackhole events a set of *IXP-observed* attacks would
/// trigger. Deterministic per attack id.
pub fn blackhole_events(
    attacks: &[&Attack],
    params: &RtbhParams,
    root: &SimRng,
) -> Vec<BlackholeEvent> {
    let mut out = Vec::new();
    for attack in attacks {
        let mut rng = root.fork(attack.id.0).fork_named("rtbh");
        let reaction =
            log_normal(&mut rng, params.reaction_median_secs.ln(), params.reaction_sigma) as i64;
        // A blackhole only makes sense while the attack still runs.
        if reaction >= attack.duration_secs as i64 {
            continue;
        }
        let overstay =
            log_normal(&mut rng, params.overstay_median_secs.ln(), params.overstay_sigma) as i64;
        let len = if rng.chance(params.announce_slash24_probability) {
            24
        } else {
            32
        };
        out.push(BlackholeEvent {
            attack_id: attack.id,
            prefix: Prefix::new(attack.primary_target(), len),
            announced_at: attack.start.plus_secs(reaction),
            withdrawn_at: attack.end().plus_secs(overstay),
        });
    }
    out.sort_by_key(|e| (e.announced_at, e.attack_id));
    out
}

/// Aggregate cost statistics of a blackhole event set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtbhStats {
    pub events: usize,
    /// Total prefix-seconds dropped.
    pub blackholed_secs: i64,
    /// Prefix-seconds dropped while the attack was actually running.
    pub attack_overlap_secs: i64,
    /// Share of blackholed time spent *after* the attack ended
    /// (overshoot — pure self-inflicted unavailability).
    pub overshoot_share: f64,
    /// Mean addresses dropped per blackhole (collateral: everything in
    /// the announced prefix beyond the attacked addresses).
    pub mean_addresses_dropped: f64,
    /// Mean addresses actually under attack per event.
    pub mean_addresses_attacked: f64,
}

/// Compute the cost statistics against the ground-truth attacks.
pub fn rtbh_stats(events: &[BlackholeEvent], attacks: &[Attack]) -> Option<RtbhStats> {
    if events.is_empty() {
        return None;
    }
    use std::collections::HashMap;
    let by_id: HashMap<u64, &Attack> = attacks.iter().map(|a| (a.id.0, a)).collect();
    let mut blackholed = 0i64;
    let mut overlap = 0i64;
    let mut dropped = 0.0f64;
    let mut attacked = 0.0f64;
    for e in events {
        let span = e.duration_secs();
        blackholed += span;
        if let Some(a) = by_id.get(&e.attack_id.0) {
            let start = e.announced_at.0.max(a.start.0);
            let end = e.withdrawn_at.0.min(a.end().0);
            overlap += (end - start).max(0);
            attacked += a.targets.len() as f64;
        }
        dropped += e.prefix.size() as f64;
    }
    Some(RtbhStats {
        events: events.len(),
        blackholed_secs: blackholed,
        attack_overlap_secs: overlap,
        overshoot_share: 1.0 - overlap as f64 / blackholed.max(1) as f64,
        mean_addresses_dropped: dropped / events.len() as f64,
        mean_addresses_attacked: attacked / events.len() as f64,
    })
}

/// Which plan-routed prefix a blackhole would propagate for (RTBH
/// signals are accepted for customer prefixes; an announcement wider
/// than the covering allocation is rejected).
pub fn accepted_by_ixp(event: &BlackholeEvent, plan: &InternetPlan) -> bool {
    match plan.allocation_of(event.prefix.base()) {
        Some(alloc) => alloc.block.covers(event.prefix),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attackgen::attack::{AttackClass, AttackVector};
    use netmodel::{Asn, Ipv4, NetScale};

    fn attack(id: u64, target: Ipv4, start: i64, duration: u32) -> Attack {
        Attack {
            id: AttackId(id),
            class: AttackClass::DirectPathNonSpoofed,
            vector: AttackVector::SynFlood,
            start: SimTime(start),
            duration_secs: duration,
            targets: vec![target],
            target_asn: Asn(1),
            pps: 100_000.0,
            bps: 3e8,
            reflectors: None,
            spoof_space_fraction: 0.0,
            campaign: None,
        }
    }

    #[test]
    fn events_follow_attacks() {
        let attacks: Vec<Attack> = (0..50)
            .map(|i| attack(i, Ipv4(0x0A00_0000 + i as u32), i as i64 * 10_000, 7200))
            .collect();
        let refs: Vec<&Attack> = attacks.iter().collect();
        let events = blackhole_events(&refs, &RtbhParams::default(), &SimRng::new(1));
        assert!(!events.is_empty());
        for e in &events {
            let a = &attacks[e.attack_id.0 as usize];
            assert!(e.announced_at > a.start, "announced before the attack");
            assert!(e.announced_at < a.end(), "announced after the attack");
            assert!(e.withdrawn_at > a.end(), "withdrawn before the attack ended");
            assert!(e.prefix.contains(a.primary_target()));
            assert!(e.prefix.len() == 24 || e.prefix.len() == 32);
        }
    }

    #[test]
    fn short_attacks_escape_blackholing() {
        // Attacks shorter than the reaction time never get blackholed.
        let attacks: Vec<Attack> = (0..100)
            .map(|i| attack(i, Ipv4(1 + i as u32), 0, 30))
            .collect();
        let refs: Vec<&Attack> = attacks.iter().collect();
        let events = blackhole_events(&refs, &RtbhParams::default(), &SimRng::new(1));
        // Median reaction is 300 s; a 30 s attack is essentially never
        // caught in time.
        assert!(
            events.len() < 5,
            "{} short attacks blackholed",
            events.len()
        );
    }

    #[test]
    fn stats_capture_overshoot() {
        let a = attack(0, Ipv4(0x0A00_0001), 0, 3600);
        let events = vec![BlackholeEvent {
            attack_id: AttackId(0),
            prefix: Prefix::new(Ipv4(0x0A00_0001), 24),
            announced_at: SimTime(600),
            withdrawn_at: SimTime(3600 + 7200), // 2 h overstay
        }];
        let s = rtbh_stats(&events, &[a]).unwrap();
        assert_eq!(s.events, 1);
        assert_eq!(s.blackholed_secs, 10_200);
        assert_eq!(s.attack_overlap_secs, 3_000);
        assert!((s.overshoot_share - (1.0 - 3000.0 / 10200.0)).abs() < 1e-12);
        assert_eq!(s.mean_addresses_dropped, 256.0);
        assert_eq!(s.mean_addresses_attacked, 1.0);
    }

    #[test]
    fn stats_none_on_empty() {
        assert!(rtbh_stats(&[], &[]).is_none());
    }

    #[test]
    fn deterministic_events() {
        let attacks: Vec<Attack> = (0..20)
            .map(|i| attack(i, Ipv4(100 + i as u32), 0, 7200))
            .collect();
        let refs: Vec<&Attack> = attacks.iter().collect();
        let a = blackhole_events(&refs, &RtbhParams::default(), &SimRng::new(9));
        let b = blackhole_events(&refs, &RtbhParams::default(), &SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn ixp_rejects_over_broad_announcements() {
        let mut rng = SimRng::new(100);
        let plan = InternetPlan::build(&NetScale::tiny(), &mut rng);
        let rec = plan.registry.get(Asn(16276)).unwrap();
        let inside = rec.prefixes[0].nth(7);
        let ok = BlackholeEvent {
            attack_id: AttackId(1),
            prefix: Prefix::new(inside, 24),
            announced_at: SimTime(0),
            withdrawn_at: SimTime(100),
        };
        assert!(accepted_by_ixp(&ok, &plan));
        // A /8 covering far more than the customer's allocation.
        let too_broad = BlackholeEvent {
            prefix: Prefix::new(inside, 8),
            ..ok
        };
        assert!(!accepted_by_ixp(&too_broad, &plan));
        // Unrouted space.
        let nowhere = BlackholeEvent {
            prefix: Prefix::new(Ipv4::new(223, 255, 255, 1), 24),
            ..ok
        };
        assert!(!accepted_by_ixp(&nowhere, &plan));
    }
}
