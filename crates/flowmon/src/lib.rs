//! `flowmon` — on-path flow-monitoring observatories: IXP blackholing,
//! Netscout Atlas, and Akamai Prolexic.
//!
//! These are the industry vantage points of the paper (§2.2 ♞, §5).
//! Each model is a coverage filter (who can see the attack at all)
//! composed with the platform's detection thresholds (Table 2 for the
//! IXP; severity floors for the mitigation providers).

pub mod akamai;
pub mod ixp;
pub mod mitigation;
pub mod netscout;
pub mod rtbh;

pub use akamai::{Akamai, AkamaiConfig};
pub use mitigation::{MitigationModel, MitigationParams};
pub use ixp::{classify_blackholed_traffic, IxpBlackholing, IxpConfig, IxpDetection};
pub use rtbh::{accepted_by_ixp, blackhole_events, rtbh_stats, BlackholeEvent, RtbhParams, RtbhStats};
pub use netscout::{
    split_by_class, split_by_class_columns, split_dp_spoofing, split_dp_spoofing_columns,
    AlertColumns, Netscout, NetscoutAlert, NetscoutConfig, Severity,
};
