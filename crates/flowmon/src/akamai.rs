//! The Akamai Prolexic observatory model.
//!
//! Prolexic is a DDoS protection service that "detects and mitigates
//! attacks in traffic transiting its AS" (§5): customers own prefixes
//! that can be rerouted through the Prolexic AS. Visibility is therefore
//! scoped to the protected prefix set — which is why the paper's target
//! joins with Akamai are ≈ 100× smaller than with Netscout (§7.2), and
//! why Akamai's trends diverge from every other observatory (§6.3).

use attackgen::{Attack, AttackClass, AttackRef, ObservationColumns, ObservedAttack};
use netmodel::{InternetPlan, PrefixTable};
use serde::{Deserialize, Serialize};
use simcore::SimRng;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AkamaiConfig {
    /// Detection probability for attacks on protected prefixes (the DPS
    /// sits directly on the traffic path, so this is high).
    pub detection_probability: f64,
    /// Minimum bit rate to register as an attack event.
    pub min_bps: f64,
}

impl Default for AkamaiConfig {
    fn default() -> Self {
        AkamaiConfig {
            detection_probability: 0.95,
            min_bps: 1e7,
        }
    }
}

/// Event-level Akamai Prolexic.
#[derive(Debug, Clone)]
pub struct Akamai {
    pub cfg: AkamaiConfig,
    protected: PrefixTable<()>,
    /// Injected data-plane faults (outage windows, flow-sampling
    /// degradation). Empty by default and bit-for-bit inert when empty.
    pub faults: simcore::faults::ObsFaults,
}

impl Akamai {
    pub fn new(plan: &InternetPlan, cfg: AkamaiConfig) -> Self {
        Akamai {
            cfg,
            protected: plan.akamai_protected.clone(),
            faults: simcore::faults::ObsFaults::default(),
        }
    }

    pub fn with_defaults(plan: &InternetPlan) -> Self {
        Self::new(plan, AkamaiConfig::default())
    }

    /// Is the address inside the protected scope?
    pub fn protects(&self, ip: netmodel::Ipv4) -> bool {
        self.protected.lookup(ip).is_some()
    }

    /// Event-level observation into a columnar sink. On detection the
    /// observation row (targets clipped to protected space) is appended
    /// to `out` and the attack's class is returned so the caller can
    /// route the row into the RA or DP series.
    pub fn observe_into(
        &self,
        attack: AttackRef<'_>,
        root: &SimRng,
        out: &mut ObservationColumns,
    ) -> Option<AttackClass> {
        // Outage check first, before any RNG fork, so unaffected weeks
        // keep their exact detection streams.
        let week = attack.start.week_index();
        if self.faults.is_down(week) {
            return None;
        }
        // At least one target must be in protected space.
        if !attack.targets.iter().any(|&t| self.protects(t)) {
            return None;
        }
        if attack.bps < self.cfg.min_bps {
            return None;
        }
        let mut rng = root.fork(attack.id.0).fork_named("akamai-prolexic");
        if !rng.chance(self.cfg.detection_probability) {
            return None;
        }
        // Sampling degradation swallows the would-be detection from a
        // dedicated RNG fork, leaving the main draw stream untouched.
        if self.faults.drops_sample(root, attack.id.0, week) {
            return None;
        }
        out.begin_row(attack.id, attack.start);
        for &t in attack.targets {
            if self.protects(t) {
                out.push_target(t);
            }
        }
        out.commit_row();
        Some(attack.class)
    }

    /// Event-level observation with the attack's class attached (Akamai
    /// publishes separate RA and DP series, Fig. 2(d)/3(d)).
    pub fn observe(&self, attack: &Attack, root: &SimRng) -> Option<(AttackClass, ObservedAttack)> {
        let mut out = ObservationColumns::new();
        let class = self.observe_into(attack.view(), root, &mut out)?;
        Some((class, out.get(0).to_observed()))
    }

    /// Observe a stream, split into (RA, DP) series.
    pub fn observe_all(
        &self,
        attacks: &[Attack],
        root: &SimRng,
    ) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
        split_by_class(
            attacks
                .iter()
                .filter_map(|a| self.observe(a, root))
                .collect(),
        )
    }

    /// Observe a stream sharded across `pool`, split into (RA, DP)
    /// series. Identical output to [`Akamai::observe_all`]: per-attack
    /// draws fork from (attack id, "akamai-prolexic") and shards merge
    /// in input order before the class split.
    pub fn observe_all_on(
        &self,
        attacks: &[Attack],
        root: &SimRng,
        pool: &simcore::ExecPool,
    ) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
        split_by_class(pool.par_filter_map(attacks, |a| self.observe(a, root)))
    }
}

fn split_by_class(
    tagged: Vec<(AttackClass, ObservedAttack)>,
) -> (Vec<ObservedAttack>, Vec<ObservedAttack>) {
    let mut ra = Vec::new();
    let mut dp = Vec::new();
    for (class, o) in tagged {
        if class.is_reflection() {
            ra.push(o);
        } else {
            dp.push(o);
        }
    }
    (ra, dp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attackgen::attack::{AttackId, AttackVector};
    use netmodel::{Asn, Ipv4, NetScale};
    use simcore::SimTime;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn attack_on(ip: Ipv4, id: u64, class: AttackClass) -> Attack {
        Attack {
            id: AttackId(id),
            class,
            vector: AttackVector::SynFlood,
            start: SimTime(1000),
            duration_secs: 300,
            targets: vec![ip],
            target_asn: Asn(1),
            pps: 50_000.0,
            bps: 1.7e8,
            reflectors: None,
            spoof_space_fraction: 0.0,
            campaign: None,
        }
    }

    #[test]
    fn protected_targets_usually_observed() {
        let plan = plan();
        let ak = Akamai::with_defaults(&plan);
        let root = SimRng::new(1);
        let ip = plan.akamai_prefix_list[0].nth(3);
        let seen = (0..200)
            .filter(|&id| ak.observe(&attack_on(ip, id, AttackClass::DirectPathNonSpoofed), &root).is_some())
            .count();
        assert!(seen > 170, "seen {seen}");
    }

    #[test]
    fn unprotected_targets_invisible() {
        let plan = plan();
        let ak = Akamai::with_defaults(&plan);
        let root = SimRng::new(1);
        // Find an address outside all protected prefixes.
        let outside = plan
            .registry
            .iter()
            .flat_map(|r| r.prefixes.iter())
            .map(|p| p.nth(1))
            .find(|&ip| !ak.protects(ip))
            .unwrap();
        for id in 0..100 {
            assert!(ak
                .observe(&attack_on(outside, id, AttackClass::DirectPathNonSpoofed), &root)
                .is_none());
        }
    }

    #[test]
    fn tiny_attacks_filtered() {
        let plan = plan();
        let ak = Akamai::with_defaults(&plan);
        let root = SimRng::new(1);
        let ip = plan.akamai_prefix_list[0].nth(3);
        for id in 0..100 {
            let mut a = attack_on(ip, id, AttackClass::DirectPathNonSpoofed);
            a.bps = 1e6;
            assert!(ak.observe(&a, &root).is_none());
        }
    }

    #[test]
    fn carpet_observation_clipped_to_protected_space() {
        let plan = plan();
        let ak = Akamai::with_defaults(&plan);
        let root = SimRng::new(1);
        let protected = plan.akamai_prefix_list[0].nth(3);
        let outside = plan
            .registry
            .iter()
            .flat_map(|r| r.prefixes.iter())
            .map(|p| p.nth(1))
            .find(|&ip| !ak.protects(ip))
            .unwrap();
        let mut found = false;
        for id in 0..50 {
            let mut a = attack_on(protected, id, AttackClass::ReflectionAmplification);
            a.targets = vec![protected, outside];
            if let Some((class, o)) = ak.observe(&a, &root) {
                assert!(class.is_reflection());
                assert_eq!(o.targets, vec![protected]);
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn split_series_by_class() {
        let plan = plan();
        let ak = Akamai::with_defaults(&plan);
        let root = SimRng::new(1);
        let ip = plan.akamai_prefix_list[0].nth(3);
        let attacks: Vec<Attack> = (0..200)
            .map(|id| {
                attack_on(
                    ip,
                    id,
                    if id % 2 == 0 {
                        AttackClass::ReflectionAmplification
                    } else {
                        AttackClass::DirectPathSpoofed
                    },
                )
            })
            .collect();
        let (ra, dp) = ak.observe_all(&attacks, &root);
        assert!(!ra.is_empty() && !dp.is_empty());
        assert!(ra.iter().all(|o| o.attack_id.0 % 2 == 0));
        assert!(dp.iter().all(|o| o.attack_id.0 % 2 == 1));
    }
}
