//! Property-based tests for prefix arithmetic and the LPM trie.

use netmodel::{Ipv4, Prefix, PrefixTable};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(Ipv4(addr), len))
}

proptest! {
    /// The base address is always inside its own prefix, as is the last.
    #[test]
    fn prefix_contains_its_bounds(p in arb_prefix()) {
        prop_assert!(p.contains(p.base()));
        prop_assert!(p.contains(p.last()));
    }

    /// Masking is idempotent: re-normalizing a prefix changes nothing.
    #[test]
    fn normalization_idempotent(p in arb_prefix()) {
        let again = Prefix::new(p.base(), p.len());
        prop_assert_eq!(p, again);
    }

    /// size == last - base + 1 for non-/0 prefixes.
    #[test]
    fn size_consistent(p in arb_prefix()) {
        prop_assume!(p.len() >= 1);
        prop_assert_eq!(p.size(), (p.last().0 - p.base().0) as u64 + 1);
    }

    /// Splitting partitions the parent exactly: the children are
    /// disjoint, both covered, and their sizes sum to the parent's.
    #[test]
    fn split_partitions(p in arb_prefix()) {
        prop_assume!(p.len() < 32);
        let (l, r) = p.split().unwrap();
        prop_assert!(p.covers(l) && p.covers(r));
        prop_assert!(!l.overlaps(r));
        prop_assert_eq!(l.size() + r.size(), p.size());
        prop_assert_eq!(l.parent().unwrap(), p);
        prop_assert_eq!(r.parent().unwrap(), p);
    }

    /// `covers` is equivalent to containing both endpoints.
    #[test]
    fn covers_iff_endpoints(a in arb_prefix(), b in arb_prefix()) {
        let covers = a.covers(b);
        let endpoints = a.contains(b.base()) && a.contains(b.last());
        prop_assert_eq!(covers, endpoints);
    }

    /// Overlap is symmetric and implied by any shared address.
    #[test]
    fn overlap_symmetric(a in arb_prefix(), b in arb_prefix()) {
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        if a.overlaps(b) {
            // The longer (more specific) prefix's base is in the other.
            let longer = if a.len() >= b.len() { a } else { b };
            let shorter = if a.len() >= b.len() { b } else { a };
            prop_assert!(shorter.contains(longer.base()));
        }
    }

    /// Display/parse round-trip.
    #[test]
    fn prefix_display_roundtrip(p in arb_prefix()) {
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, parsed);
    }

    /// Supernet at the same length is identity; supernets always cover.
    #[test]
    fn supernet_covers(p in arb_prefix(), cut in 0u8..=32) {
        let len = cut.min(p.len());
        let sup = p.supernet(len);
        prop_assert!(sup.covers(p));
        prop_assert_eq!(sup.len(), len);
    }
}

/// Reference implementation of LPM by linear scan.
fn lpm_linear(entries: &[(Prefix, u32)], ip: Ipv4) -> Option<(Prefix, &u32)> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, v))
}

proptest! {
    /// The trie agrees with a linear-scan longest-prefix match on
    /// arbitrary rule sets and probes.
    #[test]
    fn trie_matches_linear_reference(
        rules in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        let mut table = PrefixTable::new();
        let mut entries: Vec<(Prefix, u32)> = Vec::new();
        for (addr, len, value) in rules {
            let p = Prefix::new(Ipv4(addr), len);
            // Later inserts replace earlier ones — mirror in reference.
            entries.retain(|(e, _)| *e != p);
            entries.push((p, value));
            table.insert(p, value);
        }
        prop_assert_eq!(table.len(), entries.len());
        for probe in probes {
            let ip = Ipv4(probe);
            let got = table.lookup(ip).map(|(p, v)| (p, *v));
            let expected = lpm_linear(&entries, ip).map(|(p, v)| (p, *v));
            prop_assert_eq!(got, expected, "probe {}", ip);
        }
    }

    /// `matches` returns prefixes sorted by length, all containing the
    /// probe, with the LPM winner last.
    #[test]
    fn matches_sorted_and_consistent(
        rules in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..30),
        probe in any::<u32>(),
    ) {
        let mut table = PrefixTable::new();
        for (i, (addr, len)) in rules.iter().enumerate() {
            table.insert(Prefix::new(Ipv4(*addr), *len), i);
        }
        let ip = Ipv4(probe);
        let chain = table.matches(ip);
        for w in chain.windows(2) {
            prop_assert!(w[0].0.len() < w[1].0.len());
        }
        for (p, _) in &chain {
            prop_assert!(p.contains(ip));
        }
        prop_assert_eq!(
            chain.last().map(|(p, v)| (*p, **v)),
            table.lookup(ip).map(|(p, v)| (p, *v))
        );
    }
}
