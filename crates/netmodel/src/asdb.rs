//! The autonomous-system registry.
//!
//! The paper attributes DDoS targets to ASes (Table 4: OVH, Hetzner,
//! Amazon, … — "7 of our top 10 most targeted ASes belong to hosters",
//! §7.1). We model an AS population with the real, named heavy hitters
//! plus a synthetic tail, each AS carrying announced prefixes and an
//! attack-attractiveness weight that target selection draws against.

use crate::ip::{Ipv4, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse business classification, following the paper's labels in
/// Appendix H ("all are labeled as hosting ASes except Microsoft
/// (business), China Unicom (ISP), and Alibaba (business)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// Hosting / cloud infrastructure — concentrates DDoS targets
    /// (game servers, VPNs, web services).
    Hoster,
    /// Eyeball / transit ISP.
    Isp,
    /// Enterprise / business network.
    Business,
    /// Content delivery network.
    Cdn,
    /// Academic / research network (telescopes live here).
    Research,
}

/// One AS with its announced address space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsRecord {
    pub asn: Asn,
    pub name: String,
    pub kind: AsKind,
    /// Announced (routed) prefixes.
    pub prefixes: Vec<Prefix>,
    /// Relative probability mass that an attack targets this AS.
    /// Hosters get heavy weights (§7.1: hosters attract multi-vector
    /// attacks because they sell DDoS-protection-as-a-service).
    pub target_weight: f64,
}

impl AsRecord {
    /// Total announced address count.
    pub fn address_count(&self) -> u64 {
        self.prefixes.iter().map(|p| p.size()).sum()
    }

    /// Does this AS announce the address?
    pub fn contains(&self, ip: Ipv4) -> bool {
        self.prefixes.iter().any(|p| p.contains(ip))
    }
}

/// Registry of all simulated ASes with an index by ASN.
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    records: Vec<AsRecord>,
    by_asn: HashMap<Asn, usize>,
}

impl AsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an AS. Panics on duplicate ASN (a build-time configuration
    /// error).
    pub fn add(&mut self, record: AsRecord) {
        let asn = record.asn;
        assert!(
            !self.by_asn.contains_key(&asn),
            "duplicate {asn} in registry"
        );
        self.by_asn.insert(asn, self.records.len());
        self.records.push(record);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn get(&self, asn: Asn) -> Option<&AsRecord> {
        self.by_asn.get(&asn).map(|&i| &self.records[i])
    }

    pub fn by_index(&self, i: usize) -> &AsRecord {
        &self.records[i]
    }

    pub fn iter(&self) -> impl Iterator<Item = &AsRecord> {
        self.records.iter()
    }

    /// Target-selection weights, index-aligned with the registry order.
    pub fn target_weights(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.target_weight).collect()
    }

    /// ASNs of all ASes of a given kind.
    pub fn of_kind(&self, kind: AsKind) -> Vec<Asn> {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.asn)
            .collect()
    }
}

/// The named heavy-hitter ASes from Table 4 (plus China Telecom, which
/// §7.1 mentions from Jonker et al.), with the kinds from Appendix H.
/// `weight_share` is the approximate share of highly-visible targets the
/// paper reports; the plan builder scales these into absolute weights.
pub struct KnownAs {
    pub asn: u32,
    pub name: &'static str,
    pub kind: AsKind,
    pub weight_share: f64,
}

/// Table 4 of the paper: top-10 ASes by number of highly-visible
/// targets, with their observed shares, plus China Telecom/Unicom
/// context from §7.1.
pub const KNOWN_ASES: &[KnownAs] = &[
    KnownAs { asn: 16276, name: "OVH", kind: AsKind::Hoster, weight_share: 0.1880 },
    KnownAs { asn: 24940, name: "Hetzner", kind: AsKind::Hoster, weight_share: 0.0514 },
    KnownAs { asn: 16509, name: "Amazon", kind: AsKind::Hoster, weight_share: 0.0269 },
    KnownAs { asn: 8075, name: "Microsoft", kind: AsKind::Business, weight_share: 0.0204 },
    KnownAs { asn: 396982, name: "Google", kind: AsKind::Hoster, weight_share: 0.0189 },
    KnownAs { asn: 13335, name: "Cloudflare", kind: AsKind::Cdn, weight_share: 0.0159 },
    KnownAs { asn: 4837, name: "China Unicom", kind: AsKind::Isp, weight_share: 0.0158 },
    KnownAs { asn: 14061, name: "DigitalOcean", kind: AsKind::Hoster, weight_share: 0.0136 },
    KnownAs { asn: 14586, name: "Nuclearfallout", kind: AsKind::Hoster, weight_share: 0.0123 },
    KnownAs { asn: 37963, name: "Alibaba", kind: AsKind::Business, weight_share: 0.0121 },
    KnownAs { asn: 4134, name: "China Telecom", kind: AsKind::Isp, weight_share: 0.0080 },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(asn: u32, weight: f64) -> AsRecord {
        AsRecord {
            asn: Asn(asn),
            name: format!("AS{asn}"),
            kind: AsKind::Isp,
            prefixes: vec![format!("10.{}.0.0/16", asn % 256).parse().unwrap()],
            target_weight: weight,
        }
    }

    #[test]
    fn add_and_get() {
        let mut reg = AsRegistry::new();
        reg.add(rec(100, 1.0));
        reg.add(rec(200, 2.0));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(Asn(100)).unwrap().asn, Asn(100));
        assert!(reg.get(Asn(300)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_asn_panics() {
        let mut reg = AsRegistry::new();
        reg.add(rec(100, 1.0));
        reg.add(rec(100, 1.0));
    }

    #[test]
    fn weights_aligned() {
        let mut reg = AsRegistry::new();
        reg.add(rec(1, 0.5));
        reg.add(rec(2, 2.5));
        assert_eq!(reg.target_weights(), vec![0.5, 2.5]);
    }

    #[test]
    fn record_address_count_and_contains() {
        let r = AsRecord {
            asn: Asn(1),
            name: "x".into(),
            kind: AsKind::Hoster,
            prefixes: vec!["10.0.0.0/24".parse().unwrap(), "10.1.0.0/24".parse().unwrap()],
            target_weight: 1.0,
        };
        assert_eq!(r.address_count(), 512);
        assert!(r.contains("10.0.0.7".parse().unwrap()));
        assert!(r.contains("10.1.0.7".parse().unwrap()));
        assert!(!r.contains("10.2.0.7".parse().unwrap()));
    }

    #[test]
    fn known_ases_match_table4_order() {
        // Table 4's top three by share.
        assert_eq!(KNOWN_ASES[0].name, "OVH");
        assert_eq!(KNOWN_ASES[0].asn, 16276);
        assert_eq!(KNOWN_ASES[1].name, "Hetzner");
        assert_eq!(KNOWN_ASES[2].name, "Amazon");
        // Shares descend over the table-4 part.
        for w in KNOWN_ASES.windows(2).take(9) {
            assert!(w[0].weight_share >= w[1].weight_share);
        }
    }

    #[test]
    fn of_kind_filters() {
        let mut reg = AsRegistry::new();
        reg.add(rec(1, 1.0));
        let mut h = rec(2, 1.0);
        h.kind = AsKind::Hoster;
        reg.add(h);
        assert_eq!(reg.of_kind(AsKind::Hoster), vec![Asn(2)]);
        assert_eq!(reg.of_kind(AsKind::Isp), vec![Asn(1)]);
        assert!(reg.of_kind(AsKind::Cdn).is_empty());
    }

    #[test]
    fn display_asn() {
        assert_eq!(Asn(16276).to_string(), "AS16276");
    }
}
