//! IPv4 addresses and CIDR prefixes.
//!
//! A thin, copyable representation (`u32` under the hood) tuned for the
//! simulation: billions of address comparisons and prefix matches happen
//! during a study run, so everything here is branch-light and allocation
//! free.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Saturating add — used when walking address blocks.
    pub const fn saturating_add(self, n: u32) -> Self {
        Ipv4(self.0.saturating_add(n))
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Error for address / prefix parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FromStr for Ipv4 {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in &mut octets {
            let p = parts
                .next()
                .ok_or_else(|| ParseError(format!("too few octets in {s:?}")))?;
            *o = p
                .parse::<u8>()
                .map_err(|_| ParseError(format!("bad octet {p:?} in {s:?}")))?;
        }
        if parts.next().is_some() {
            return Err(ParseError(format!("too many octets in {s:?}")));
        }
        Ok(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// A CIDR prefix. Invariant: host bits of `base` are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    base: u32,
    len: u8,
}

#[allow(clippy::len_without_is_empty)] // len() is the prefix bit-length, not a container size
impl Prefix {
    /// Build a prefix, zeroing any host bits in `addr`.
    pub const fn new(addr: Ipv4, len: u8) -> Self {
        assert!(len <= 32);
        let base = addr.0 & Self::mask_for(len);
        Prefix { base, len }
    }

    /// The network mask for a prefix length.
    pub const fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    pub const fn base(self) -> Ipv4 {
        Ipv4(self.base)
    }

    pub const fn len(self) -> u8 {
        self.len
    }

    /// Number of addresses covered (as u64 so /0 fits).
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Last address inside the prefix.
    pub const fn last(self) -> Ipv4 {
        Ipv4(self.base | !Self::mask_for(self.len))
    }

    /// Does this prefix contain the address?
    #[inline]
    pub const fn contains(self, ip: Ipv4) -> bool {
        ip.0 & Self::mask_for(self.len) == self.base
    }

    /// Does this prefix fully cover `other`?
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(Ipv4(other.base))
    }

    /// Do the two prefixes share any address?
    pub const fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th address inside the prefix. Panics if out of range.
    pub fn nth(self, i: u64) -> Ipv4 {
        assert!(i < self.size(), "index {i} out of /{} prefix", self.len);
        Ipv4(self.base + i as u32)
    }

    /// Split into the two child prefixes of length `len + 1`.
    /// Returns `None` for a /32.
    pub const fn split(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let left = Prefix {
            base: self.base,
            len: child_len,
        };
        let right = Prefix {
            base: self.base | (1u32 << (32 - child_len)),
            len: child_len,
        };
        Some((left, right))
    }

    /// The parent prefix one bit shorter. Returns `None` for /0.
    pub const fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix {
            base: self.base & Self::mask_for(len),
            len,
        })
    }

    /// The supernet of this prefix at the given (shorter or equal)
    /// length.
    pub const fn supernet(self, len: u8) -> Prefix {
        assert!(len <= self.len);
        Prefix {
            base: self.base & Self::mask_for(len),
            len,
        }
    }

    /// Iterate over all sub-prefixes of the given (longer) length.
    pub fn subnets(self, len: u8) -> impl Iterator<Item = Prefix> {
        assert!(len >= self.len && len <= 32);
        let count = 1u64 << (len - self.len);
        let step = 1u64 << (32 - len);
        let base = self.base;
        (0..count).map(move |i| Prefix {
            base: base + (i * step) as u32,
            len,
        })
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParseError(format!("missing '/' in {s:?}")))?;
        let addr: Ipv4 = addr.parse()?;
        let len: u8 = len
            .parse()
            .map_err(|_| ParseError(format!("bad prefix length in {s:?}")))?;
        if len > 32 {
            return Err(ParseError(format!("prefix length {len} > 32")));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let ip: Ipv4 = "192.168.1.77".parse().unwrap();
        assert_eq!(ip.to_string(), "192.168.1.77");
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn parse_errors() {
        assert!("1.2.3".parse::<Ipv4>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4>().is_err());
        assert!("1.2.3.999".parse::<Ipv4>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn new_zeroes_host_bits() {
        let p = Prefix::new(Ipv4::new(10, 1, 2, 3), 16);
        assert_eq!(p.base(), Ipv4::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn size_and_last() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(p.size(), 256);
        assert_eq!(p.last(), Ipv4::new(10, 0, 0, 255));
        let slash0: Prefix = "0.0.0.0/0".parse().unwrap();
        assert_eq!(slash0.size(), 1u64 << 32);
        let host: Prefix = "1.2.3.4/32".parse().unwrap();
        assert_eq!(host.size(), 1);
        assert_eq!(host.last(), Ipv4::new(1, 2, 3, 4));
    }

    #[test]
    fn contains_boundaries() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains(Ipv4::new(10, 1, 0, 0)));
        assert!(p.contains(Ipv4::new(10, 1, 255, 255)));
        assert!(!p.contains(Ipv4::new(10, 2, 0, 0)));
        assert!(!p.contains(Ipv4::new(10, 0, 255, 255)));
    }

    #[test]
    fn covers_and_overlaps() {
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Prefix = "10.5.0.0/16".parse().unwrap();
        let other: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(big.covers(small));
        assert!(!small.covers(big));
        assert!(big.overlaps(small));
        assert!(small.overlaps(big));
        assert!(!big.overlaps(other));
        assert!(big.covers(big));
    }

    #[test]
    fn nth_addresses() {
        let p: Prefix = "10.0.0.0/30".parse().unwrap();
        assert_eq!(p.nth(0), Ipv4::new(10, 0, 0, 0));
        assert_eq!(p.nth(3), Ipv4::new(10, 0, 0, 3));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn nth_out_of_range() {
        let p: Prefix = "10.0.0.0/30".parse().unwrap();
        p.nth(4);
    }

    #[test]
    fn split_and_parent() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (l, r) = p.split().unwrap();
        assert_eq!(l.to_string(), "10.0.0.0/9");
        assert_eq!(r.to_string(), "10.128.0.0/9");
        assert_eq!(l.parent().unwrap(), p);
        assert_eq!(r.parent().unwrap(), p);
        let host: Prefix = "1.2.3.4/32".parse().unwrap();
        assert!(host.split().is_none());
        let root: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(root.parent().is_none());
    }

    #[test]
    fn supernet_truncates() {
        let p: Prefix = "10.77.3.0/24".parse().unwrap();
        assert_eq!(p.supernet(16).to_string(), "10.77.0.0/16");
        assert_eq!(p.supernet(24), p);
    }

    #[test]
    fn subnets_enumeration() {
        let p: Prefix = "10.0.0.0/22".parse().unwrap();
        let subs: Vec<Prefix> = p.subnets(24).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.0.0.0/24");
        assert_eq!(subs[3].to_string(), "10.0.3.0/24");
        assert!(subs.iter().all(|s| p.covers(*s)));
    }

    #[test]
    fn mask_edge_cases() {
        assert_eq!(Prefix::mask_for(0), 0);
        assert_eq!(Prefix::mask_for(32), u32::MAX);
        assert_eq!(Prefix::mask_for(8), 0xFF00_0000);
    }

    #[test]
    fn ordering_is_by_base_then_len() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/9".parse().unwrap();
        let c: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
