//! Compact hand-rolled binary encoding for stage outputs (DESIGN.md
//! §11).
//!
//! The persistent stage store serializes whole stage outputs —
//! [`InternetPlan`] here, the columnar attack/observation streams in
//! `attackgen` — to disk cells. JSON is 10–20× larger and dominated by
//! float formatting; the wire format instead writes fixed-width
//! little-endian scalars with `u64` length prefixes for sequences, so
//! encoding is a column `memcpy` and decoding never allocates more
//! than the final structures.
//!
//! **Determinism contract:** encoding is a pure function of the value.
//! The two `HashSet<Asn>` coverage scopes are serialized *sorted* so
//! the same plan always produces the same bytes (the store's checksum
//! and any byte-level comparison rely on this); product code only
//! membership-tests those sets, so the rebuilt iteration order is
//! irrelevant.
//!
//! Decoding is fail-safe, never panicking on truncated or corrupt
//! input: every read is bounds-checked and returns `Err(String)`. The
//! disk store additionally guards payloads with an FNV-1a checksum, so
//! decode errors indicate a version/logic mismatch rather than media
//! corruption — both are rejected upstream the same way.

use crate::asdb::{AsKind, AsRecord, AsRegistry, Asn};
use crate::ip::{Ipv4, Prefix};
use crate::plan::{Allocation, HoneypotPlan, InternetPlan, Rir, TelescopePlan};
use crate::trie::PrefixTable;
use crate::vectors::AmpVector;
use std::collections::{BTreeMap, HashSet};

/// Byte sink for the wire format: fixed-width little-endian scalars,
/// `u64` length prefixes.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn with_capacity(bytes: usize) -> Writer {
        Writer { buf: Vec::with_capacity(bytes) }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) -> &mut Writer {
        self.buf.push(v);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Bit-exact float transport (`to_bits`), so a decoded value is
    /// byte-identical to the encoded one even for non-canonical NaNs.
    pub fn f64(&mut self, v: f64) -> &mut Writer {
        self.u64(v.to_bits())
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Writer {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    pub fn str(&mut self, v: &str) -> &mut Writer {
        self.bytes(v.as_bytes())
    }
}

/// Bounds-checked cursor over an encoded payload. Every read returns
/// `Err` on truncation instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Wire decode errors are plain strings: the store logs and rejects,
/// nothing programmatic branches on the variant.
pub type WireResult<T> = std::result::Result<T, String>;

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                format!("truncated: need {n} bytes at offset {}, have {}", self.pos, self.buf.len())
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// A borrowed run of exactly `n` raw bytes (for nested payloads).
    pub fn raw(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }

    pub fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(self.u64()? as i64)
    }

    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix that is also plausibly a sequence count: bounded
    /// by the bytes remaining, so corrupt counts fail fast instead of
    /// attempting absurd allocations.
    pub fn count(&mut self, min_item_bytes: usize) -> WireResult<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        let fits = min_item_bytes == 0
            || n.checked_mul(min_item_bytes as u64).is_some_and(|need| need <= remaining);
        if !fits {
            return Err(format!("implausible count {n} with {remaining} bytes remaining"));
        }
        Ok(n as usize)
    }

    pub fn str(&mut self) -> WireResult<String> {
        let n = self.count(1)?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "invalid UTF-8 string".to_string())
    }

    /// Everything consumed?
    pub fn finish(&self) -> WireResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after decode", self.buf.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------
// Shared primitive codecs.
// ---------------------------------------------------------------------

pub fn put_prefix(w: &mut Writer, p: Prefix) {
    w.u32(p.base().0).u8(p.len());
}

pub fn get_prefix(r: &mut Reader<'_>) -> WireResult<Prefix> {
    let base = r.u32()?;
    let len = r.u8()?;
    if len > 32 {
        return Err(format!("prefix length {len} > 32"));
    }
    Ok(Prefix::new(Ipv4(base), len))
}

pub fn put_prefixes(w: &mut Writer, ps: &[Prefix]) {
    w.u64(ps.len() as u64);
    for p in ps {
        put_prefix(w, *p);
    }
}

pub fn get_prefixes(r: &mut Reader<'_>) -> WireResult<Vec<Prefix>> {
    let n = r.count(5)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_prefix(r)?);
    }
    Ok(out)
}

pub fn put_ips(w: &mut Writer, ips: &[Ipv4]) {
    w.u64(ips.len() as u64);
    for ip in ips {
        w.u32(ip.0);
    }
}

pub fn get_ips(r: &mut Reader<'_>) -> WireResult<Vec<Ipv4>> {
    let n = r.count(4)?;
    let bytes = r.raw(n * 4)?;
    Ok(bytes.chunks_exact(4).map(|c| Ipv4(u32::from_le_bytes(c.try_into().expect("4-byte chunk")))).collect())
}

// ---------------------------------------------------------------------
// Bulk column codecs: a length-prefixed run of fixed-width scalars,
// decoded with ONE bounds check for the whole column instead of one per
// element. Byte layout is identical to writing each scalar in a loop,
// so columns encoded either way round-trip through either path. These
// are the hot path for the columnar stage cells — a full attack
// population is hundreds of thousands of scalars.
// ---------------------------------------------------------------------

pub fn put_u32s(w: &mut Writer, col: &[u32]) {
    w.u64(col.len() as u64);
    for &v in col {
        w.u32(v);
    }
}

pub fn get_u32s(r: &mut Reader<'_>) -> WireResult<Vec<u32>> {
    let n = r.count(4)?;
    let bytes = r.raw(n * 4)?;
    Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk"))).collect())
}

pub fn put_u64s(w: &mut Writer, col: &[u64]) {
    w.u64(col.len() as u64);
    for &v in col {
        w.u64(v);
    }
}

pub fn get_u64s(r: &mut Reader<'_>) -> WireResult<Vec<u64>> {
    let n = r.count(8)?;
    let bytes = r.raw(n * 8)?;
    Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))).collect())
}

pub fn put_i64s(w: &mut Writer, col: &[i64]) {
    w.u64(col.len() as u64);
    for &v in col {
        w.i64(v);
    }
}

pub fn get_i64s(r: &mut Reader<'_>) -> WireResult<Vec<i64>> {
    let n = r.count(8)?;
    let bytes = r.raw(n * 8)?;
    Ok(bytes.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk"))).collect())
}

/// Bit-exact float columns (`to_bits` transport, like [`Writer::f64`]).
pub fn put_f64s(w: &mut Writer, col: &[f64]) {
    w.u64(col.len() as u64);
    for &v in col {
        w.f64(v);
    }
}

pub fn get_f64s(r: &mut Reader<'_>) -> WireResult<Vec<f64>> {
    let n = r.count(8)?;
    let bytes = r.raw(n * 8)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
        .collect())
}

/// Stable index of an amplification vector, by [`AmpVector::ALL`]
/// position. Appending vectors keeps old cells decodable; reordering
/// requires a cell-format version bump.
pub fn amp_tag(v: AmpVector) -> u8 {
    AmpVector::ALL
        .iter()
        .position(|&x| x == v)
        .expect("AmpVector::ALL lists every variant") as u8
}

pub fn amp_from_tag(tag: u8) -> WireResult<AmpVector> {
    AmpVector::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("unknown AmpVector tag {tag}"))
}

fn rir_tag(r: Rir) -> u8 {
    match r {
        Rir::Arin => 0,
        Rir::RipeNcc => 1,
        Rir::Apnic => 2,
        Rir::Lacnic => 3,
        Rir::Afrinic => 4,
    }
}

fn rir_from_tag(tag: u8) -> WireResult<Rir> {
    Ok(match tag {
        0 => Rir::Arin,
        1 => Rir::RipeNcc,
        2 => Rir::Apnic,
        3 => Rir::Lacnic,
        4 => Rir::Afrinic,
        _ => return Err(format!("unknown Rir tag {tag}")),
    })
}

fn kind_tag(k: AsKind) -> u8 {
    match k {
        AsKind::Hoster => 0,
        AsKind::Isp => 1,
        AsKind::Business => 2,
        AsKind::Cdn => 3,
        AsKind::Research => 4,
    }
}

fn kind_from_tag(tag: u8) -> WireResult<AsKind> {
    Ok(match tag {
        0 => AsKind::Hoster,
        1 => AsKind::Isp,
        2 => AsKind::Business,
        3 => AsKind::Cdn,
        4 => AsKind::Research,
        _ => return Err(format!("unknown AsKind tag {tag}")),
    })
}

// ---------------------------------------------------------------------
// InternetPlan codec.
// ---------------------------------------------------------------------

fn put_table<T>(w: &mut Writer, table: &PrefixTable<T>, put: impl Fn(&mut Writer, &T)) {
    let entries: Vec<(Prefix, &T)> = table.iter().collect();
    w.u64(entries.len() as u64);
    for (p, v) in entries {
        put_prefix(w, p);
        put(w, v);
    }
}

fn get_table<T>(
    r: &mut Reader<'_>,
    min_item_bytes: usize,
    get: impl Fn(&mut Reader<'_>) -> WireResult<T>,
) -> WireResult<PrefixTable<T>> {
    let n = r.count(5 + min_item_bytes)?;
    let mut table = PrefixTable::new();
    for _ in 0..n {
        let p = get_prefix(r)?;
        let v = get(r)?;
        table.insert(p, v);
    }
    Ok(table)
}

fn put_telescope(w: &mut Writer, t: &TelescopePlan) {
    w.str(&t.name).u32(t.asn.0);
    put_prefixes(w, &t.prefixes);
}

fn get_telescope(r: &mut Reader<'_>) -> WireResult<TelescopePlan> {
    Ok(TelescopePlan {
        name: r.str()?,
        asn: Asn(r.u32()?),
        prefixes: get_prefixes(r)?,
    })
}

/// A `HashSet<Asn>` as a *sorted* ASN list: deterministic bytes for
/// identical sets regardless of hash iteration order.
fn put_asn_set(w: &mut Writer, set: &HashSet<Asn>) {
    let mut asns: Vec<u32> = set.iter().map(|a| a.0).collect();
    asns.sort_unstable();
    w.u64(asns.len() as u64);
    for a in asns {
        w.u32(a);
    }
}

fn get_asn_set(r: &mut Reader<'_>) -> WireResult<HashSet<Asn>> {
    let n = r.count(4)?;
    let mut set = HashSet::with_capacity(n);
    for _ in 0..n {
        set.insert(Asn(r.u32()?));
    }
    Ok(set)
}

impl InternetPlan {
    /// Encode to the wire format. Deterministic: the same plan always
    /// produces the same bytes.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(1 << 16);

        // Registry in insertion order; `add` rebuilds the ASN index.
        w.u64(self.registry.len() as u64);
        for rec in self.registry.iter() {
            w.u32(rec.asn.0);
            w.str(&rec.name);
            w.u8(kind_tag(rec.kind));
            put_prefixes(&mut w, &rec.prefixes);
            w.f64(rec.target_weight);
        }

        put_table(&mut w, &self.routed, |w, asn| {
            w.u32(asn.0);
        });
        put_table(&mut w, &self.allocations, |w, a| {
            w.u8(rir_tag(a.rir)).u32(a.asn.0);
            put_prefix(w, a.block);
        });

        put_telescope(&mut w, &self.ucsd);
        put_telescope(&mut w, &self.orion);

        put_ips(&mut w, &self.honeypots.amppot_allocated);
        w.u64(self.honeypots.amppot_responsive as u64);
        put_ips(&mut w, &self.honeypots.hopscotch);
        put_ips(&mut w, &self.honeypots.newkid);

        put_table(&mut w, &self.akamai_protected, |_, ()| {});
        put_prefixes(&mut w, &self.akamai_prefix_list);
        put_table(&mut w, &self.akamai_announced, |_, ()| {});
        put_prefixes(&mut w, &self.akamai_announced_list);

        put_asn_set(&mut w, &self.netscout_customers);
        put_asn_set(&mut w, &self.ixp_members);

        w.u64(self.reflector_pools.len() as u64);
        for (v, n) in &self.reflector_pools {
            w.u8(amp_tag(*v)).u64(*n);
        }

        w.into_bytes()
    }

    /// Decode a wire payload. Fails (never panics) on truncated or
    /// structurally invalid input.
    pub fn from_wire_bytes(bytes: &[u8]) -> WireResult<InternetPlan> {
        let mut r = Reader::new(bytes);

        let n_records = r.count(18)?;
        let mut registry = AsRegistry::new();
        for _ in 0..n_records {
            let asn = Asn(r.u32()?);
            if registry.get(asn).is_some() {
                return Err(format!("duplicate {asn} in encoded registry"));
            }
            registry.add(AsRecord {
                asn,
                name: r.str()?,
                kind: kind_from_tag(r.u8()?)?,
                prefixes: get_prefixes(&mut r)?,
                target_weight: r.f64()?,
            });
        }

        let routed = get_table(&mut r, 4, |r| Ok(Asn(r.u32()?)))?;
        let allocations = get_table(&mut r, 10, |r| {
            Ok(Allocation {
                rir: rir_from_tag(r.u8()?)?,
                asn: Asn(r.u32()?),
                block: get_prefix(r)?,
            })
        })?;

        let ucsd = get_telescope(&mut r)?;
        let orion = get_telescope(&mut r)?;

        let honeypots = HoneypotPlan {
            amppot_allocated: get_ips(&mut r)?,
            amppot_responsive: r.u64()? as usize,
            hopscotch: get_ips(&mut r)?,
            newkid: get_ips(&mut r)?,
        };

        let akamai_protected = get_table(&mut r, 0, |_| Ok(()))?;
        let akamai_prefix_list = get_prefixes(&mut r)?;
        let akamai_announced = get_table(&mut r, 0, |_| Ok(()))?;
        let akamai_announced_list = get_prefixes(&mut r)?;

        let netscout_customers = get_asn_set(&mut r)?;
        let ixp_members = get_asn_set(&mut r)?;

        let n_pools = r.count(9)?;
        let mut reflector_pools = BTreeMap::new();
        for _ in 0..n_pools {
            let v = amp_from_tag(r.u8()?)?;
            reflector_pools.insert(v, r.u64()?);
        }

        r.finish()?;
        Ok(InternetPlan {
            registry,
            routed,
            allocations,
            ucsd,
            orion,
            honeypots,
            akamai_protected,
            akamai_prefix_list,
            akamai_announced,
            akamai_announced_list,
            netscout_customers,
            ixp_members,
            reflector_pools,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::NetScale;
    use simcore::SimRng;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(0xC0DE);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).i64(-42).f64(-0.125).str("darknet");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "darknet");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut w = Writer::new();
        w.u64(5);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes[..3]).u64().is_err());
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 5);
        assert!(r.finish().is_err(), "4 unread bytes must fail finish");
    }

    #[test]
    fn bulk_columns_round_trip_and_match_scalar_layout() {
        let u32col = [0u32, 1, u32::MAX, 0xDEAD_BEEF];
        let u64col = [0u64, u64::MAX, 42];
        let i64col = [i64::MIN, -1, 0, i64::MAX];
        let f64col = [0.0f64, -0.0, f64::NAN, f64::INFINITY, -0.125];

        let mut bulk = Writer::new();
        put_u32s(&mut bulk, &u32col);
        put_u64s(&mut bulk, &u64col);
        put_i64s(&mut bulk, &i64col);
        put_f64s(&mut bulk, &f64col);
        let bytes = bulk.into_bytes();

        // Same bytes as writing each scalar by hand.
        let mut scalar = Writer::new();
        scalar.u64(4);
        for v in u32col {
            scalar.u32(v);
        }
        scalar.u64(3);
        for v in u64col {
            scalar.u64(v);
        }
        scalar.u64(4);
        for v in i64col {
            scalar.i64(v);
        }
        scalar.u64(5);
        for v in f64col {
            scalar.f64(v);
        }
        assert_eq!(scalar.into_bytes(), bytes);

        let mut r = Reader::new(&bytes);
        assert_eq!(get_u32s(&mut r).unwrap(), u32col);
        assert_eq!(get_u64s(&mut r).unwrap(), u64col);
        assert_eq!(get_i64s(&mut r).unwrap(), i64col);
        let floats = get_f64s(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(floats.len(), f64col.len());
        for (a, b) in floats.iter().zip(f64col.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact float transport");
        }

        // Truncated columns fail, never panic.
        assert!(get_u32s(&mut Reader::new(&bytes[..11])).is_err());
    }

    #[test]
    fn implausible_counts_fail_fast() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).count(4).is_err());
        // And via a typed decoder: a huge prefix count cannot allocate.
        assert!(get_prefixes(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn plan_round_trips_byte_identically() {
        let p = plan();
        let bytes = p.to_wire_bytes();
        let q = InternetPlan::from_wire_bytes(&bytes).expect("decode");

        // Structural equality of every component the pipeline reads.
        assert_eq!(q.registry.len(), p.registry.len());
        for (a, b) in p.registry.iter().zip(q.registry.iter()) {
            assert_eq!(a.asn, b.asn);
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.prefixes, b.prefixes);
            assert_eq!(a.target_weight.to_bits(), b.target_weight.to_bits());
        }
        let pairs = |t: &PrefixTable<Asn>| -> Vec<(Prefix, Asn)> {
            t.iter().map(|(p, a)| (p, *a)).collect()
        };
        assert_eq!(pairs(&p.routed), pairs(&q.routed));
        assert_eq!(
            p.allocations.iter().map(|(x, a)| (x, *a)).collect::<Vec<_>>(),
            q.allocations.iter().map(|(x, a)| (x, *a)).collect::<Vec<_>>()
        );
        assert_eq!(p.ucsd.prefixes, q.ucsd.prefixes);
        assert_eq!(p.orion.name, q.orion.name);
        assert_eq!(p.honeypots.amppot_allocated, q.honeypots.amppot_allocated);
        assert_eq!(p.honeypots.amppot_responsive, q.honeypots.amppot_responsive);
        assert_eq!(p.honeypots.hopscotch, q.honeypots.hopscotch);
        assert_eq!(p.honeypots.newkid, q.honeypots.newkid);
        assert_eq!(p.akamai_prefix_list, q.akamai_prefix_list);
        assert_eq!(p.akamai_announced_list, q.akamai_announced_list);
        assert_eq!(p.netscout_customers, q.netscout_customers);
        assert_eq!(p.ixp_members, q.ixp_members);
        assert_eq!(p.reflector_pools, q.reflector_pools);

        // THE store invariant: re-encoding the decoded plan reproduces
        // the exact bytes (deterministic encoding, sorted sets).
        assert_eq!(q.to_wire_bytes(), bytes);
    }

    #[test]
    fn plan_decode_never_panics_on_corruption() {
        let p = plan();
        let bytes = p.to_wire_bytes();
        // Truncations at a spread of boundaries.
        for cut in [0, 1, 7, 8, bytes.len() / 2, bytes.len() - 1] {
            let _ = InternetPlan::from_wire_bytes(&bytes[..cut]);
        }
        // Single-byte flips across the payload (sampled).
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let _ = InternetPlan::from_wire_bytes(&bad);
        }
    }

    #[test]
    fn enum_tags_are_exhaustive_and_stable() {
        for (i, v) in AmpVector::ALL.iter().enumerate() {
            assert_eq!(amp_tag(*v) as usize, i);
            assert_eq!(amp_from_tag(i as u8).unwrap(), *v);
        }
        assert!(amp_from_tag(AmpVector::ALL.len() as u8).is_err());
        for r in [Rir::Arin, Rir::RipeNcc, Rir::Apnic, Rir::Lacnic, Rir::Afrinic] {
            assert_eq!(rir_from_tag(rir_tag(r)).unwrap(), r);
        }
        for k in [AsKind::Hoster, AsKind::Isp, AsKind::Business, AsKind::Cdn, AsKind::Research] {
            assert_eq!(kind_from_tag(kind_tag(k)).unwrap(), k);
        }
    }
}
