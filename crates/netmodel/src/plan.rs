//! The Internet address plan: every piece of simulated address-space
//! geography the study needs, built deterministically from one RNG.
//!
//! The plan plays the role of the "ground truth Internet" that the
//! paper's observatories each see a slice of:
//!
//! * the AS population with announced prefixes and target weights,
//! * RIR allocation blocks and the BGP routed-prefix table (consumed by
//!   the Appendix-I carpet-bombing reconstruction),
//! * the two telescope darknets (UCSD-NT /9+/10 ≈ 12M addresses, ORION
//!   /13 ≈ 500k addresses, §5),
//! * honeypot sensor addresses (AmpPot ≈70 allocated / 30 responsive,
//!   Hopscotch 65, NewKid 1 — Table 2),
//! * industry coverage scopes (Akamai-protected prefixes, Netscout
//!   customer ASes, IXP member ASes),
//! * per-vector open-reflector pool sizes.

use crate::asdb::{AsKind, AsRecord, AsRegistry, Asn, KNOWN_ASES};
use crate::ip::{Ipv4, Prefix};
use crate::trie::PrefixTable;
use crate::vectors::AmpVector;
use serde::{Deserialize, Serialize};
use simcore::SimRng;
use std::collections::{BTreeMap, HashSet};

/// Regional Internet Registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rir {
    Arin,
    RipeNcc,
    Apnic,
    Lacnic,
    Afrinic,
}

/// One RIR allocation: a block delegated to an AS. Appendix I:
/// carpet-bombing aggregation "does not aggregate attacks that span
/// multiple IP address block allocations".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    pub rir: Rir,
    pub asn: Asn,
    pub block: Prefix,
}

/// Scale knobs for the synthetic Internet. Defaults are sized so a full
/// 4.5-year study runs in seconds while keeping the populations large
/// enough for the paper's overlap statistics to be meaningful.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetScale {
    /// Synthetic tail ASes in addition to the named heavy hitters.
    pub tail_as_count: usize,
    /// Total open reflectors across all vectors (the honeypot sensors
    /// hide inside these pools).
    pub reflector_pool_total: u64,
    /// Fraction of ASes whose traffic Netscout's customer base covers
    /// (Netscout: "more than 500 ISPs and 1500 enterprises", §5).
    pub netscout_customer_fraction: f64,
    /// Fraction of ASes peering at the modeled European IXP.
    pub ixp_member_fraction: f64,
    /// Fraction of AS prefixes protected by (reroutable through)
    /// Akamai Prolexic.
    pub akamai_protected_fraction: f64,
    /// Zipf exponent of the tail-AS target-weight distribution.
    pub tail_weight_exponent: f64,
}

impl Default for NetScale {
    fn default() -> Self {
        NetScale {
            tail_as_count: 400,
            reflector_pool_total: 1_500_000,
            netscout_customer_fraction: 0.30,
            ixp_member_fraction: 0.25,
            akamai_protected_fraction: 0.03,
            tail_weight_exponent: 1.1,
        }
    }
}

impl NetScale {
    /// A reduced plan for fast unit tests.
    pub fn tiny() -> Self {
        NetScale {
            tail_as_count: 40,
            reflector_pool_total: 100_000,
            ..NetScale::default()
        }
    }
}

/// Darknet specification of a telescope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelescopePlan {
    pub name: String,
    pub asn: Asn,
    pub prefixes: Vec<Prefix>,
}

impl TelescopePlan {
    /// Number of monitored (dark) addresses.
    pub fn address_count(&self) -> u64 {
        self.prefixes.iter().map(|p| p.size()).sum()
    }

    /// Fraction of the full IPv4 space this darknet covers — the
    /// probability that one uniformly randomly spoofed source elicits a
    /// backscatter packet into this telescope (§5).
    pub fn coverage(&self) -> f64 {
        self.address_count() as f64 / (1u64 << 32) as f64
    }

    pub fn contains(&self, ip: Ipv4) -> bool {
        self.prefixes.iter().any(|p| p.contains(ip))
    }
}

/// Honeypot sensor addresses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoneypotPlan {
    /// AmpPot has ≈70 IPs allocated but responds from only ≈30 (§5).
    pub amppot_allocated: Vec<Ipv4>,
    pub amppot_responsive: usize,
    /// Hopscotch: 65 sensor IPs (Table 2).
    pub hopscotch: Vec<Ipv4>,
    /// NewKid: a single sensor in Brazil (Table 2).
    pub newkid: Vec<Ipv4>,
}

/// The complete simulated Internet.
#[derive(Debug, Clone)]
pub struct InternetPlan {
    pub registry: AsRegistry,
    /// BGP routed prefixes → origin AS.
    pub routed: PrefixTable<Asn>,
    /// RIR allocation blocks.
    pub allocations: PrefixTable<Allocation>,
    pub ucsd: TelescopePlan,
    pub orion: TelescopePlan,
    pub honeypots: HoneypotPlan,
    /// Prefixes that can be rerouted through Akamai Prolexic.
    pub akamai_protected: PrefixTable<()>,
    pub akamai_prefix_list: Vec<Prefix>,
    /// The subset of protected space advertised from the Prolexic ASN
    /// itself — the paper's §7.2 target join is scoped to "targets in
    /// the network prefix of Akamai", far narrower than the protected
    /// customer base.
    pub akamai_announced: PrefixTable<()>,
    pub akamai_announced_list: Vec<Prefix>,
    pub netscout_customers: HashSet<Asn>,
    pub ixp_members: HashSet<Asn>,
    /// Open-reflector pool size per amplification vector.
    pub reflector_pools: BTreeMap<AmpVector, u64>,
}

/// Sequential block allocator over public IPv4 space, skipping reserved
/// ranges.
struct BlockAllocator {
    cursor: u64,
    reserved: Vec<Prefix>,
}

impl BlockAllocator {
    fn new() -> Self {
        let reserved: Vec<Prefix> = [
            "0.0.0.0/8",
            "10.0.0.0/8",
            "100.64.0.0/10",
            "127.0.0.0/8",
            "169.254.0.0/16",
            "172.16.0.0/12",
            "192.0.0.0/24",
            "192.0.2.0/24",
            "192.88.99.0/24",
            "192.168.0.0/16",
            "198.18.0.0/15",
            "198.51.100.0/24",
            "203.0.113.0/24",
            "224.0.0.0/3",
        ]
        .iter()
        .map(|s| s.parse().expect("static reserved-prefix literal"))
        .collect();
        BlockAllocator {
            cursor: 1u64 << 24, // start at 1.0.0.0
            reserved,
        }
    }

    fn alloc(&mut self, len: u8) -> Prefix {
        let size = 1u64 << (32 - len);
        loop {
            // Align up to the prefix boundary.
            let base = self.cursor.div_ceil(size) * size;
            assert!(base + size <= (1u64 << 32), "IPv4 space exhausted");
            let candidate = Prefix::new(Ipv4(base as u32), len);
            if let Some(r) = self.reserved.iter().find(|r| r.overlaps(candidate)) {
                // Jump past the reserved block.
                self.cursor = r.base().0 as u64 + r.size();
                continue;
            }
            self.cursor = base + size;
            return candidate;
        }
    }
}

impl InternetPlan {
    /// Build the plan. Deterministic for a given `(scale, rng)` pair.
    pub fn build(scale: &NetScale, rng: &mut SimRng) -> Self {
        let mut alloc = BlockAllocator::new();
        let mut registry = AsRegistry::new();
        let mut routed = PrefixTable::new();
        let mut allocations = PrefixTable::new();
        let mut rng = rng.fork_named("internet-plan");

        // --- Telescopes (unused, unrouted space; weight 0). -------------
        let ucsd = TelescopePlan {
            name: "UCSD-NT".into(),
            asn: Asn(7377),
            prefixes: vec![alloc.alloc(9), alloc.alloc(10)],
        };
        let orion = TelescopePlan {
            name: "ORION".into(),
            asn: Asn(237),
            prefixes: vec![alloc.alloc(13)],
        };
        for (asn, name, tele) in [
            (Asn(7377), "UCSD/CAIDA", &ucsd),
            (Asn(237), "Merit", &orion),
        ] {
            registry.add(AsRecord {
                asn,
                name: name.into(),
                kind: AsKind::Research,
                prefixes: tele.prefixes.clone(),
                target_weight: 0.0,
            });
            for p in &tele.prefixes {
                allocations.insert(
                    *p,
                    Allocation {
                        rir: Rir::Arin,
                        asn,
                        block: *p,
                    },
                );
                // Telescope space is routed (it must attract backscatter)
                // but hosts nothing.
                routed.insert(*p, asn);
            }
        }

        // --- Known heavy hitters (Table 4). -----------------------------
        let known_rirs: &[(u32, Rir)] = &[
            (16276, Rir::RipeNcc),
            (24940, Rir::RipeNcc),
            (16509, Rir::Arin),
            (8075, Rir::Arin),
            (396982, Rir::Arin),
            (13335, Rir::Arin),
            (4837, Rir::Apnic),
            (14061, Rir::Arin),
            (14586, Rir::Arin),
            (37963, Rir::Apnic),
            (4134, Rir::Apnic),
        ];
        let known_weight_total: f64 = KNOWN_ASES.iter().map(|k| k.weight_share).sum();
        for known in KNOWN_ASES {
            let rir = known_rirs
                .iter()
                .find(|(a, _)| *a == known.asn)
                .map(|(_, r)| *r)
                .unwrap_or(Rir::Arin);
            // Hosters and ISPs get more / larger blocks.
            let (block_count, len_lo, len_hi) = match known.kind {
                AsKind::Hoster => (3usize, 12u8, 15u8),
                AsKind::Isp => (4, 11, 14),
                AsKind::Business => (2, 13, 16),
                AsKind::Cdn => (2, 14, 16),
                AsKind::Research => (1, 16, 16),
            };
            let mut prefixes = Vec::new();
            for _ in 0..block_count {
                let len = rng.u64_range(len_lo as u64, len_hi as u64) as u8;
                let block = alloc.alloc(len);
                prefixes.push(block);
                allocations.insert(
                    block,
                    Allocation {
                        rir,
                        asn: Asn(known.asn),
                        block,
                    },
                );
                announce(&mut routed, block, Asn(known.asn), &mut rng);
            }
            registry.add(AsRecord {
                asn: Asn(known.asn),
                name: known.name.into(),
                kind: known.kind,
                prefixes,
                target_weight: known.weight_share,
            });
        }

        // --- Synthetic tail. ---------------------------------------------
        const TAIL_RANK_OFFSET: usize = 6;
        let zipf = simcore::Zipf::new(
            scale.tail_as_count.max(1) + TAIL_RANK_OFFSET,
            scale.tail_weight_exponent,
        );
        let tail_weight_total = (1.0 - known_weight_total).max(0.1);
        // Zipf normalization over the offset ranks:
        let zipf_mass: f64 = (0..scale.tail_as_count)
            .map(|k| zipf.pmf(k + TAIL_RANK_OFFSET))
            .sum();
        for i in 0..scale.tail_as_count {
            let asn = Asn(50_000 + i as u32);
            let kind = match rng.weighted_index(&[0.45, 0.28, 0.22, 0.05]) {
                0 => AsKind::Isp,
                1 => AsKind::Hoster,
                2 => AsKind::Business,
                _ => AsKind::Cdn,
            };
            let rir = match rng.weighted_index(&[0.30, 0.32, 0.22, 0.10, 0.06]) {
                0 => Rir::Arin,
                1 => Rir::RipeNcc,
                2 => Rir::Apnic,
                3 => Rir::Lacnic,
                _ => Rir::Afrinic,
            };
            let (block_count, len_lo, len_hi) = match kind {
                AsKind::Isp => (rng.u64_range(1, 3) as usize, 13u8, 17u8),
                AsKind::Hoster => (rng.u64_range(1, 4) as usize, 15, 18),
                AsKind::Business => (1, 17, 21),
                AsKind::Cdn => (1, 16, 19),
                AsKind::Research => (1, 18, 20),
            };
            let mut prefixes = Vec::new();
            for _ in 0..block_count {
                let len = rng.u64_range(len_lo as u64, len_hi as u64) as u8;
                let block = alloc.alloc(len);
                prefixes.push(block);
                allocations.insert(block, Allocation { rir, asn, block });
                announce(&mut routed, block, asn, &mut rng);
            }
            // Weight: Zipf by rank (offset so no tail AS rivals the
            // named heavy hitters of Table 4), with hosters boosted
            // (hosters dominate Table 4).
            let kind_boost = match kind {
                AsKind::Hoster => 2.5,
                AsKind::Cdn => 1.2,
                AsKind::Isp => 1.0,
                AsKind::Business => 0.6,
                AsKind::Research => 0.0,
            };
            let weight = tail_weight_total * (zipf.pmf(i + TAIL_RANK_OFFSET) / zipf_mass) * kind_boost;
            registry.add(AsRecord {
                asn,
                name: format!("TailNet-{i}"),
                kind,
                prefixes,
                target_weight: weight,
            });
        }

        // --- Honeypot sensors: scattered across tail ASes. ---------------
        let honeypots = {
            let tail_asns: Vec<Asn> = registry
                .iter()
                .filter(|r| r.asn.0 >= 50_000)
                .map(|r| r.asn)
                .collect();
            let pick_sensor_ips = |count: usize, rng: &mut SimRng| -> Vec<Ipv4> {
                let mut out = Vec::with_capacity(count);
                let mut used = HashSet::new();
                while out.len() < count {
                    let asn = *rng.choose(&tail_asns);
                    let rec = registry
                        .get(asn)
                        .expect("tail ASN drawn from the registry itself");
                    let p = *rng.choose(&rec.prefixes);
                    let ip = p.nth(rng.u64_below(p.size()));
                    if used.insert(ip) {
                        out.push(ip);
                    }
                }
                out
            };
            let amppot_allocated = pick_sensor_ips(70, &mut rng);
            let hopscotch = pick_sensor_ips(65, &mut rng);
            let newkid = pick_sensor_ips(1, &mut rng);
            HoneypotPlan {
                amppot_allocated,
                amppot_responsive: 30,
                hopscotch,
                newkid,
            }
        };

        // --- Industry coverage scopes. ------------------------------------
        let mut akamai_protected = PrefixTable::new();
        let mut akamai_prefix_list = Vec::new();
        let mut akamai_announced = PrefixTable::new();
        let mut akamai_announced_list = Vec::new();
        let mut netscout_customers = HashSet::new();
        let mut ixp_members = HashSet::new();
        for rec in registry.iter() {
            if rec.kind == AsKind::Research {
                continue;
            }
            if rng.chance(scale.netscout_customer_fraction) {
                netscout_customers.insert(rec.asn);
            }
            // European IXP: RIPE-allocated ASes are much more likely
            // members.
            let rir = allocations
                .lookup(rec.prefixes[0].base())
                .map(|(_, a)| a.rir);
            let ixp_p = match rir {
                Some(Rir::RipeNcc) => scale.ixp_member_fraction * 2.5,
                _ => scale.ixp_member_fraction * 0.5,
            };
            if rng.chance(ixp_p) {
                ixp_members.insert(rec.asn);
            }
            // Akamai protects individual prefixes (customers "must own a
            // prefix that can be rerouted through the Prolexic AS", §6.3)
            // — skewed toward Business/Hoster customers.
            let ak_p = match rec.kind {
                AsKind::Business => scale.akamai_protected_fraction * 4.0,
                AsKind::Hoster => scale.akamai_protected_fraction * 1.5,
                _ => scale.akamai_protected_fraction * 0.5,
            };
            for p in &rec.prefixes {
                if rng.chance(ak_p) {
                    akamai_protected.insert(*p, ());
                    akamai_prefix_list.push(*p);
                    // A minority of protected blocks are permanently
                    // advertised from the Prolexic ASN (most customers
                    // reroute on demand): one narrow sub-prefix each.
                    if rng.chance(0.25) && p.len() <= 24 {
                        let sub_len = (p.len() + 3).min(28);
                        let subs: Vec<Prefix> = p.subnets(sub_len).collect();
                        let sub = subs[rng.usize_below(subs.len())];
                        akamai_announced.insert(sub, ());
                        akamai_announced_list.push(sub);
                    }
                }
            }
        }

        // --- Reflector pools. -----------------------------------------------
        let mut reflector_pools = BTreeMap::new();
        for v in AmpVector::ALL {
            let n = (scale.reflector_pool_total as f64 * v.reflector_pool_share()) as u64;
            reflector_pools.insert(v, n.max(1));
        }

        InternetPlan {
            registry,
            routed,
            allocations,
            ucsd,
            orion,
            honeypots,
            akamai_protected,
            akamai_prefix_list,
            akamai_announced,
            akamai_announced_list,
            netscout_customers,
            ixp_members,
            reflector_pools,
        }
    }

    /// Origin AS of an address via the routed table.
    pub fn asn_of(&self, ip: Ipv4) -> Option<Asn> {
        self.routed.lookup(ip).map(|(_, asn)| *asn)
    }

    /// Most specific routed prefix covering an address.
    pub fn routed_prefix_of(&self, ip: Ipv4) -> Option<Prefix> {
        self.routed.lookup(ip).map(|(p, _)| p)
    }

    /// RIR allocation covering an address.
    pub fn allocation_of(&self, ip: Ipv4) -> Option<Allocation> {
        self.allocations.lookup(ip).map(|(_, a)| *a)
    }

    /// Is the address inside Akamai-protected space?
    pub fn akamai_protects(&self, ip: Ipv4) -> bool {
        self.akamai_protected.lookup(ip).is_some()
    }

    /// Is the address inside the Prolexic-ASN announced prefixes (the
    /// §7.2 join scope)?
    pub fn akamai_announces(&self, ip: Ipv4) -> bool {
        self.akamai_announced.lookup(ip).is_some()
    }

    /// Which telescope (if any) monitors the address?
    pub fn telescope_of(&self, ip: Ipv4) -> Option<&TelescopePlan> {
        if self.ucsd.contains(ip) {
            Some(&self.ucsd)
        } else if self.orion.contains(ip) {
            Some(&self.orion)
        } else {
            None
        }
    }

    /// Draw a uniformly random address announced by the given AS.
    pub fn random_ip_in_asn(&self, asn: Asn, rng: &mut SimRng) -> Option<Ipv4> {
        let rec = self.registry.get(asn)?;
        if rec.prefixes.is_empty() {
            return None;
        }
        let total: u64 = rec.prefixes.iter().map(|p| p.size()).sum();
        let mut i = rng.u64_below(total);
        for p in &rec.prefixes {
            if i < p.size() {
                return Some(p.nth(i));
            }
            i -= p.size();
        }
        unreachable!("weights exhausted")
    }
}

/// Announce an allocation into the routed table, possibly deaggregated:
/// real BGP tables carry a mix of covering prefixes and more-specifics,
/// which is exactly what the Appendix-I longest-routed-prefix search must
/// navigate.
fn announce(routed: &mut PrefixTable<Asn>, block: Prefix, asn: Asn, rng: &mut SimRng) {
    routed.insert(block, asn);
    if block.len() >= 22 || !rng.chance(0.5) {
        return;
    }
    // Announce 2..=4 more-specific subnets one or two bits longer.
    let extra_bits = rng.u64_range(1, 2) as u8;
    let child_len = (block.len() + extra_bits).min(24);
    let children: Vec<Prefix> = block.subnets(child_len).collect();
    let k = rng.u64_range(2, 4.min(children.len() as u64)) as usize;
    for idx in rng.sample_indices(children.len(), k) {
        routed.insert(children[idx], asn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(1234);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    #[test]
    fn deterministic_build() {
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        let p1 = InternetPlan::build(&NetScale::tiny(), &mut r1);
        let p2 = InternetPlan::build(&NetScale::tiny(), &mut r2);
        assert_eq!(p1.registry.len(), p2.registry.len());
        assert_eq!(p1.honeypots.amppot_allocated, p2.honeypots.amppot_allocated);
        assert_eq!(p1.akamai_prefix_list, p2.akamai_prefix_list);
    }

    #[test]
    fn telescope_sizes_match_paper() {
        let p = plan();
        // UCSD: /9 + /10 = 12.6M ≈ "12M IPs" (Table 2).
        assert_eq!(p.ucsd.address_count(), (1 << 23) + (1 << 22));
        // ORION: /13 = 524k ≈ "500k IPs".
        assert_eq!(p.orion.address_count(), 1 << 19);
        // UCSD is roughly 20x-24x larger (§6.1 says "roughly 20x").
        let ratio = p.ucsd.address_count() as f64 / p.orion.address_count() as f64;
        assert!((20.0..=28.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn telescope_space_disjoint() {
        let p = plan();
        for u in &p.ucsd.prefixes {
            for o in &p.orion.prefixes {
                assert!(!u.overlaps(*o));
            }
        }
    }

    #[test]
    fn honeypot_counts_match_table2() {
        let p = plan();
        assert_eq!(p.honeypots.amppot_allocated.len(), 70);
        assert_eq!(p.honeypots.amppot_responsive, 30);
        assert_eq!(p.honeypots.hopscotch.len(), 65);
        assert_eq!(p.honeypots.newkid.len(), 1);
    }

    #[test]
    fn honeypot_sensors_not_in_telescopes() {
        let p = plan();
        for ip in p
            .honeypots
            .amppot_allocated
            .iter()
            .chain(&p.honeypots.hopscotch)
            .chain(&p.honeypots.newkid)
        {
            assert!(p.telescope_of(*ip).is_none(), "{ip} inside a darknet");
        }
    }

    #[test]
    fn known_ases_present() {
        let p = plan();
        for known in KNOWN_ASES {
            let rec = p.registry.get(Asn(known.asn)).unwrap();
            assert_eq!(rec.name, known.name);
            assert!(!rec.prefixes.is_empty());
        }
    }

    #[test]
    fn routed_lookup_maps_back_to_owner() {
        let p = plan();
        let mut rng = SimRng::new(5);
        for _ in 0..200 {
            let ovh = p.registry.get(Asn(16276)).unwrap();
            let pfx = *rng.choose(&ovh.prefixes);
            let ip = pfx.nth(rng.u64_below(pfx.size()));
            assert_eq!(p.asn_of(ip), Some(Asn(16276)));
        }
    }

    #[test]
    fn allocations_never_overlap() {
        let p = plan();
        let allocs: Vec<(Prefix, &Allocation)> = p.allocations.iter().collect();
        for w in allocs.windows(2) {
            assert!(
                !w[0].0.overlaps(w[1].0),
                "{} overlaps {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn allocation_lookup_consistent_with_registry() {
        let p = plan();
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            let idx = rng.usize_below(p.registry.len());
            let rec = p.registry.by_index(idx);
            if rec.prefixes.is_empty() {
                continue;
            }
            let pfx = *rng.choose(&rec.prefixes);
            let a = p.allocation_of(pfx.base()).unwrap();
            assert_eq!(a.asn, rec.asn);
        }
    }

    #[test]
    fn weights_nonnegative_and_positive_total() {
        let p = plan();
        let weights = p.registry.target_weights();
        assert!(weights.iter().all(|&w| w >= 0.0));
        assert!(weights.iter().sum::<f64>() > 0.5);
        // Research ASes (telescopes) must never be targets.
        for rec in p.registry.iter() {
            if rec.kind == AsKind::Research {
                assert_eq!(rec.target_weight, 0.0);
            }
        }
    }

    #[test]
    fn ovh_has_the_heaviest_weight() {
        let p = plan();
        let ovh = p.registry.get(Asn(16276)).unwrap().target_weight;
        for rec in p.registry.iter() {
            if rec.asn != Asn(16276) {
                assert!(rec.target_weight <= ovh, "{} out-weighs OVH", rec.name);
            }
        }
    }

    #[test]
    fn coverage_scopes_populated() {
        let p = plan();
        assert!(!p.netscout_customers.is_empty());
        assert!(!p.ixp_members.is_empty());
        assert!(!p.akamai_prefix_list.is_empty());
        // Research ASes don't buy DDoS protection.
        assert!(!p.netscout_customers.contains(&Asn(7377)));
    }

    #[test]
    fn akamai_protection_lookup() {
        let p = plan();
        for pfx in &p.akamai_prefix_list {
            assert!(p.akamai_protects(pfx.base()));
        }
    }

    #[test]
    fn akamai_announced_is_narrow_subset_of_protected() {
        let p = plan();
        assert!(!p.akamai_announced_list.is_empty());
        let announced: u64 = p.akamai_announced_list.iter().map(|x| x.size()).sum();
        let protected: u64 = p.akamai_prefix_list.iter().map(|x| x.size()).sum();
        assert!(announced * 8 < protected, "announced {announced} vs protected {protected}");
        for sub in &p.akamai_announced_list {
            assert!(p.akamai_protects(sub.base()), "announced outside protected");
            assert!(p.akamai_announces(sub.base()));
        }
    }

    #[test]
    fn reflector_pools_cover_all_vectors() {
        let p = plan();
        for v in AmpVector::ALL {
            assert!(*p.reflector_pools.get(&v).unwrap() >= 1);
        }
        // DNS pool is the largest.
        let dns = p.reflector_pools[&AmpVector::Dns];
        assert!(p.reflector_pools.values().all(|&n| n <= dns));
    }

    #[test]
    fn random_ip_in_asn_stays_inside() {
        let p = plan();
        let mut rng = SimRng::new(77);
        let rec = p.registry.get(Asn(24940)).unwrap();
        for _ in 0..100 {
            let ip = p.random_ip_in_asn(Asn(24940), &mut rng).unwrap();
            assert!(rec.contains(ip));
        }
        assert!(p.random_ip_in_asn(Asn(99_999_999), &mut rng).is_none());
    }

    #[test]
    fn blocks_avoid_reserved_space() {
        let p = plan();
        let reserved: Vec<Prefix> = ["10.0.0.0/8", "127.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16", "224.0.0.0/3"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        for (pfx, _) in p.allocations.iter() {
            for r in &reserved {
                assert!(!pfx.overlaps(*r), "{pfx} overlaps reserved {r}");
            }
        }
    }

    #[test]
    fn routed_prefixes_within_allocations() {
        let p = plan();
        for (pfx, asn) in p.routed.iter() {
            let alloc = p.allocation_of(pfx.base()).unwrap_or_else(|| {
                panic!("routed prefix {pfx} has no allocation");
            });
            assert_eq!(alloc.asn, *asn, "routed {pfx} origin mismatch");
            assert!(alloc.block.covers(pfx));
        }
    }
}
