//! `netmodel` — the simulated Internet substrate.
//!
//! Everything address-space-shaped that the ddoscovery study needs:
//! IPv4 prefix arithmetic ([`ip`]), longest-prefix matching ([`trie`]),
//! the AS population ([`asdb`]), amplification protocol vectors
//! ([`vectors`]) and the full deterministic Internet plan ([`plan`])
//! with telescopes, honeypot sensors, and industry coverage scopes.

pub mod asdb;
pub mod ip;
pub mod plan;
pub mod trie;
pub mod vectors;
pub mod wire;

pub use asdb::{AsKind, AsRecord, AsRegistry, Asn, KNOWN_ASES};
pub use ip::{Ipv4, ParseError, Prefix};
pub use plan::{Allocation, HoneypotPlan, InternetPlan, NetScale, Rir, TelescopePlan};
pub use trie::PrefixTable;
pub use vectors::{AmpVector, Transport};
