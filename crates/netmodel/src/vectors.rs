//! Reflection-amplification protocol vectors.
//!
//! The paper's observatories disagree partly because platforms support
//! different protocol vectors (§7.3: "AmpPot observed more targets
//! attacked via CHARGEN while Hopscotch saw more targets attacked via
//! CLDAP"). We model the common UDP vectors with bandwidth amplification
//! factors taken from Rossow's "Amplification Hell" (NDSS 2014) and the
//! later industry disclosures cited by the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A UDP reflection-amplification vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AmpVector {
    Dns,
    Ntp,
    Cldap,
    Ssdp,
    CharGen,
    Qotd,
    Rpc,
    Memcached,
    Snmp,
    NetBios,
    WsDiscovery,
}

impl AmpVector {
    /// All modeled vectors.
    pub const ALL: [AmpVector; 11] = [
        AmpVector::Dns,
        AmpVector::Ntp,
        AmpVector::Cldap,
        AmpVector::Ssdp,
        AmpVector::CharGen,
        AmpVector::Qotd,
        AmpVector::Rpc,
        AmpVector::Memcached,
        AmpVector::Snmp,
        AmpVector::NetBios,
        AmpVector::WsDiscovery,
    ];

    /// Well-known UDP source port of reflected responses. The IXP
    /// blackholing classifier keys on this (Table 2: "UDP, ampl. src
    /// port").
    pub const fn src_port(self) -> u16 {
        match self {
            AmpVector::Dns => 53,
            AmpVector::Ntp => 123,
            AmpVector::Cldap => 389,
            AmpVector::Ssdp => 1900,
            AmpVector::CharGen => 19,
            AmpVector::Qotd => 17,
            AmpVector::Rpc => 111,
            AmpVector::Memcached => 11211,
            AmpVector::Snmp => 161,
            AmpVector::NetBios => 137,
            AmpVector::WsDiscovery => 3702,
        }
    }

    /// Typical bandwidth amplification factor (response bytes per request
    /// byte), midpoints of published ranges.
    pub const fn amplification_factor(self) -> f64 {
        match self {
            AmpVector::Dns => 54.0,
            AmpVector::Ntp => 556.0,
            AmpVector::Cldap => 56.0,
            AmpVector::Ssdp => 30.0,
            AmpVector::CharGen => 358.0,
            AmpVector::Qotd => 140.0,
            AmpVector::Rpc => 28.0,
            AmpVector::Memcached => 10000.0,
            AmpVector::Snmp => 6.3,
            AmpVector::NetBios => 3.8,
            AmpVector::WsDiscovery => 300.0,
        }
    }

    /// Typical reflected response size in bytes (used to convert packet
    /// rates to bit rates).
    pub const fn response_bytes(self) -> u32 {
        match self {
            AmpVector::Dns => 3000,
            AmpVector::Ntp => 440,
            AmpVector::Cldap => 1500,
            AmpVector::Ssdp => 320,
            AmpVector::CharGen => 1024,
            AmpVector::Qotd => 500,
            AmpVector::Rpc => 400,
            AmpVector::Memcached => 1400,
            AmpVector::Snmp => 500,
            AmpVector::NetBios => 300,
            AmpVector::WsDiscovery => 800,
        }
    }

    /// Approximate relative size of the open-reflector population for
    /// this vector (arbitrary units; DNS open resolvers dominate).
    /// Scaled by the plan builder into absolute pool sizes.
    pub const fn reflector_pool_share(self) -> f64 {
        match self {
            AmpVector::Dns => 0.50,
            AmpVector::Ntp => 0.12,
            AmpVector::Cldap => 0.04,
            AmpVector::Ssdp => 0.14,
            AmpVector::CharGen => 0.02,
            AmpVector::Qotd => 0.01,
            AmpVector::Rpc => 0.05,
            AmpVector::Memcached => 0.005,
            AmpVector::Snmp => 0.06,
            AmpVector::NetBios => 0.04,
            AmpVector::WsDiscovery => 0.015,
        }
    }

    /// Short lowercase label used in CSV output.
    pub const fn label(self) -> &'static str {
        match self {
            AmpVector::Dns => "dns",
            AmpVector::Ntp => "ntp",
            AmpVector::Cldap => "cldap",
            AmpVector::Ssdp => "ssdp",
            AmpVector::CharGen => "chargen",
            AmpVector::Qotd => "qotd",
            AmpVector::Rpc => "rpc",
            AmpVector::Memcached => "memcached",
            AmpVector::Snmp => "snmp",
            AmpVector::NetBios => "netbios",
            AmpVector::WsDiscovery => "wsdiscovery",
        }
    }
}

impl fmt::Display for AmpVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Transport protocol of attack traffic as seen on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    Tcp,
    Udp,
    Icmp,
}

impl Transport {
    /// IANA protocol number (used as part of the Corsaro flow key,
    /// Appendix J: "the protocol selects a hashmap").
    pub const fn protocol_number(self) -> u8 {
        match self {
            Transport::Icmp => 1,
            Transport::Tcp => 6,
            Transport::Udp => 17,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vectors_have_unique_ports() {
        let mut ports: Vec<u16> = AmpVector::ALL.iter().map(|v| v.src_port()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), AmpVector::ALL.len());
    }

    #[test]
    fn amplification_factors_positive() {
        for v in AmpVector::ALL {
            assert!(v.amplification_factor() > 1.0, "{v} should amplify");
        }
    }

    #[test]
    fn ntp_amplifies_more_than_dns() {
        // The famous monlist amplification.
        assert!(AmpVector::Ntp.amplification_factor() > AmpVector::Dns.amplification_factor());
    }

    #[test]
    fn pool_shares_sum_to_about_one() {
        let total: f64 = AmpVector::ALL.iter().map(|v| v.reflector_pool_share()).sum();
        assert!((total - 1.0).abs() < 0.05, "total {total}");
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Transport::Tcp.protocol_number(), 6);
        assert_eq!(Transport::Udp.protocol_number(), 17);
        assert_eq!(Transport::Icmp.protocol_number(), 1);
    }

    #[test]
    fn labels_unique_and_lowercase() {
        let mut labels: Vec<&str> = AmpVector::ALL.iter().map(|v| v.label()).collect();
        assert!(labels.iter().all(|l| l.chars().all(|c| c.is_ascii_lowercase())));
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), AmpVector::ALL.len());
    }

    #[test]
    fn well_known_ports() {
        assert_eq!(AmpVector::Dns.src_port(), 53);
        assert_eq!(AmpVector::Ntp.src_port(), 123);
        assert_eq!(AmpVector::Memcached.src_port(), 11211);
    }
}
