//! A binary (Patricia-style, one bit per level) trie for longest-prefix
//! matching.
//!
//! Used for two lookups the paper's methodology depends on:
//!
//! * the **BGP routed-prefix table** consulted by the Appendix-I
//!   carpet-bombing reconstruction ("longest BGP-routed prefix from /11
//!   to /28 that covers the attack"), and
//! * the **RIR allocation table** that the same algorithm must not
//!   aggregate across.
//!
//! Simple one-bit-per-node layout: inserts are O(len), lookups are O(32).
//! The study's tables hold tens of thousands of prefixes, so a compressed
//! trie is unnecessary; robustness and clarity win (cf. the smoltcp
//! design notes on preferring simple, predictable structures).

use crate::ip::{Ipv4, Prefix};

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// Longest-prefix-match table from [`Prefix`] to `T`.
#[derive(Debug, Clone)]
pub struct PrefixTable<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for PrefixTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTable<T> {
    pub fn new() -> Self {
        PrefixTable {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the value for a prefix. Returns the previous
    /// value if the exact prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        let base = prefix.base().0;
        for depth in 0..prefix.len() {
            let bit = ((base >> (31 - depth)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = &self.root;
        let base = prefix.base().0;
        for depth in 0..prefix.len() {
            let bit = ((base >> (31 - depth)) & 1) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match for an address: the most specific stored
    /// prefix containing `ip`, with its value.
    pub fn lookup(&self, ip: Ipv4) -> Option<(Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(Prefix, &T)> = None;
        for depth in 0..=32u8 {
            if let Some(v) = node.value.as_ref() {
                best = Some((Prefix::new(ip, depth), v));
            }
            if depth == 32 {
                break;
            }
            let bit = ((ip.0 >> (31 - depth)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// All stored prefixes containing `ip`, from shortest to longest.
    pub fn matches(&self, ip: Ipv4) -> Vec<(Prefix, &T)> {
        let mut node = &self.root;
        let mut out = Vec::new();
        for depth in 0..=32u8 {
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::new(ip, depth), v));
            }
            if depth == 32 {
                break;
            }
            let bit = ((ip.0 >> (31 - depth)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        out
    }

    /// Iterate over every (prefix, value) pair in lexicographic prefix
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::new();
        collect(&self.root, 0, 0, &mut out);
        out.into_iter()
    }
}

fn collect<'a, T>(node: &'a Node<T>, base: u32, depth: u8, out: &mut Vec<(Prefix, &'a T)>) {
    if let Some(v) = node.value.as_ref() {
        out.push((Prefix::new(Ipv4(base), depth), v));
    }
    if depth == 32 {
        return;
    }
    if let Some(child) = node.children[0].as_deref() {
        collect(child, base, depth + 1, out);
    }
    if let Some(child) = node.children[1].as_deref() {
        collect(child, base + (1u32 << (31 - depth)), depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    #[test]
    fn empty_table() {
        let t: PrefixTable<u32> = PrefixTable::new();
        assert!(t.is_empty());
        assert!(t.lookup(ip("1.2.3.4")).is_none());
        assert!(t.matches(ip("1.2.3.4")).is_empty());
    }

    #[test]
    fn insert_get_replace() {
        let mut t = PrefixTable::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), "coarse");
        t.insert(p("10.5.0.0/16"), "mid");
        t.insert(p("10.5.5.0/24"), "fine");
        assert_eq!(t.lookup(ip("10.5.5.77")).unwrap(), (p("10.5.5.0/24"), &"fine"));
        assert_eq!(t.lookup(ip("10.5.9.1")).unwrap(), (p("10.5.0.0/16"), &"mid"));
        assert_eq!(t.lookup(ip("10.200.0.1")).unwrap(), (p("10.0.0.0/8"), &"coarse"));
        assert!(t.lookup(ip("11.0.0.1")).is_none());
    }

    #[test]
    fn matches_returns_chain() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.5.0.0/16"), 16);
        t.insert(p("10.5.5.0/24"), 24);
        let chain = t.matches(ip("10.5.5.1"));
        assert_eq!(
            chain.iter().map(|(_, v)| **v).collect::<Vec<_>>(),
            vec![8, 16, 24]
        );
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTable::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "ten");
        assert_eq!(t.lookup(ip("1.1.1.1")).unwrap().1, &"default");
        assert_eq!(t.lookup(ip("10.1.1.1")).unwrap().1, &"ten");
    }

    #[test]
    fn host_route() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), 0);
        t.insert(p("10.0.0.1/32"), 1);
        assert_eq!(t.lookup(ip("10.0.0.1")).unwrap(), (p("10.0.0.1/32"), &1));
        assert_eq!(t.lookup(ip("10.0.0.2")).unwrap().1, &0);
    }

    #[test]
    fn iter_lexicographic_and_complete() {
        let mut t = PrefixTable::new();
        let prefixes = ["10.0.0.0/8", "9.0.0.0/8", "10.5.0.0/16", "192.168.0.0/16"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(pfx, _)| pfx).collect();
        assert_eq!(
            got,
            vec![
                p("9.0.0.0/8"),
                p("10.0.0.0/8"),
                p("10.5.0.0/16"),
                p("192.168.0.0/16")
            ]
        );
    }

    #[test]
    fn disjoint_siblings() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/9"), "low");
        t.insert(p("10.128.0.0/9"), "high");
        assert_eq!(t.lookup(ip("10.1.0.0")).unwrap().1, &"low");
        assert_eq!(t.lookup(ip("10.200.0.0")).unwrap().1, &"high");
    }

    #[test]
    fn many_prefixes_stress() {
        let mut t = PrefixTable::new();
        // All /16s under 10.0.0.0/8 plus finer /24s under one of them.
        for i in 0..256u32 {
            t.insert(Prefix::new(Ipv4(10 << 24 | i << 16), 16), i);
        }
        for j in 0..256u32 {
            t.insert(Prefix::new(Ipv4(10 << 24 | 7 << 16 | j << 8), 24), 1000 + j);
        }
        assert_eq!(t.len(), 512);
        assert_eq!(t.lookup(ip("10.9.1.1")).unwrap().1, &9);
        assert_eq!(t.lookup(ip("10.7.200.1")).unwrap().1, &1200);
    }
}
