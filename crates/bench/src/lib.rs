//! `ddoscovery-bench` — the Criterion benchmark harness.
//!
//! Bench binaries:
//! * `experiments` — one `bench_<id>` per paper table/figure plus the
//!   end-to-end pipeline;
//! * `detectors` — hot-path micro-benchmarks (Corsaro ingest, honeypot
//!   flow detection, LPM, correlation matrices, UpSet);
//! * `ablations` — design-choice ablations (event vs packet fidelity,
//!   campaign layering, Appendix-I reconstruction, observatory
//!   fan-out);
//! * `pipeline`, `sweep`, `population` — JSON-emitting perf-trajectory
//!   benches (`make bench-json`) that write `BENCH_<name>.json` at the
//!   workspace root.
//!
//! Run everything with `cargo bench --workspace`.
//!
//! The JSON benches share one output schema: a full
//! [`obs::manifest::RunManifest`] whose gauges/counters carry the bench
//! measurements and whose run identity records the seed, worker count,
//! config fingerprint, and per-stage fingerprints. That makes a bench
//! file a first-class citizen of the run store — `ddoscovery runs diff
//! BENCH_sweep.json <older copy> --gate 50` is the whole `make regress`
//! implementation.

use ddoscovery::{StageFingerprints, StudyConfig};
use obs::manifest::{fnv1a, RunInfo, RunManifest};
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's manifest directory —
/// `cargo bench` runs benches with the *package* directory as cwd, so
/// relative writes would land in `crates/bench/`.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

/// Package a bench result as a run manifest: `benchmark` becomes the
/// scenario label, the config contributes seed / workers / fingerprint
/// / per-stage fingerprints, and the measurements land in the metrics
/// section (counts as counters, rates and timings as gauges).
pub fn bench_manifest(
    benchmark: &str,
    cfg: &StudyConfig,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
) -> RunManifest {
    let config_json =
        serde_json::to_string(cfg).expect("study config serialization is infallible");
    let mut metrics = obs::metrics::MetricsSnapshot::default();
    metrics.counters.extend(counters);
    metrics.gauges.extend(gauges);
    let run = RunInfo {
        scenario: format!("bench-{benchmark}"),
        seed: cfg.seed,
        workers: cfg.workers,
        config_hash: fnv1a(config_json.as_bytes()),
        stages: StageFingerprints::of(cfg).manifest_entries(),
        degraded_weeks: Vec::new(),
    };
    let version = env!("CARGO_PKG_VERSION").to_string();
    let describe = format!("v{}-bench-{:08x}", version, run.config_hash as u32);
    RunManifest {
        schema: obs::manifest::SCHEMA,
        version,
        describe,
        run,
        metrics,
    }
}

/// Median of a sample set (upper median for even counts). Panics on an
/// empty set — a bench with zero reps is a bug, not a data point.
pub fn median(mut samples: Vec<u64>) -> u64 {
    assert!(!samples.is_empty(), "median of zero samples");
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Write `manifest` as `<file_name>` at the workspace root, returning
/// the absolute path.
pub fn write_bench_manifest(file_name: &str, manifest: &RunManifest) -> PathBuf {
    let path = workspace_root().join(file_name);
    std::fs::write(&path, manifest.to_json())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_manifests_round_trip_through_the_store_parser() {
        let cfg = StudyConfig::quick();
        let m = bench_manifest(
            "unit",
            &cfg,
            vec![("attacks".into(), 42)],
            vec![("generate_median_ns".into(), 1.5e6)],
        );
        assert_eq!(m.run.scenario, "bench-unit");
        assert_eq!(m.run.seed, cfg.seed);
        assert!(!m.run.stages.is_empty(), "stage fingerprints recorded");
        let back = RunManifest::from_json(&m.to_json()).expect("store parser accepts bench JSON");
        assert_eq!(back.metrics.counters["attacks"], 42);
        assert_eq!(back.run.config_hash, m.run.config_hash);
    }

    #[test]
    fn workspace_root_is_the_repo_checkout() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }
}
