//! `ddoscovery-bench` — the Criterion benchmark harness.
//!
//! Three bench binaries:
//! * `experiments` — one `bench_<id>` per paper table/figure plus the
//!   end-to-end pipeline;
//! * `detectors` — hot-path micro-benchmarks (Corsaro ingest, honeypot
//!   flow detection, LPM, correlation matrices, UpSet);
//! * `ablations` — design-choice ablations (event vs packet fidelity,
//!   campaign layering, Appendix-I reconstruction, observatory
//!   fan-out).
//!
//! Run everything with `cargo bench --workspace`.
