//! Micro-benchmarks of the detection and analytics hot paths: Corsaro
//! packet ingestion, honeypot flow detection, LPM lookups, correlation
//! matrices and the UpSet join.

use attackgen::PacketEvent;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use honeypot::{HoneypotConfig, HoneypotDetector};
use netmodel::{AmpVector, InternetPlan, Ipv4, NetScale, Prefix, PrefixTable, Transport};
use simcore::{SimRng, SimTime};
use std::hint::black_box;
use telescope::{RsdosConfig, RsdosDetector};

fn plan() -> InternetPlan {
    let mut rng = SimRng::new(1);
    InternetPlan::build(&NetScale::tiny(), &mut rng)
}

/// A mixed backscatter stream: 200 sources, Poisson-ish arrival.
fn backscatter_stream(n: usize) -> Vec<PacketEvent> {
    let mut rng = SimRng::new(2);
    let mut out = Vec::with_capacity(n);
    let mut t = 0i64;
    for _ in 0..n {
        t += rng.u64_below(3) as i64;
        out.push(PacketEvent {
            time: SimTime(t),
            src: Ipv4(1000 + rng.u64_below(200) as u32),
            src_port: 80,
            dst: Ipv4(0x2C00_0000 + rng.next_u32() % 4096),
            dst_port: 50_000,
            transport: Transport::Tcp,
            size_bytes: 60,
        });
    }
    out
}

fn bench_corsaro(c: &mut Criterion) {
    let stream = backscatter_stream(100_000);
    let mut group = c.benchmark_group("corsaro");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("ingest_100k_packets", |b| {
        b.iter(|| {
            let mut det = RsdosDetector::new(RsdosConfig::default());
            for p in &stream {
                det.ingest(black_box(p));
            }
            black_box(det.finish().len())
        })
    });
    group.finish();
}

fn bench_honeypot_detector(c: &mut Criterion) {
    let plan = plan();
    let cfg = HoneypotConfig::hopscotch(&plan);
    let sensor = cfg.sensors[0];
    let mut rng = SimRng::new(3);
    let stream: Vec<PacketEvent> = (0..100_000)
        .map(|i| PacketEvent {
            time: SimTime(i / 50),
            src: Ipv4(5000 + rng.u64_below(500) as u32),
            src_port: 55_555,
            dst: sensor,
            dst_port: AmpVector::Dns.src_port(),
            transport: Transport::Udp,
            size_bytes: 64,
        })
        .collect();
    let mut group = c.benchmark_group("honeypot");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("hopscotch_ingest_100k", |b| {
        b.iter(|| {
            let mut det = HoneypotDetector::new(cfg.clone());
            for p in &stream {
                det.ingest(black_box(p));
            }
            black_box(det.finish().len())
        })
    });
    group.finish();
}

fn bench_lpm(c: &mut Criterion) {
    let plan = plan();
    let mut rng = SimRng::new(4);
    let probes: Vec<Ipv4> = (0..10_000).map(|_| Ipv4(rng.next_u32())).collect();
    let mut group = c.benchmark_group("lpm");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("trie_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &ip in &probes {
                hits += plan.routed.lookup(black_box(ip)).is_some() as usize;
            }
            black_box(hits)
        })
    });
    // Ablation reference: linear scan over the same table.
    let entries: Vec<(Prefix, netmodel::Asn)> =
        plan.routed.iter().map(|(p, a)| (p, *a)).collect();
    group.bench_function("linear_scan_10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &ip in &probes {
                hits += entries
                    .iter()
                    .filter(|(p, _)| p.contains(ip))
                    .max_by_key(|(p, _)| p.len())
                    .is_some() as usize;
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let mut rng = SimRng::new(5);
    let series: Vec<analytics::WeeklySeries> = (0..10)
        .map(|i| {
            analytics::WeeklySeries::new(
                format!("s{i}"),
                (0..simcore::STUDY_WEEKS).map(|_| rng.f64() * 100.0).collect(),
            )
        })
        .collect();
    let mut group = c.benchmark_group("analytics");
    group.bench_function("spearman_matrix_10x235", |b| {
        b.iter(|| {
            let m = analytics::correlation_matrix(black_box(&series), analytics::Method::Spearman);
            black_box(m.cells.len())
        })
    });
    let sets: Vec<(String, Vec<analytics::TargetTuple>)> = (0..4)
        .map(|i| {
            let tuples: Vec<analytics::TargetTuple> = (0..100_000)
                .map(|_| (rng.u64_below(1642) as i64, Ipv4(rng.u64_below(200_000) as u32)))
                .collect();
            (format!("set{i}"), tuples)
        })
        .collect();
    group.bench_function("upset_4x100k_tuples", |b| {
        b.iter(|| {
            let u = analytics::upset(black_box(&sets));
            black_box(u.total_distinct)
        })
    });
    group.finish();
}

fn bench_trie_build(c: &mut Criterion) {
    let mut rng = SimRng::new(6);
    let prefixes: Vec<(Prefix, u32)> = (0..20_000)
        .map(|i| {
            let len = 8 + rng.u64_below(17) as u8;
            (Prefix::new(Ipv4(rng.next_u32()), len), i)
        })
        .collect();
    let mut group = c.benchmark_group("trie");
    group.throughput(Throughput::Elements(prefixes.len() as u64));
    group.bench_function("insert_20k_prefixes", |b| {
        b.iter(|| {
            let mut t = PrefixTable::new();
            for &(p, v) in &prefixes {
                t.insert(black_box(p), v);
            }
            black_box(t.len())
        })
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    use attackgen::{BooterMarket, BooterMarketParams, SavModel, SavParams};
    let plan = plan();
    let mut group = c.benchmark_group("substrates");
    group.bench_function("sav_model_build", |b| {
        b.iter(|| {
            let m = SavModel::build(&plan, SavParams::default(), &SimRng::new(7));
            black_box(m.as_count())
        })
    });
    group.bench_function("booter_market_235_weeks", |b| {
        b.iter(|| {
            let m = BooterMarket::simulate(BooterMarketParams::default(), &SimRng::new(7));
            black_box(m.capacity_at_week(200))
        })
    });
    let series = analytics::WeeklySeries::new(
        "x",
        (0..simcore::STUDY_WEEKS)
            .map(|i| 10.0 + 0.02 * i as f64 + ((i * 7) % 13) as f64)
            .collect(),
    );
    group.bench_function("bootstrap_400_replicates", |b| {
        b.iter(|| {
            let iv = analytics::trend_interval(&series, 8, 400, &mut SimRng::new(3));
            black_box(iv)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_corsaro,
    bench_honeypot_detector,
    bench_lpm,
    bench_analytics,
    bench_trie_build,
    bench_substrates
);
criterion_main!(benches);
