//! One Criterion benchmark per paper table/figure: each bench times the
//! regeneration of that artifact from a completed study run (the run
//! itself is shared setup), plus a bench for the end-to-end pipeline.
//!
//! These are the DESIGN.md "bench target per experiment" entries:
//! bench_table1 … bench_fig14, bench_stats7, bench_detval and
//! bench_pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ddoscovery::{all_ids, run_experiment, StudyConfig, StudyRun};
use std::hint::black_box;
use std::sync::OnceLock;

fn shared_run() -> &'static StudyRun {
    static RUN: OnceLock<StudyRun> = OnceLock::new();
    RUN.get_or_init(|| StudyRun::execute(&StudyConfig::quick()))
}

fn bench_experiments(c: &mut Criterion) {
    let run = shared_run();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for id in all_ids() {
        group.bench_function(format!("bench_{id}"), |b| {
            b.iter(|| {
                let result = run_experiment(black_box(run), id).unwrap();
                black_box(result.body.len())
            })
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    // End-to-end: internet + attacks + all observatories.
    group.bench_function("full_quick_study", |b| {
        b.iter(|| {
            let run = StudyRun::execute(black_box(&StudyConfig::quick()));
            black_box(run.attacks.len())
        })
    });
    // Aggregation only.
    let run = shared_run();
    group.bench_function("weekly_series_all_ten", |b| {
        b.iter(|| {
            let series = run.all_ten_normalized();
            black_box(series.len())
        })
    });
    group.bench_function("target_tuples_hopscotch", |b| {
        b.iter(|| black_box(run.target_tuples(ddoscovery::ObsId::Hopscotch).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments, bench_pipeline);
criterion_main!(benches);
