//! Cross-process warm-start benchmark for the persistent stage store
//! (DESIGN.md §11): times the observation-parameter sweep run the way
//! a shell loop runs it — one process per grid point, emulated by
//! clearing the in-memory stage cache before every point — first with
//! no disk store (cold: every point regenerates the plan, the attack
//! population, and all observation streams) and then against a primed
//! store (warm: every stage loads from checksummed cells). Writes the
//! medians, the speedup, and the disk-tier counter deltas as a run
//! manifest to `BENCH_store.json` at the workspace root (diffable via
//! `ddoscovery runs diff`).
//!
//! Plain `main` (harness = false): the phases need exclusive control
//! over the process-global stage cache and counters.

use ddoscovery::stagecache::StageCache;
use ddoscovery::{ObsId, StudyConfig, StudyRun};
use ddoscovery_bench::{bench_manifest, median, write_bench_manifest};

/// Same observation-side grid as the sweep bench: per-point
/// `obs.carpet_gap_secs` values, each standing in for one CLI
/// invocation of a parameter study.
const GRID: [f64; 6] = [600.0, 1200.0, 1800.0, 2400.0, 3000.0, 4200.0];
const REPS: usize = 5;

fn base(disk_store: Option<String>) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = 0xBE_5EED;
    cfg.gen.timeline.dp_base_per_week = 25.0;
    cfg.gen.timeline.ra_base_per_week = 40.0;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg.missing_data = false;
    cfg.stage_cache = Some(512);
    // `Some("off")` pins the cold phase off even if DDOSCOVERY_STORE is
    // set in the environment; stage keys ignore execution fields, so
    // both phases share fingerprints.
    cfg.disk_store = disk_store.or_else(|| Some("off".into()));
    cfg
}

/// One pass over the grid, one emulated process per point: the
/// in-memory tier is cleared before each run, so every stage either
/// recomputes (cold) or loads from the store (warm). Touches the two
/// swept projections so per-point work matches the sweep bench.
/// Returns elapsed nanoseconds for the whole pass.
fn timed_grid_pass(cfg: &StudyConfig) -> u64 {
    let watch = obs::Stopwatch::start();
    for gap in GRID {
        StageCache::global().clear();
        let mut point = cfg.clone();
        point.obs.carpet_gap_secs = gap as u32;
        let run = StudyRun::execute(&point);
        for id in [ObsId::Hopscotch, ObsId::AmpPot] {
            assert!(!run.weekly_series(id).values.is_empty());
        }
    }
    watch.elapsed_ns()
}

/// Cumulative disk-tier counters summed across the three stages:
/// `[hit, miss, write, reject]`.
fn disk_counters() -> [u64; 4] {
    ["disk_hit", "disk_miss", "disk_write", "disk_reject"].map(|kind| {
        ["plan", "attacks", "observations"]
            .iter()
            .map(|stage| obs::metrics::counter(&format!("stage.{stage}.{kind}")).get())
            .sum()
    })
}

fn main() {
    let dir = std::env::temp_dir().join(format!("ddoscovery-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold: no disk tier — every emulated process recomputes the world.
    let cold_cfg = base(None);
    let cold: Vec<u64> = (0..REPS).map(|_| timed_grid_pass(&cold_cfg)).collect();

    // Warm: prime the store once, then measure fresh processes served
    // entirely from checksummed cells.
    let warm_cfg = base(Some(dir.display().to_string()));
    let _prime = timed_grid_pass(&warm_cfg);
    let before = disk_counters();
    let warm: Vec<u64> = (0..REPS).map(|_| timed_grid_pass(&warm_cfg)).collect();
    let [hit, miss, write, reject] = {
        let after = disk_counters();
        std::array::from_fn(|i| after[i] - before[i])
    };
    assert!(hit > 0, "warm phase never touched the store");
    assert_eq!(reject, 0, "primed cells must load cleanly");

    let points = GRID.len() as u64;
    let cold_ns_per_point = median(cold) / points;
    let warm_ns_per_point = median(warm) / points;
    let speedup = cold_ns_per_point as f64 / warm_ns_per_point.max(1) as f64;

    let manifest = bench_manifest(
        "store",
        &warm_cfg,
        vec![
            ("grid_points".into(), points),
            ("reps".into(), REPS as u64),
            ("warm_disk_hits".into(), hit),
            ("warm_disk_misses".into(), miss),
            ("warm_disk_writes".into(), write),
            ("warm_disk_rejects".into(), reject),
        ],
        vec![
            ("cold_median_ns_per_point".into(), cold_ns_per_point as f64),
            ("warm_median_ns_per_point".into(), warm_ns_per_point as f64),
            ("store_speedup".into(), speedup),
        ],
    );
    let path = write_bench_manifest("BENCH_store.json", &manifest);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "store: cold {cold_ns_per_point} ns/point, warm {warm_ns_per_point} ns/point \
         ({speedup:.1}x) -> {}",
        path.display()
    );
}
