//! Query-service benchmark (DESIGN.md §12): boots the study service
//! cold (no disk store) and warm (primed store), measures request
//! throughput against each over real sockets, then measures the shed
//! rate when offered load is twice the admission capacity. Writes
//! `BENCH_http.json` at the workspace root (diffable via `ddoscovery
//! runs diff`).
//!
//! Plain `main` (harness = false): the phases need exclusive control
//! over the process-global stage cache and `http.*` counters.

use ddoscovery::stagecache::StageCache;
use ddoscovery::{StudyConfig, StudyRun, StudyService};
use ddoscovery_bench::{bench_manifest, write_bench_manifest};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 64;
const SHED_ROUNDS: usize = 3;

fn base(disk_store: Option<String>) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = 0x5E7_E5EED;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg.missing_data = false;
    cfg.stage_cache = Some(512);
    cfg.disk_store = disk_store.or_else(|| Some("off".into()));
    cfg
}

/// One request per connection, the way the service works. Returns the
/// raw response (empty if the peer never answered).
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send request");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn bind(service: Arc<StudyService>, workers: usize, queue_depth: usize) -> serve::Server {
    let server = serve::Server::bind(
        serve::ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_depth,
            read_timeout_ms: 400,
            ..serve::ServeConfig::default()
        },
        service.clone(),
    )
    .expect("bind bench server");
    service.attach_shutdown(server.shutdown_handle());
    server
}

/// Boot the study (timed), then drive `CLIENT_THREADS *
/// REQUESTS_PER_THREAD` requests through a served instance (timed).
/// Returns (boot_ns, serve_ns, requests).
fn boot_and_drive(cfg: &StudyConfig) -> (u64, u64, u64) {
    StageCache::global().clear();
    let boot = obs::Stopwatch::start();
    let run = StudyRun::execute(cfg);
    let boot_ns = boot.elapsed_ns();

    let service = Arc::new(StudyService::new(run, cfg, "bench"));
    let server = bind(service, 4, 64);
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let join = thread::spawn(move || server.run());

    let watch = obs::Stopwatch::start();
    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    let raw = if (t + i) % 2 == 0 {
                        roundtrip(addr, b"GET /v1/trends HTTP/1.1\r\n\r\n")
                    } else {
                        roundtrip(addr, b"GET /v1/series/hopscotch HTTP/1.1\r\n\r\n")
                    };
                    assert!(raw.starts_with("HTTP/1.1 200 "), "bench request failed");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("bench client");
    }
    let serve_ns = watch.elapsed_ns();
    shutdown.shutdown();
    assert!(join.join().expect("server thread").drained);
    (boot_ns, serve_ns, (CLIENT_THREADS * REQUESTS_PER_THREAD) as u64)
}

/// Park the whole pool (workers + queue) behind stalled request heads,
/// then offer a burst of twice that capacity; the overflow must shed.
/// Returns (shed, offered) summed over `SHED_ROUNDS`.
fn shed_at_twice_capacity(cfg: &StudyConfig) -> (u64, u64) {
    let run = StudyRun::execute(cfg);
    let service = Arc::new(StudyService::new(run, cfg, "bench"));
    let (workers, queue_depth) = (2, 2);
    let capacity = workers + queue_depth;
    let server = bind(service, workers, queue_depth);
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let join = thread::spawn(move || server.run());

    let (mut shed, mut offered) = (0u64, 0u64);
    for _ in 0..SHED_ROUNDS {
        let stalled: Vec<TcpStream> = (0..capacity)
            .map(|_| {
                let mut stream = TcpStream::connect(addr).expect("connect staller");
                stream.write_all(b"GET /stall HT").expect("partial head");
                stream
            })
            .collect();
        thread::sleep(Duration::from_millis(50)); // let workers park
        let burst: Vec<_> = (0..2 * capacity)
            .map(|_| thread::spawn(move || roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n")))
            .collect();
        for client in burst {
            let raw = client.join().expect("burst client");
            offered += 1;
            if raw.starts_with("HTTP/1.1 503 ") {
                shed += 1;
            }
        }
        drop(stalled);
        thread::sleep(Duration::from_millis(100)); // stalled heads time out
    }
    shutdown.shutdown();
    assert!(join.join().expect("server thread").drained);
    (shed, offered)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("ddoscovery-bench-http-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold: no disk store — the boot recomputes the study.
    let cold_cfg = base(None);
    let (cold_boot_ns, cold_serve_ns, requests) = boot_and_drive(&cold_cfg);

    // Warm: prime the store, then boot a fresh emulated process from
    // checksummed cells.
    let warm_cfg = base(Some(dir.display().to_string()));
    {
        StageCache::global().clear();
        let _prime = StudyRun::execute(&warm_cfg);
    }
    let (warm_boot_ns, warm_serve_ns, _) = boot_and_drive(&warm_cfg);

    let (shed, offered) = shed_at_twice_capacity(&warm_cfg);
    let shed_rate = shed as f64 / offered.max(1) as f64;

    let per_sec = |serve_ns: u64| requests as f64 * 1e9 / serve_ns.max(1) as f64;
    let cold_req_s = per_sec(cold_serve_ns);
    let warm_req_s = per_sec(warm_serve_ns);
    let boot_speedup = cold_boot_ns as f64 / warm_boot_ns.max(1) as f64;

    let manifest = bench_manifest(
        "http",
        &warm_cfg,
        vec![
            ("requests_per_phase".into(), requests),
            ("shed_offered".into(), offered),
            ("shed_count".into(), shed),
            ("served_total".into(), obs::metrics::counter("http.served").get()),
            ("shed_total".into(), obs::metrics::counter("http.shed").get()),
        ],
        vec![
            ("cold_boot_ns".into(), cold_boot_ns as f64),
            ("warm_boot_ns".into(), warm_boot_ns as f64),
            ("warm_boot_speedup".into(), boot_speedup),
            ("cold_reqs_per_sec".into(), cold_req_s),
            ("warm_reqs_per_sec".into(), warm_req_s),
            ("shed_rate_at_2x".into(), shed_rate),
        ],
    );
    let path = write_bench_manifest("BENCH_http.json", &manifest);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "http: boot cold {cold_boot_ns} ns / warm {warm_boot_ns} ns ({boot_speedup:.1}x), \
         {warm_req_s:.0} req/s warm, shed rate {shed_rate:.2} at 2x capacity -> {}",
        path.display()
    );
}
