//! Columnar population throughput benchmark (DESIGN.md §9): measures
//! attacks/sec for the three pipeline stages — generate (columnar
//! population build), observe (the eight observatories over the shared
//! target arena), and project (weekly series + distinct target tuples)
//! — at the 1M and 10M attack scales, and writes the results as a run
//! manifest to `BENCH_population.json` at the workspace root (diffable
//! via `ddoscovery runs diff` — see `make regress`).
//!
//! Plain `main` (harness = false): a 10M-attack run is a single
//! long-form measurement, not a Criterion sample loop, and the stages
//! share one process-global pool and metrics registry.
//!
//! Memory (peak RSS, bytes/attack) is deliberately *not* measured here:
//! `VmHWM` is monotone per process, so a multi-scale bench would report
//! the largest scale's peak for every earlier phase. Per-stage peaks
//! come from `examples/scale_probe.rs` (one process per stage/scale;
//! see `make scale`).

use attackgen::AttackGenerator;
use ddoscovery::{ObsId, StudyConfig, StudyRun};
use ddoscovery_bench::{bench_manifest, write_bench_manifest};
use netmodel::InternetPlan;
use simcore::{ExecPool, SimRng};

/// Approximate attack volume of `StudyConfig::paper()`, used to scale
/// the per-week base rates toward the requested target.
const PAPER_VOLUME: f64 = 600_000.0;

const SCALES: [(u64, &str); 2] = [(1_000_000, "1M"), (10_000_000, "10M")];

fn config(target: f64) -> StudyConfig {
    let mut cfg = StudyConfig::paper();
    cfg.seed = 0x5CA1_AB1E;
    let scale = (target / PAPER_VOLUME).max(0.01);
    cfg.gen.timeline.dp_base_per_week *= scale;
    cfg.gen.timeline.ra_base_per_week *= scale;
    // One cold measured run per scale: no cross-run reuse, no gaps.
    cfg.stage_cache = Some(0);
    cfg.missing_data = false;
    cfg
}

struct ScaleResult {
    label: &'static str,
    attacks: u64,
    observations: u64,
    cells: u64,
    generate_aps: f64,
    observe_aps: f64,
    project_aps: f64,
}

/// One cold measurement at a given target scale. The generator is
/// deterministic for a fixed config, so the standalone generate timing
/// matches the generate phase inside `execute_on`; observe time is the
/// full execute wall time minus that generate time.
fn probe(target: u64, label: &'static str) -> ScaleResult {
    let cfg = config(target as f64);
    let pool = ExecPool::global();

    // Generate: columnar population build, timed in isolation.
    let root = SimRng::new(cfg.seed);
    let mut plan_rng = root.fork_named("plan");
    let plan = InternetPlan::build(&cfg.net, &mut plan_rng);
    let watch = obs::Stopwatch::start();
    let attacks =
        AttackGenerator::new(&plan, cfg.gen.clone(), &root).generate_study_on(&pool);
    let generate_ns = watch.elapsed_ns();
    let n = attacks.len() as u64;
    drop(attacks);
    drop(plan);

    // Observe: full execute (generate + observe) minus the generate
    // time measured above on the identical deterministic workload.
    let watch = obs::Stopwatch::start();
    let run = StudyRun::execute_on(&cfg, &pool);
    let execute_ns = watch.elapsed_ns();
    let observe_ns = execute_ns.saturating_sub(generate_ns).max(1);
    let observations: u64 = ObsId::ALL
        .iter()
        .map(|&id| run.observations(id).len() as u64)
        .sum();

    // Project: every weekly series + distinct-tuple projection.
    let watch = obs::Stopwatch::start();
    let mut cells = 0u64;
    for &id in &ObsId::ALL {
        cells += run.weekly_series(id).values.len() as u64;
        cells += run.target_tuples(id).len() as u64;
    }
    cells += run.netscout_baseline_tuples().len() as u64;
    cells += run.akamai_tuples().len() as u64;
    let project_ns = watch.elapsed_ns().max(1);

    let aps = |ns: u64| n as f64 * 1e9 / ns as f64;
    ScaleResult {
        label,
        attacks: n,
        observations,
        cells,
        generate_aps: aps(generate_ns.max(1)),
        observe_aps: aps(observe_ns),
        project_aps: aps(project_ns),
    }
}

fn main() {
    let results: Vec<ScaleResult> = SCALES
        .iter()
        .map(|&(target, label)| {
            let r = probe(target, label);
            println!(
                "population {label}: {} attacks — generate {:.0}/s, observe {:.0}/s, \
                 project {:.0}/s ({} observations, {} cells)",
                r.attacks, r.generate_aps, r.observe_aps, r.project_aps, r.observations, r.cells
            );
            r
        })
        .collect();

    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    for r in &results {
        counters.push((format!("attacks.{}", r.label), r.attacks));
        counters.push((format!("observations.{}", r.label), r.observations));
        counters.push((format!("projection_cells.{}", r.label), r.cells));
        gauges.push((format!("generate_attacks_per_sec.{}", r.label), r.generate_aps));
        gauges.push((format!("observe_attacks_per_sec.{}", r.label), r.observe_aps));
        gauges.push((format!("project_attacks_per_sec.{}", r.label), r.project_aps));
    }

    // The manifest identity is the largest scale's config: both scales
    // share the seed, and 10M is the one a regression would hurt most.
    let (largest, _) = SCALES[SCALES.len() - 1];
    let manifest = bench_manifest("population", &config(largest as f64), counters, gauges);
    let path = write_bench_manifest("BENCH_population.json", &manifest);
    println!("population: wrote {}", path.display());
}
