//! Cached-vs-cold sweep benchmark (DESIGN.md §7): times an
//! observation-parameter sweep with the cross-run stage cache bypassed
//! (cold — every grid point rebuilds the plan and regenerates attacks)
//! against the same sweep served from a primed cache (warm — only the
//! observation stage runs, and repeat grids are pure hits), and writes
//! the medians plus stage hit rates to `BENCH_sweep.json`.
//!
//! Plain `main` (harness = false): the cold/warm phases need exclusive
//! control over the process-global stage cache and counters, which the
//! Criterion group layout doesn't guarantee.

use ddoscovery::stagecache::{Stage, StageCache, StageStats};
use ddoscovery::sweep::sweep;
use ddoscovery::{ObsId, StudyConfig};

/// Observation-side grid: `obs.carpet_gap_secs` values. Swept on the
/// observation stage only, so a warm cache skips plan + generation at
/// every point.
const GRID: [f64; 6] = [600.0, 1200.0, 1800.0, 2400.0, 3000.0, 4200.0];
const REPS: usize = 5;

fn base(stage_cache: usize) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = 0xBE_5EED;
    cfg.gen.timeline.dp_base_per_week = 25.0;
    cfg.gen.timeline.ra_base_per_week = 40.0;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg.missing_data = false;
    cfg.stage_cache = Some(stage_cache);
    cfg
}

/// One full sweep over the grid; returns elapsed nanoseconds.
fn timed_sweep(cfg: &StudyConfig) -> u64 {
    let watch = obs::Stopwatch::start();
    let report = sweep(cfg, &GRID, &[ObsId::Hopscotch, ObsId::AmpPot], |c, v| {
        c.obs.carpet_gap_secs = v as u32;
    })
    .expect("bench base config is valid");
    assert_eq!(report.outcomes.len(), GRID.len() * 2);
    watch.elapsed_ns()
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn stats() -> [(Stage, StageStats); 3] {
    let cache = StageCache::global();
    [Stage::Plan, Stage::Attacks, Stage::Observations].map(|s| (s, cache.stats(s)))
}

fn main() {
    // Cold: cache bypassed — every grid point recomputes all stages.
    let cold_cfg = base(0);
    let cold: Vec<u64> = (0..REPS).map(|_| timed_sweep(&cold_cfg)).collect();

    // Warm: prime the cache with one sweep, then measure sweeps served
    // from it (plan + attacks + observations are all hits).
    let warm_cfg = base(512);
    let _prime = timed_sweep(&warm_cfg);
    let before = stats();
    let warm: Vec<u64> = (0..REPS).map(|_| timed_sweep(&warm_cfg)).collect();
    let after = stats();

    let points = GRID.len() as u64;
    let cold_ns_per_point = median(cold) / points;
    let warm_ns_per_point = median(warm) / points;
    let speedup = cold_ns_per_point as f64 / warm_ns_per_point.max(1) as f64;

    let hit_rates: Vec<(String, f64)> = before
        .iter()
        .zip(after.iter())
        .map(|((stage, b), (_, a))| {
            let hit = a.hit - b.hit;
            let computed = a.computed - b.computed;
            let rate = if hit + computed == 0 {
                1.0
            } else {
                hit as f64 / (hit + computed) as f64
            };
            (stage.name().to_string(), rate)
        })
        .collect();

    let json = serde_json::to_string_pretty(&serde::Value::Object(vec![
        ("benchmark".into(), serde::Value::Str("sweep_cached_vs_cold".into())),
        ("grid_points".into(), serde::Value::UInt(points)),
        ("reps".into(), serde::Value::UInt(REPS as u64)),
        ("cold_median_ns_per_point".into(), serde::Value::UInt(cold_ns_per_point)),
        ("warm_median_ns_per_point".into(), serde::Value::UInt(warm_ns_per_point)),
        ("speedup".into(), serde::Value::Float(speedup)),
        (
            "warm_hit_rates".into(),
            serde::Value::Object(
                hit_rates
                    .into_iter()
                    .map(|(name, rate)| (name, serde::Value::Float(rate)))
                    .collect(),
            ),
        ),
    ]))
    .expect("bench summary serialization is infallible");

    std::fs::write("BENCH_sweep.json", &json).expect("cannot write BENCH_sweep.json");
    println!("{json}");
    println!(
        "sweep: cold {cold_ns_per_point} ns/point, warm {warm_ns_per_point} ns/point \
         ({speedup:.1}x) -> BENCH_sweep.json"
    );
}
