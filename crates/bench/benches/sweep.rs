//! Cached-vs-cold sweep benchmark (DESIGN.md §7): times an
//! observation-parameter sweep with the cross-run stage cache bypassed
//! (cold — every grid point rebuilds the plan and regenerates attacks)
//! against the same sweep served from a primed cache (warm — only the
//! observation stage runs, and repeat grids are pure hits), and writes
//! the medians plus stage hit rates as a run manifest to
//! `BENCH_sweep.json` at the workspace root (diffable via
//! `ddoscovery runs diff` — see `make regress`).
//!
//! Plain `main` (harness = false): the cold/warm phases need exclusive
//! control over the process-global stage cache and counters, which the
//! Criterion group layout doesn't guarantee.

use ddoscovery::stagecache::{Stage, StageCache, StageStats};
use ddoscovery::sweep::sweep;
use ddoscovery::{ObsId, StudyConfig};
use ddoscovery_bench::{bench_manifest, median, write_bench_manifest};

/// Observation-side grid: `obs.carpet_gap_secs` values. Swept on the
/// observation stage only, so a warm cache skips plan + generation at
/// every point.
const GRID: [f64; 6] = [600.0, 1200.0, 1800.0, 2400.0, 3000.0, 4200.0];
const REPS: usize = 5;

fn base(stage_cache: usize) -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.seed = 0xBE_5EED;
    cfg.gen.timeline.dp_base_per_week = 25.0;
    cfg.gen.timeline.ra_base_per_week = 40.0;
    cfg.gen.random_campaign_count = 0;
    cfg.gen.campaign_rate_scale = 0.0;
    cfg.missing_data = false;
    cfg.stage_cache = Some(stage_cache);
    cfg
}

/// One full sweep over the grid; returns elapsed nanoseconds.
fn timed_sweep(cfg: &StudyConfig) -> u64 {
    let watch = obs::Stopwatch::start();
    let report = sweep(cfg, &GRID, &[ObsId::Hopscotch, ObsId::AmpPot], |c, v| {
        c.obs.carpet_gap_secs = v as u32;
    })
    .expect("bench base config is valid");
    assert_eq!(report.outcomes.len(), GRID.len() * 2);
    watch.elapsed_ns()
}

fn stats() -> [(Stage, StageStats); 3] {
    let cache = StageCache::global();
    [Stage::Plan, Stage::Attacks, Stage::Observations].map(|s| (s, cache.stats(s)))
}

fn main() {
    // Cold: cache bypassed — every grid point recomputes all stages.
    let cold_cfg = base(0);
    let cold: Vec<u64> = (0..REPS).map(|_| timed_sweep(&cold_cfg)).collect();

    // Warm: prime the cache with one sweep, then measure sweeps served
    // from it (plan + attacks + observations are all hits).
    let warm_cfg = base(512);
    let _prime = timed_sweep(&warm_cfg);
    let before = stats();
    let warm: Vec<u64> = (0..REPS).map(|_| timed_sweep(&warm_cfg)).collect();
    let after = stats();

    let points = GRID.len() as u64;
    let cold_ns_per_point = median(cold) / points;
    let warm_ns_per_point = median(warm) / points;
    let speedup = cold_ns_per_point as f64 / warm_ns_per_point.max(1) as f64;

    let hit_rates: Vec<(String, f64)> = before
        .iter()
        .zip(after.iter())
        .map(|((stage, b), (_, a))| {
            let hit = a.hit - b.hit;
            let computed = a.computed - b.computed;
            let rate = if hit + computed == 0 {
                1.0
            } else {
                hit as f64 / (hit + computed) as f64
            };
            (stage.name().to_string(), rate)
        })
        .collect();

    let mut gauges = vec![
        ("cold_median_ns_per_point".to_string(), cold_ns_per_point as f64),
        ("warm_median_ns_per_point".to_string(), warm_ns_per_point as f64),
        ("cache_speedup".to_string(), speedup),
    ];
    gauges.extend(
        hit_rates
            .into_iter()
            .map(|(name, rate)| (format!("warm_hit_rate.{name}"), rate)),
    );
    // The manifest identity is the *warm* config — its fingerprint is
    // what the cache keys on; the cold config differs only in bound.
    let manifest = bench_manifest(
        "sweep",
        &warm_cfg,
        vec![
            ("grid_points".into(), points),
            ("reps".into(), REPS as u64),
        ],
        gauges,
    );
    let path = write_bench_manifest("BENCH_sweep.json", &manifest);
    println!(
        "sweep: cold {cold_ns_per_point} ns/point, warm {warm_ns_per_point} ns/point \
         ({speedup:.1}x) -> {}",
        path.display()
    );
}
