//! End-to-end pipeline benches at `StudyConfig::quick()` scale:
//! generate → observe → project, plus the full `StudyRun::execute`
//! under different worker counts. These are the numbers behind the
//! execution-engine speedup claims in DESIGN.md §4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ddoscovery::pipeline::{ObsId, StudyRun};
use ddoscovery::scenario::StudyConfig;
use attackgen::AttackGenerator;
use netmodel::InternetPlan;
use simcore::{ExecPool, SimRng};
use std::hint::black_box;

fn quick_cfg() -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    // These groups measure real recomputation; the cross-run stage
    // cache has its own cached-vs-cold benchmark (benches/sweep.rs).
    cfg.stage_cache = Some(0);
    cfg
}

fn bench_generate(c: &mut Criterion) {
    let cfg = quick_cfg();
    let root = SimRng::new(cfg.seed);
    let mut plan_rng = root.fork_named("plan");
    let plan = InternetPlan::build(&cfg.net, &mut plan_rng);
    let gen = AttackGenerator::new(&plan, cfg.gen.clone(), &root);
    let mut group = c.benchmark_group("pipeline_generate");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(gen.generate_study_on(&ExecPool::serial()).len()))
    });
    group.bench_function("pooled", |b| {
        b.iter(|| black_box(gen.generate_study_on(&ExecPool::global()).len()))
    });
    group.finish();
}

fn bench_observe(c: &mut Criterion) {
    let cfg = quick_cfg();
    let mut group = c.benchmark_group("pipeline_observe");
    group.sample_size(10);
    group.bench_function("execute_1_worker", |b| {
        b.iter(|| {
            let run = StudyRun::execute_on(&cfg, &ExecPool::serial());
            black_box(run.attacks.len())
        })
    });
    group.bench_function("execute_pooled", |b| {
        b.iter(|| {
            let run = StudyRun::execute_on(&cfg, &ExecPool::global());
            black_box(run.attacks.len())
        })
    });
    group.finish();
}

fn bench_project(c: &mut Criterion) {
    let cfg = quick_cfg();
    let run = StudyRun::execute(&cfg);
    let total: usize = ObsId::ALL.iter().map(|&id| run.observations(id).len()).sum();
    let mut group = c.benchmark_group("pipeline_project");
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("cold_all_series", |b| {
        b.iter(|| {
            // Fresh run per iteration: measures the uncached projection
            // cost that the memoization layer amortizes away.
            let fresh = StudyRun::execute(&cfg);
            let mut present = 0usize;
            for &id in &ObsId::ALL {
                present += fresh.normalized_series(id).present().count();
            }
            black_box(present)
        })
    });
    group.bench_function("warm_all_series", |b| {
        b.iter(|| {
            let mut present = 0usize;
            for &id in &ObsId::ALL {
                present += run.normalized_series(id).present().count();
            }
            black_box(present + run.netscout_baseline_tuples().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generate, bench_observe, bench_project);
criterion_main!(benches);
