//! End-to-end pipeline benches at `StudyConfig::quick()` scale:
//! generate → observe → project, plus the full `StudyRun::execute`
//! under serial and pooled execution. These are the numbers behind the
//! execution-engine speedup claims in DESIGN.md §4.
//!
//! Plain `main` (harness = false) that prints median timings and writes
//! them as a run manifest to `BENCH_pipeline.json` at the workspace
//! root, so `ddoscovery runs diff` (and `make regress`) can gate the
//! perf trajectory with the same machinery that gates study runs.

use attackgen::AttackGenerator;
use ddoscovery::pipeline::{ObsId, StudyRun};
use ddoscovery::scenario::StudyConfig;
use ddoscovery_bench::{bench_manifest, median, write_bench_manifest};
use netmodel::InternetPlan;
use simcore::{ExecPool, SimRng};
use std::hint::black_box;

const REPS: usize = 5;

fn quick_cfg() -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    // These phases measure real recomputation; the cross-run stage
    // cache has its own cached-vs-cold benchmark (benches/sweep.rs).
    cfg.stage_cache = Some(0);
    cfg
}

fn timed(mut f: impl FnMut() -> usize) -> u64 {
    let samples = (0..REPS)
        .map(|_| {
            let watch = obs::Stopwatch::start();
            black_box(f());
            watch.elapsed_ns()
        })
        .collect();
    median(samples)
}

fn main() {
    let cfg = quick_cfg();

    // Generate: columnar population build, serial vs pooled.
    let root = SimRng::new(cfg.seed);
    let mut plan_rng = root.fork_named("plan");
    let plan = InternetPlan::build(&cfg.net, &mut plan_rng);
    let gen = AttackGenerator::new(&plan, cfg.gen.clone(), &root);
    let generate_serial_ns = timed(|| gen.generate_study_on(&ExecPool::serial()).len());
    let generate_pooled_ns = timed(|| gen.generate_study_on(&ExecPool::global()).len());
    let attacks = gen.generate_study_on(&ExecPool::serial()).len() as u64;
    drop(gen);
    drop(plan);

    // Execute: the full generate + observe pipeline.
    let execute_serial_ns = timed(|| StudyRun::execute_on(&cfg, &ExecPool::serial()).attacks.len());
    let execute_pooled_ns = timed(|| StudyRun::execute_on(&cfg, &ExecPool::global()).attacks.len());

    // Project: cold (fresh run per rep — uncached projection cost) vs
    // warm (memoized series on one retained run).
    let project_cold_ns = timed(|| {
        let fresh = StudyRun::execute(&cfg);
        let mut present = 0usize;
        for &id in &ObsId::ALL {
            present += fresh.normalized_series(id).present().count();
        }
        present
    });
    let run = StudyRun::execute(&cfg);
    let observations: u64 = ObsId::ALL
        .iter()
        .map(|&id| run.observations(id).len() as u64)
        .sum();
    let project_warm_ns = timed(|| {
        let mut present = 0usize;
        for &id in &ObsId::ALL {
            present += run.normalized_series(id).present().count();
        }
        present + run.netscout_baseline_tuples().len()
    });

    let speedup = |serial: u64, pooled: u64| serial as f64 / pooled.max(1) as f64;
    let manifest = bench_manifest(
        "pipeline",
        &cfg,
        vec![
            ("attacks".into(), attacks),
            ("observations".into(), observations),
            ("reps".into(), REPS as u64),
        ],
        vec![
            ("generate_serial_median_ns".into(), generate_serial_ns as f64),
            ("generate_pooled_median_ns".into(), generate_pooled_ns as f64),
            ("execute_serial_median_ns".into(), execute_serial_ns as f64),
            ("execute_pooled_median_ns".into(), execute_pooled_ns as f64),
            ("project_cold_median_ns".into(), project_cold_ns as f64),
            ("project_warm_median_ns".into(), project_warm_ns as f64),
            (
                "generate_pool_speedup".into(),
                speedup(generate_serial_ns, generate_pooled_ns),
            ),
            (
                "execute_pool_speedup".into(),
                speedup(execute_serial_ns, execute_pooled_ns),
            ),
        ],
    );
    let path = write_bench_manifest("BENCH_pipeline.json", &manifest);

    println!(
        "pipeline generate: serial {generate_serial_ns} ns, pooled {generate_pooled_ns} ns \
         ({:.1}x)",
        speedup(generate_serial_ns, generate_pooled_ns)
    );
    println!(
        "pipeline execute:  serial {execute_serial_ns} ns, pooled {execute_pooled_ns} ns \
         ({:.1}x)",
        speedup(execute_serial_ns, execute_pooled_ns)
    );
    println!("pipeline project:  cold {project_cold_ns} ns, warm {project_warm_ns} ns");
    println!("pipeline: wrote {}", path.display());
}
