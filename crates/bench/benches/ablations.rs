//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * event-level vs packet-level observation cost — the reason the
//!   macro study uses the analytic path;
//! * attack generation with and without campaign layering;
//! * carpet-bombing reconstruction cost on honeypot streams;
//! * observatory fan-out: serial vs the shared execution pool.

use attackgen::packets::backscatter_packets;
use attackgen::{AttackClass, AttackGenerator, GenConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use honeypot::{reconstruct_carpet_attacks, Honeypot};
use netmodel::{InternetPlan, NetScale};
use simcore::{ExecPool, SimRng};
use std::hint::black_box;
use telescope::{RsdosConfig, RsdosDetector, Telescope};

fn plan() -> InternetPlan {
    let mut rng = SimRng::new(11);
    InternetPlan::build(&NetScale::tiny(), &mut rng)
}

fn small_gen_cfg(campaigns: bool) -> GenConfig {
    let mut cfg = GenConfig::default();
    cfg.timeline.dp_base_per_week = 40.0;
    cfg.timeline.ra_base_per_week = 60.0;
    if !campaigns {
        cfg.random_campaign_count = 0;
        cfg.campaign_rate_scale = 0.0;
    } else {
        cfg.random_campaign_count = 8;
        cfg.campaign_rate_scale = 0.125;
    }
    cfg
}

fn bench_fidelity_ablation(c: &mut Criterion) {
    let plan = plan();
    let root = SimRng::new(12);
    let gen = AttackGenerator::new(&plan, small_gen_cfg(false), &root);
    let mut cols = attackgen::AttackColumns::new();
    for week in 0..26 {
        gen.generate_week(week, &mut cols);
    }
    let rsdos: Vec<attackgen::Attack> = cols
        .iter()
        .filter(|a| a.class == AttackClass::DirectPathSpoofed)
        .take(200)
        .map(|a| a.to_attack())
        .collect();
    let tele = Telescope::ucsd(&plan);
    let mut group = c.benchmark_group("fidelity_ablation");
    group.throughput(Throughput::Elements(rsdos.len() as u64));
    group.bench_function("event_level_200_attacks", |b| {
        b.iter(|| {
            let mut seen = 0usize;
            for a in &rsdos {
                seen += tele.observe(black_box(a), &root).is_some() as usize;
            }
            black_box(seen)
        })
    });
    group.sample_size(10);
    group.bench_function("packet_level_200_attacks", |b| {
        b.iter(|| {
            let mut seen = 0usize;
            for a in &rsdos {
                let mut prng = root.fork(a.id.0).fork_named("ablation");
                let pkts = backscatter_packets(a, &tele.spec, &mut prng);
                let mut det = RsdosDetector::new(RsdosConfig::default());
                for p in &pkts {
                    det.ingest(p);
                }
                seen += (!det.finish().is_empty()) as usize;
            }
            black_box(seen)
        })
    });
    group.finish();
}

fn bench_campaign_ablation(c: &mut Criterion) {
    let plan = plan();
    let root = SimRng::new(13);
    let mut group = c.benchmark_group("campaign_ablation");
    group.sample_size(10);
    for (label, campaigns) in [("without_campaigns", false), ("with_campaigns", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let gen = AttackGenerator::new(&plan, small_gen_cfg(campaigns), &root);
                black_box(gen.generate_study().len())
            })
        });
    }
    group.finish();
}

fn bench_carpet_reconstruction(c: &mut Criterion) {
    let plan = plan();
    let root = SimRng::new(14);
    let gen = AttackGenerator::new(&plan, small_gen_cfg(true), &root);
    let attacks = gen.generate_study().to_vec();
    let hp = Honeypot::hopscotch(&plan);
    let raw = hp.observe_all(&attacks, &root);
    let mut group = c.benchmark_group("carpet_reconstruction");
    group.throughput(Throughput::Elements(raw.len() as u64));
    group.bench_function("appendix_i_merge", |b| {
        b.iter(|| {
            let merged = reconstruct_carpet_attacks(&plan, black_box(&raw), 3600);
            black_box(merged.len())
        })
    });
    group.finish();
}

fn bench_fanout_ablation(c: &mut Criterion) {
    let plan = plan();
    let root = SimRng::new(15);
    let gen = AttackGenerator::new(&plan, small_gen_cfg(false), &root);
    let attacks = gen.generate_study().to_vec();
    let ucsd = Telescope::ucsd(&plan);
    let orion = Telescope::orion(&plan);
    let hops = Honeypot::hopscotch(&plan);
    let amppot = Honeypot::amppot(&plan);
    let mut group = c.benchmark_group("fanout_ablation");
    group.sample_size(10);
    group.bench_function("serial_four_observatories", |b| {
        b.iter(|| {
            let a = ucsd.observe_all(&attacks, &root).len();
            let b2 = orion.observe_all(&attacks, &root).len();
            let c2 = hops.observe_all(&attacks, &root).len();
            let d = amppot.observe_all(&attacks, &root).len();
            black_box(a + b2 + c2 + d)
        })
    });
    let pool = ExecPool::global();
    group.bench_function("pooled_four_observatories", |b| {
        b.iter(|| {
            let a = ucsd.observe_all_on(&attacks, &root, &pool).len();
            let b2 = orion.observe_all_on(&attacks, &root, &pool).len();
            let c2 = hops.observe_all_on(&attacks, &root, &pool).len();
            let d = amppot.observe_all_on(&attacks, &root, &pool).len();
            black_box(a + b2 + c2 + d)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fidelity_ablation,
    bench_campaign_ablation,
    bench_carpet_reconstruction,
    bench_fanout_ablation
);
criterion_main!(benches);
