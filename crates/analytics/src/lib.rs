//! `analytics` — the paper's statistical comparison machinery.
//!
//! * [`series`]: weekly series, §5 normalization (median of first 15
//!   weeks), 12-week EWMA, OLS trend lines and Table-1 trend classes;
//! * [`corr`]: Spearman/Pearson with t-test p-values (Fig. 6),
//!   quarterly correlation boxes (Fig. 14 / App. F);
//! * [`upset`]: exclusive set intersections of (date, IP) targets
//!   (Fig. 7);
//! * [`overlap`]: overlap time series, new-vs-recurring decomposition,
//!   industry confirmation joins (Fig. 8, 9, 10, 13);
//! * [`heatmap`]: the Fig.-4 matrix;
//! * [`special`]: log-gamma / incomplete beta / Student-t machinery
//!   behind the p-values.

pub mod bootstrap;
pub mod concentration;
pub mod corr;
pub mod heatmap;
pub mod lag;
pub mod overlap;
pub mod seasonal;
pub mod series;
pub mod special;
pub mod upset;

pub use bootstrap::{trend_interval, TrendInterval};
pub use concentration::{concentration, Concentration};
pub use corr::{
    average_ranks, box_stats, correlation_matrix, pearson, quarterly_correlations, spearman,
    BoxStats, Correlation, CorrelationMatrix, Method,
};
pub use heatmap::Heatmap;
pub use lag::{best_lag, durable_crossing, lagged_spearman, share_series, LagResult};
pub use overlap::{
    confirmation_shares, ip_overlap_share, new_vs_recurring, weekly_overlap,
    weekly_target_counts, ConfirmationShares, NewRecurring, OverlapSeries,
};
pub use seasonal::{monthly_profile, seasonal_summary, SeasonalSummary};
pub use series::{median, relative_change_4y, Regression, Trend, WeekMask, WeeklySeries};
pub use upset::{upset, TargetTuple, UpsetAnalysis};
