//! Weekly time series and the paper's aggregation pipeline (§5, §6):
//! normalization to the median of the first 15 weeks, exponentially
//! weighted moving averages with a 12-week span, and ordinary
//! least-squares trend lines with the ±5 %-in-4-years trend
//! classification of Table 1.
//!
//! Missing data (ORION 2019Q3–Q4, IXP January 2019) is represented as
//! `NaN` and skipped by every statistic, matching how the paper plots
//! gaps.

use serde::{Deserialize, Serialize};
use simcore::BASELINE_WEEKS;

/// A weekly-bucketed time series over the study window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklySeries {
    pub name: String,
    pub values: Vec<f64>,
}

impl WeeklySeries {
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        WeeklySeries {
            name: name.into(),
            values,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Values that are present (non-NaN), with their week indices.
    pub fn present(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .map(|(i, &v)| (i, v))
    }

    /// Mark a week range [lo, hi) as missing data.
    pub fn mask_range(&mut self, lo: usize, hi: usize) {
        let len = self.values.len();
        for v in &mut self.values[lo.min(len)..hi.min(len)] {
            *v = f64::NAN;
        }
    }

    /// Mark individual weeks as missing data (outage windows arrive as
    /// week lists from the fault plan). Out-of-range weeks are ignored.
    pub fn mask_weeks(&mut self, weeks: &[usize]) {
        for &w in weeks {
            if let Some(v) = self.values.get_mut(w) {
                *v = f64::NAN;
            }
        }
    }

    /// The explicit missing-week mask of this series: which week
    /// indices hold no observed value. Every statistic in this module
    /// treats masked weeks as *absent*, never as zero counts.
    pub fn week_mask(&self) -> WeekMask {
        WeekMask {
            missing: self
                .values
                .iter()
                .enumerate()
                .filter(|(_, v)| v.is_nan())
                .map(|(i, _)| i)
                .collect(),
            total: self.values.len(),
        }
    }

    /// Normalize to the median of the first `BASELINE_WEEKS` *observed*
    /// values (§5: "normalized values to the median attack count of the
    /// first 15 weeks"). When early weeks are masked out — a reporting
    /// gap or an injected outage — the baseline window slides past them
    /// to the first 15 weeks that actually carry data, rather than
    /// shrinking (which makes the median noisy) or treating gaps as
    /// zeros (which poisons it). A zero/absent baseline falls back to
    /// the median of the whole series so the result stays finite.
    pub fn normalize_to_baseline(&self) -> WeeklySeries {
        let baseline_values: Vec<f64> = self
            .present()
            .take(BASELINE_WEEKS)
            .map(|(_, v)| v)
            .collect();
        let mut base = median(&baseline_values);
        if base.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            let all: Vec<f64> = self.present().map(|(_, v)| v).collect();
            base = median(&all).max(1.0);
        }
        WeeklySeries {
            name: self.name.clone(),
            values: self.values.iter().map(|v| v / base).collect(),
        }
    }

    /// Exponentially weighted moving average with the given span
    /// (α = 2 / (span + 1), pandas-style). NaNs are carried through
    /// without contaminating the average.
    pub fn ewma(&self, span: usize) -> WeeklySeries {
        assert!(span >= 1);
        let alpha = 2.0 / (span as f64 + 1.0);
        let mut out = Vec::with_capacity(self.values.len());
        let mut state: Option<f64> = None;
        for &v in &self.values {
            if v.is_nan() {
                out.push(f64::NAN);
                continue;
            }
            let next = match state {
                None => v,
                Some(s) => s + alpha * (v - s),
            };
            state = Some(next);
            out.push(next);
        }
        WeeklySeries {
            name: format!("{} (EWMA)", self.name),
            values: out,
        }
    }

    /// Centered moving average over ±`half_window` weeks — symmetric,
    /// so unlike [`WeeklySeries::ewma`] it introduces no phase lag
    /// (used for crossing detection, where a lag would shift the
    /// crossing date). NaNs are skipped inside each window; windows
    /// with no present values stay NaN.
    pub fn centered_ma(&self, half_window: usize) -> WeeklySeries {
        let n = self.values.len();
        let values = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half_window);
                let hi = (i + half_window + 1).min(n);
                let present: Vec<f64> = self.values[lo..hi]
                    .iter()
                    .copied()
                    .filter(|v| !v.is_nan())
                    .collect();
                if present.is_empty() {
                    f64::NAN
                } else {
                    present.iter().sum::<f64>() / present.len() as f64
                }
            })
            .collect();
        WeeklySeries {
            name: format!("{} (CMA)", self.name),
            values,
        }
    }

    /// OLS regression over (week index, value), skipping NaNs.
    /// Returns `None` with fewer than two present points.
    pub fn linear_regression(&self) -> Option<Regression> {
        linear_regression_range(self, 0, self.values.len())
    }

    /// Regression restricted to weeks [lo, hi).
    pub fn regression_in(&self, lo: usize, hi: usize) -> Option<Regression> {
        linear_regression_range(self, lo, hi)
    }

    /// Table-1 trend classification: relative change over four years
    /// (208 weeks) of the fitted line, against the fitted level at the
    /// window start. > +5 % ⇒ increasing, < −5 % ⇒ decreasing,
    /// otherwise steady. A non-positive fitted baseline makes the
    /// relative change undefined ([`relative_change_4y`] returns
    /// `None`) and classifies as steady rather than blowing the ratio
    /// up against an arbitrary epsilon.
    pub fn trend(&self) -> Trend {
        let change = self
            .linear_regression()
            .as_ref()
            .and_then(relative_change_4y);
        match change {
            Some(c) if c > 0.05 => Trend::Increasing,
            Some(c) if c < -0.05 => Trend::Decreasing,
            _ => Trend::Steady,
        }
    }
}

/// Explicit missing-week mask of a [`WeeklySeries`]: the week indices
/// that hold no observed value (NaN). Makes the gap structure queryable
/// — correlation and regression already intersect present weeks
/// pairwise, and the mask lets callers (manifests, degraded-mode
/// reports) state *which* weeks were lost without re-deriving it from
/// raw NaN scans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeekMask {
    /// Missing week indices, ascending.
    pub missing: Vec<usize>,
    /// Total series length in weeks.
    pub total: usize,
}

impl WeekMask {
    pub fn is_missing(&self, week: usize) -> bool {
        self.missing.binary_search(&week).is_ok()
    }

    /// Number of weeks that carry data.
    pub fn observed(&self) -> usize {
        self.total - self.missing.len()
    }

    /// Weeks observed in *both* masks — the pairwise-complete domain
    /// every cross-series statistic (Spearman, Pearson, lag scans)
    /// effectively operates on.
    pub fn intersect_observed(&self, other: &WeekMask) -> usize {
        let total = self.total.min(other.total);
        (0..total)
            .filter(|&w| !self.is_missing(w) && !other.is_missing(w))
            .count()
    }
}

/// The Table-1 statistic: relative change of the fitted line over four
/// years (208 weeks), measured against the fitted level at the window
/// start. Returns `None` when the baseline (intercept) is non-positive
/// or not finite — dividing by an epsilon-clamped intercept inflated
/// the ratio to ~1e10 and misclassified the trend. Shared by
/// [`WeeklySeries::trend`], the bootstrap replicates, and the sweep
/// harness so all three agree on degenerate fits.
pub fn relative_change_4y(reg: &Regression) -> Option<f64> {
    if !(reg.intercept.is_finite() && reg.slope.is_finite()) || reg.intercept <= 0.0 {
        return None;
    }
    Some(reg.slope * 208.0 / reg.intercept)
}

/// Fitted line y = intercept + slope · week.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
    pub n: usize,
}

fn linear_regression_range(s: &WeeklySeries, lo: usize, hi: usize) -> Option<Regression> {
    let pts: Vec<(f64, f64)> = s
        .present()
        .filter(|(i, _)| (lo..hi).contains(i))
        .map(|(i, v)| (i as f64, v))
        .collect();
    let n = pts.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = pts.iter().map(|(x, _)| x).sum::<f64>() / nf;
    let mean_y = pts.iter().map(|(_, y)| y).sum::<f64>() / nf;
    let sxx: f64 = pts.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = pts.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    Some(Regression {
        slope,
        intercept,
        r2,
        n,
    })
}

/// Table-1 trend symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trend {
    Increasing,
    Decreasing,
    Steady,
}

impl Trend {
    /// The glyph the paper's Table 1 uses.
    pub const fn symbol(self) -> &'static str {
        match self {
            Trend::Increasing => "▲",
            Trend::Decreasing => "▼",
            Trend::Steady => "◆",
        }
    }
}

/// Median of a value slice. Empty ⇒ NaN. NaNs sort to the high end
/// under IEEE total order, so a slice with stray NaNs still yields a
/// deterministic (if NaN-shifted) median instead of a sort panic —
/// callers that care should pre-filter.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn normalization_uses_first_15_weeks() {
        let mut values = vec![10.0; 15];
        values.extend(vec![20.0; 10]);
        let s = WeeklySeries::new("x", values).normalize_to_baseline();
        assert_eq!(s.values[0], 1.0);
        assert_eq!(s.values[20], 2.0);
    }

    #[test]
    fn normalization_skips_missing_baseline_weeks() {
        let mut values = vec![f64::NAN; 5];
        values.extend(vec![10.0; 10]);
        values.extend(vec![30.0; 10]);
        let s = WeeklySeries::new("x", values).normalize_to_baseline();
        assert_eq!(s.values[10], 1.0);
        assert_eq!(s.values[20], 3.0);
    }

    #[test]
    fn normalization_baseline_slides_past_masked_weeks() {
        // An outage masking 10 of the first 15 weeks must not shrink
        // the baseline window to 5 values: the window slides forward to
        // the first 15 *observed* weeks.
        let mut values = vec![10.0; 30];
        values.extend(vec![40.0; 10]);
        let mut s = WeeklySeries::new("x", values);
        s.mask_range(3, 13);
        let n = s.normalize_to_baseline();
        // Baseline = median of 15 observed 10.0s (weeks 0-2, 13-24).
        assert_eq!(n.values[0], 1.0);
        assert_eq!(n.values[35], 4.0);
        // Masked weeks stay masked, never zero.
        assert!(n.values[5].is_nan());
    }

    #[test]
    fn week_mask_reports_gap_structure() {
        let mut a = WeeklySeries::new("a", vec![1.0; 10]);
        a.mask_weeks(&[2, 3, 7]);
        let ma = a.week_mask();
        assert_eq!(ma.missing, vec![2, 3, 7]);
        assert_eq!(ma.observed(), 7);
        assert!(ma.is_missing(3) && !ma.is_missing(4));
        let mut b = WeeklySeries::new("b", vec![1.0; 10]);
        b.mask_range(6, 9);
        let mb = b.week_mask();
        // Pairwise-complete domain: all weeks minus the union {2,3,6,7,8}.
        assert_eq!(ma.intersect_observed(&mb), 5);
    }

    #[test]
    fn normalization_zero_baseline_fallback() {
        let mut values = vec![0.0; 15];
        values.extend(vec![10.0; 30]);
        let s = WeeklySeries::new("x", values).normalize_to_baseline();
        assert!(s.values.iter().all(|v| v.is_finite()));
        assert!(s.values[20] > 0.0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let s = WeeklySeries::new("x", vec![5.0; 50]).ewma(12);
        assert!((s.values[49] - 5.0).abs() < 1e-12);
        assert_eq!(s.values[0], 5.0);
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut values = vec![1.0; 30];
        values[15] = 100.0;
        let s = WeeklySeries::new("x", values.clone()).ewma(12);
        assert!(s.values[15] < 100.0 * 0.2);
        assert!(s.values[15] > 1.0);
    }

    #[test]
    fn centered_ma_no_phase_lag() {
        // A step function's midpoint stays at the step under a centered
        // average (an EWMA would shift it right).
        let mut values = vec![0.0; 40];
        for v in values.iter_mut().skip(20) {
            *v = 1.0;
        }
        let s = WeeklySeries::new("step", values).centered_ma(5);
        assert!(s.values[19] < 0.5);
        assert!(s.values[20] >= 0.5);
        // Flat regions are untouched.
        assert_eq!(s.values[5], 0.0);
        assert_eq!(s.values[35], 1.0);
    }

    #[test]
    fn centered_ma_handles_nan_and_edges() {
        let s = WeeklySeries::new("x", vec![f64::NAN, 2.0, 4.0]).centered_ma(1);
        assert_eq!(s.values[0], 2.0); // only the present neighbor
        assert_eq!(s.values[1], 3.0);
        assert_eq!(s.values[2], 3.0);
        let void = WeeklySeries::new("v", vec![f64::NAN; 5]).centered_ma(2);
        assert!(void.values.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn ewma_passes_nan_through() {
        let s = WeeklySeries::new("x", vec![1.0, f64::NAN, 3.0]).ewma(12);
        assert!(s.values[1].is_nan());
        assert!(s.values[2].is_finite());
    }

    #[test]
    fn regression_recovers_line() {
        let values: Vec<f64> = (0..100).map(|i| 2.0 + 0.5 * i as f64).collect();
        let reg = WeeklySeries::new("x", values).linear_regression().unwrap();
        assert!((reg.slope - 0.5).abs() < 1e-9);
        assert!((reg.intercept - 2.0).abs() < 1e-9);
        assert!((reg.r2 - 1.0).abs() < 1e-9);
        assert_eq!(reg.n, 100);
    }

    #[test]
    fn regression_skips_nans() {
        let mut values: Vec<f64> = (0..100).map(|i| 1.0 + 0.1 * i as f64).collect();
        for v in values.iter_mut().take(30).skip(10) {
            *v = f64::NAN;
        }
        let reg = WeeklySeries::new("x", values).linear_regression().unwrap();
        assert!((reg.slope - 0.1).abs() < 1e-9);
        assert_eq!(reg.n, 80);
    }

    #[test]
    fn regression_none_for_flat_x_or_empty() {
        assert!(WeeklySeries::new("x", vec![]).linear_regression().is_none());
        assert!(WeeklySeries::new("x", vec![1.0]).linear_regression().is_none());
        assert!(WeeklySeries::new("x", vec![f64::NAN, f64::NAN])
            .linear_regression()
            .is_none());
    }

    #[test]
    fn regression_in_subwindow() {
        let values: Vec<f64> = (0..100)
            .map(|i| if i < 50 { 1.0 } else { 1.0 + (i - 50) as f64 })
            .collect();
        let flat = WeeklySeries::new("x", values.clone())
            .regression_in(0, 50)
            .unwrap();
        assert!(flat.slope.abs() < 1e-9);
        let rising = WeeklySeries::new("x", values).regression_in(50, 100).unwrap();
        assert!((rising.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trend_classification() {
        // Strong growth.
        let up: Vec<f64> = (0..235).map(|i| 1.0 + 0.01 * i as f64).collect();
        assert_eq!(WeeklySeries::new("x", up).trend(), Trend::Increasing);
        // Strong decline.
        let down: Vec<f64> = (0..235).map(|i| 10.0 - 0.02 * i as f64).collect();
        assert_eq!(WeeklySeries::new("x", down).trend(), Trend::Decreasing);
        // Flat within the ±5 % band.
        let flat: Vec<f64> = (0..235).map(|i| 100.0 + 0.001 * i as f64).collect();
        assert_eq!(WeeklySeries::new("x", flat).trend(), Trend::Steady);
    }

    #[test]
    fn trend_non_positive_intercept_is_steady() {
        // A rising line fitted through a negative start: the old
        // `intercept.max(1e-9)` clamp exploded the relative change to
        // ~1e10 and reported Increasing. Undefined baseline ⇒ Steady.
        let values: Vec<f64> = (0..235).map(|i| -10.0 + 0.02 * i as f64).collect();
        let s = WeeklySeries::new("x", values);
        let reg = s.linear_regression().unwrap();
        assert!(reg.intercept < 0.0);
        assert!(relative_change_4y(&reg).is_none());
        assert_eq!(s.trend(), Trend::Steady);
    }

    #[test]
    fn relative_change_4y_matches_trend_formula() {
        let values: Vec<f64> = (0..235).map(|i| 2.0 + 0.01 * i as f64).collect();
        let reg = WeeklySeries::new("x", values).linear_regression().unwrap();
        let c = relative_change_4y(&reg).unwrap();
        assert!((c - 0.01 * 208.0 / 2.0).abs() < 1e-9);
        // Zero intercept is as undefined as a negative one.
        let zero = Regression { slope: 1.0, intercept: 0.0, r2: 1.0, n: 10 };
        assert!(relative_change_4y(&zero).is_none());
        let inf = Regression { slope: 1.0, intercept: f64::INFINITY, r2: 1.0, n: 10 };
        assert!(relative_change_4y(&inf).is_none());
    }

    #[test]
    fn median_tolerates_stray_nan() {
        // NaNs sort last under total order: no panic, deterministic.
        let m = median(&[3.0, f64::NAN, 1.0]);
        assert_eq!(m, 3.0);
    }

    #[test]
    fn trend_symbols() {
        assert_eq!(Trend::Increasing.symbol(), "▲");
        assert_eq!(Trend::Decreasing.symbol(), "▼");
        assert_eq!(Trend::Steady.symbol(), "◆");
    }

    #[test]
    fn mask_range_sets_nan() {
        let mut s = WeeklySeries::new("x", vec![1.0; 10]);
        s.mask_range(2, 5);
        assert!(s.values[2].is_nan() && s.values[4].is_nan());
        assert!(s.values[1].is_finite() && s.values[5].is_finite());
        // Out-of-range masks are clipped, not panics.
        s.mask_range(8, 100);
        assert!(s.values[9].is_nan());
    }

    #[test]
    fn present_iterator() {
        let s = WeeklySeries::new("x", vec![1.0, f64::NAN, 3.0]);
        let p: Vec<(usize, f64)> = s.present().collect();
        assert_eq!(p, vec![(0, 1.0), (2, 3.0)]);
    }
}
