//! UpSet-style set intersection analysis of attack targets (Fig. 7).
//!
//! Targets are `(attack start day, target IP)` tuples (§7). The UpSet
//! decomposition reports, for every combination of observatories, the
//! number of targets seen by *exactly* that combination — the exclusive
//! intersections of the figure's top bar plot — alongside per-set totals
//! (the left bar plot).

use netmodel::Ipv4;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// A `(day index, target IP)` tuple.
pub type TargetTuple = (i64, Ipv4);

/// Result of an UpSet decomposition over up to 16 sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpsetAnalysis {
    pub names: Vec<String>,
    /// Distinct tuples per set (non-exclusive).
    pub set_sizes: Vec<usize>,
    /// Exclusive-intersection counts, keyed by membership bitmask
    /// (bit i set ⇔ member of set i). Masks with zero count are absent.
    pub exclusive: BTreeMap<u16, usize>,
    /// Distinct tuples across all sets.
    pub total_distinct: usize,
    /// Distinct IP addresses across all sets.
    pub distinct_ips: usize,
}

impl UpsetAnalysis {
    /// Share of all distinct targets in the exclusive intersection.
    pub fn share(&self, mask: u16) -> f64 {
        if self.total_distinct == 0 {
            return 0.0;
        }
        *self.exclusive.get(&mask).unwrap_or(&0) as f64 / self.total_distinct as f64
    }

    /// Count of targets seen by *at least* the sets in `mask`
    /// (non-exclusive intersection): sum over supersets.
    pub fn at_least(&self, mask: u16) -> usize {
        self.exclusive
            .iter()
            .filter(|(m, _)| *m & mask == mask)
            .map(|(_, c)| c)
            .sum()
    }

    /// |A ∩ B| / |A| — the share of set `a`'s targets also seen by `b`.
    pub fn overlap_share(&self, a: usize, b: usize) -> f64 {
        if self.set_sizes[a] == 0 {
            return 0.0;
        }
        let both = self.at_least((1 << a) | (1 << b));
        both as f64 / self.set_sizes[a] as f64
    }

    /// The mask with every set included.
    pub fn full_mask(&self) -> u16 {
        (1u16 << self.names.len()) - 1
    }

    /// Human-readable name of a mask, e.g. "UCSD+AmpPot".
    pub fn mask_label(&self, mask: u16) -> String {
        let parts: Vec<&str> = self
            .names
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| n.as_str())
            .collect();
        parts.join("+")
    }
}

/// Compute the UpSet decomposition. Tuples may contain duplicates; they
/// are deduplicated per set.
pub fn upset(sets: &[(String, Vec<TargetTuple>)]) -> UpsetAnalysis {
    assert!(sets.len() <= 16, "upset supports at most 16 sets");
    let mut membership: HashMap<TargetTuple, u16> = HashMap::new();
    for (i, (_, tuples)) in sets.iter().enumerate() {
        for &t in tuples {
            *membership.entry(t).or_insert(0) |= 1 << i;
        }
    }
    let mut set_sizes = vec![0usize; sets.len()];
    let mut exclusive: BTreeMap<u16, usize> = BTreeMap::new();
    let mut ips: HashMap<Ipv4, ()> = HashMap::new();
    for (&(_, ip), &mask) in &membership {
        *exclusive.entry(mask).or_insert(0) += 1;
        ips.insert(ip, ());
        for (i, size) in set_sizes.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *size += 1;
            }
        }
    }
    UpsetAnalysis {
        names: sets.iter().map(|(n, _)| n.clone()).collect(),
        set_sizes,
        exclusive,
        total_distinct: membership.len(),
        distinct_ips: ips.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: i64, ip: u32) -> TargetTuple {
        (day, Ipv4(ip))
    }

    fn sets() -> Vec<(String, Vec<TargetTuple>)> {
        vec![
            ("A".into(), vec![t(1, 1), t(1, 2), t(1, 3)]),
            ("B".into(), vec![t(1, 2), t(1, 3), t(1, 4)]),
            ("C".into(), vec![t(1, 3), t(1, 5)]),
        ]
    }

    #[test]
    fn set_sizes_and_total() {
        let u = upset(&sets());
        assert_eq!(u.set_sizes, vec![3, 3, 2]);
        assert_eq!(u.total_distinct, 5);
        assert_eq!(u.distinct_ips, 5);
    }

    #[test]
    fn exclusive_masks() {
        let u = upset(&sets());
        // ip1: A only (mask 0b001), ip2: A+B (0b011), ip3: all (0b111),
        // ip4: B only (0b010), ip5: C only (0b100).
        assert_eq!(u.exclusive[&0b001], 1);
        assert_eq!(u.exclusive[&0b011], 1);
        assert_eq!(u.exclusive[&0b111], 1);
        assert_eq!(u.exclusive[&0b010], 1);
        assert_eq!(u.exclusive[&0b100], 1);
        assert_eq!(u.exclusive.values().sum::<usize>(), u.total_distinct);
    }

    #[test]
    fn at_least_sums_supersets() {
        let u = upset(&sets());
        // Seen by at least A and B: ip2 and ip3.
        assert_eq!(u.at_least(0b011), 2);
        // Seen by at least C: ip3, ip5.
        assert_eq!(u.at_least(0b100), 2);
        // All three: ip3 only.
        assert_eq!(u.at_least(u.full_mask()), 1);
    }

    #[test]
    fn overlap_share_directional() {
        let u = upset(&sets());
        // A's targets also in B: 2 of 3.
        assert!((u.overlap_share(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        // C's targets also in A: 1 of 2.
        assert!((u.overlap_share(2, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_deduplicated() {
        let u = upset(&[("A".into(), vec![t(1, 1), t(1, 1), t(1, 1)])]);
        assert_eq!(u.set_sizes, vec![1]);
        assert_eq!(u.total_distinct, 1);
    }

    #[test]
    fn same_ip_on_different_days_distinct_tuples() {
        let u = upset(&[("A".into(), vec![t(1, 9), t(2, 9)])]);
        assert_eq!(u.total_distinct, 2);
        assert_eq!(u.distinct_ips, 1);
    }

    #[test]
    fn shares_sum_to_one() {
        let u = upset(&sets());
        let sum: f64 = u.exclusive.keys().map(|&m| u.share(m)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mask_labels() {
        let u = upset(&sets());
        assert_eq!(u.mask_label(0b101), "A+C");
        assert_eq!(u.mask_label(0b111), "A+B+C");
        assert_eq!(u.mask_label(0), "");
    }

    #[test]
    fn empty_sets_ok() {
        let u = upset(&[("A".into(), vec![]), ("B".into(), vec![])]);
        assert_eq!(u.total_distinct, 0);
        assert_eq!(u.share(0b01), 0.0);
        assert_eq!(u.overlap_share(0, 1), 0.0);
    }
}
