//! Lead/lag structure and crossing detection.
//!
//! Two utilities the paper's narrative uses informally:
//!
//! * [`durable_crossing`] — the "latest crossing of the 50 % mark" of
//!   Fig. 5, generalized to any share series and threshold;
//! * [`lagged_spearman`] / [`best_lag`] — which observatory *leads*:
//!   §6.2 notes Hopscotch peaked early in 2020 "when AmpPot peaks
//!   declined"; lag analysis quantifies such phase offsets.

use crate::corr::{spearman, Correlation};
use crate::series::WeeklySeries;
use serde::{Deserialize, Serialize};

/// Find the first index from which the series stays strictly above
/// `threshold` for the rest of its (present) length — the paper's
/// "latest crossing" semantics. Returns `None` if the series never
/// durably crosses.
pub fn durable_crossing(values: &[f64], threshold: f64) -> Option<usize> {
    let mut candidate = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        if v > threshold {
            candidate.get_or_insert(i);
        } else {
            candidate = None;
        }
    }
    candidate
}

/// Share series a/(a+b) with NaN where either side is missing or the
/// denominator is zero.
pub fn share_series(a: &WeeklySeries, b: &WeeklySeries) -> WeeklySeries {
    let values = a
        .values
        .iter()
        .zip(&b.values)
        .map(|(&x, &y)| {
            if x.is_finite() && y.is_finite() && x + y > 0.0 {
                x / (x + y)
            } else {
                f64::NAN
            }
        })
        .collect();
    WeeklySeries::new(format!("{} share", a.name), values)
}

/// Spearman correlation of `a[t]` against `b[t + lag]` (positive lag ⇒
/// `a` leads `b` by `lag` weeks).
pub fn lagged_spearman(a: &WeeklySeries, b: &WeeklySeries, lag: i64) -> Option<Correlation> {
    let n = a.values.len().min(b.values.len());
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..n as i64 {
        let j = i + lag;
        if j < 0 || j >= n as i64 {
            continue;
        }
        xs.push(a.values[i as usize]);
        ys.push(b.values[j as usize]);
    }
    spearman(&xs, &ys)
}

/// The lag in `[-max_lag, +max_lag]` that maximizes the (significant)
/// lagged Spearman correlation, with that correlation. Positive lag ⇒
/// `a` leads `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LagResult {
    pub lag: i64,
    pub correlation: Correlation,
}

pub fn best_lag(a: &WeeklySeries, b: &WeeklySeries, max_lag: i64) -> Option<LagResult> {
    let mut best: Option<LagResult> = None;
    for lag in -max_lag..=max_lag {
        if let Some(c) = lagged_spearman(a, b, lag) {
            let better = match best {
                None => true,
                Some(prev) => c.rho > prev.correlation.rho,
            };
            if better {
                best = Some(LagResult {
                    lag,
                    correlation: c,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str, v: Vec<f64>) -> WeeklySeries {
        WeeklySeries::new(name, v)
    }

    #[test]
    fn crossing_basics() {
        assert_eq!(durable_crossing(&[0.1, 0.6, 0.7, 0.8], 0.5), Some(1));
        // A later dip resets the candidate.
        assert_eq!(durable_crossing(&[0.6, 0.4, 0.7, 0.8], 0.5), Some(2));
        assert_eq!(durable_crossing(&[0.1, 0.2], 0.5), None);
        // Ends below threshold: never durable.
        assert_eq!(durable_crossing(&[0.9, 0.9, 0.1], 0.5), None);
        assert_eq!(durable_crossing(&[], 0.5), None);
    }

    #[test]
    fn crossing_skips_nan() {
        assert_eq!(
            durable_crossing(&[0.6, f64::NAN, 0.7], 0.5),
            Some(0),
            "NaN weeks should not reset the candidate"
        );
    }

    #[test]
    fn share_series_math() {
        let a = s("a", vec![1.0, 3.0, f64::NAN, 0.0]);
        let b = s("b", vec![1.0, 1.0, 1.0, 0.0]);
        let sh = share_series(&a, &b);
        assert_eq!(sh.values[0], 0.5);
        assert_eq!(sh.values[1], 0.75);
        assert!(sh.values[2].is_nan());
        assert!(sh.values[3].is_nan()); // zero denominator
    }

    #[test]
    fn lag_recovers_known_shift() {
        // b is a copy of a delayed by 5 weeks: a leads b by 5.
        let base: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.3).sin() + 0.01 * i as f64)
            .collect();
        let a = s("a", base.clone());
        let mut delayed = vec![0.0; 5];
        delayed.extend_from_slice(&base[..115]);
        let b = s("b", delayed);
        let best = best_lag(&a, &b, 10).unwrap();
        assert_eq!(best.lag, 5, "a should lead b by 5 weeks");
        assert!(best.correlation.rho > 0.99);
    }

    #[test]
    fn lag_zero_for_aligned_series() {
        let base: Vec<f64> = (0..120).map(|i| (i as f64 * 0.25).sin()).collect();
        let a = s("a", base.clone());
        let b = s("b", base);
        let best = best_lag(&a, &b, 8).unwrap();
        assert_eq!(best.lag, 0);
        assert!((best.correlation.rho - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lagged_spearman_symmetry() {
        // corr(a[t], b[t+k]) == corr(b[t], a[t-k]).
        let x: Vec<f64> = (0..80).map(|i| ((i * 13 % 17) as f64).sin()).collect();
        let y: Vec<f64> = (0..80).map(|i| ((i * 7 % 23) as f64).cos()).collect();
        let a = s("a", x);
        let b = s("b", y);
        let fwd = lagged_spearman(&a, &b, 4).unwrap();
        let rev = lagged_spearman(&b, &a, -4).unwrap();
        assert!((fwd.rho - rev.rho).abs() < 1e-12);
    }

    #[test]
    fn lagged_spearman_short_series_none() {
        let a = s("a", vec![1.0, 2.0, 3.0]);
        let b = s("b", vec![1.0, 2.0, 3.0]);
        assert!(lagged_spearman(&a, &b, 2).is_none()); // 1 pair left
    }
}
