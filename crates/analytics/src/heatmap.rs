//! The Fig.-4 heatmap: all normalized weekly series as one matrix, with
//! a terminal-friendly shaded rendering.

use crate::series::WeeklySeries;
use serde::{Deserialize, Serialize};

/// A heatmap over weekly series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heatmap {
    pub row_names: Vec<String>,
    pub weeks: usize,
    /// Row-major values, clipped to `clip_max`.
    pub values: Vec<f64>,
    pub clip_max: f64,
}

impl Heatmap {
    /// Build from normalized series, clipping extreme peaks so the
    /// shading stays readable (the paper's colormap saturates too).
    pub fn from_series(series: &[WeeklySeries], clip_max: f64) -> Self {
        // No series ⇒ an empty (0-row, 0-week) heatmap, not a panic.
        let weeks = series.iter().map(|s| s.values.len()).max().unwrap_or(0);
        let mut values = Vec::with_capacity(series.len() * weeks);
        for s in series {
            for w in 0..weeks {
                let v = s.values.get(w).copied().unwrap_or(f64::NAN);
                values.push(if v.is_nan() { f64::NAN } else { v.min(clip_max) });
            }
        }
        Heatmap {
            row_names: series.iter().map(|s| s.name.clone()).collect(),
            weeks,
            values,
            clip_max,
        }
    }

    pub fn get(&self, row: usize, week: usize) -> f64 {
        self.values[row * self.weeks + week]
    }

    /// Render as text: one row per series, one character per bucket of
    /// `weeks_per_char` weeks, five shade levels (space, ░, ▒, ▓, █) on
    /// the clipped scale; missing data renders as '·'.
    pub fn render(&self, weeks_per_char: usize) -> String {
        const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
        let weeks_per_char = weeks_per_char.max(1);
        let label_width = self
            .row_names
            .iter()
            .map(|n| n.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (r, name) in self.row_names.iter().enumerate() {
            out.push_str(&format!("{name:label_width$} |"));
            let mut w = 0;
            while w < self.weeks {
                let hi = (w + weeks_per_char).min(self.weeks);
                let bucket: Vec<f64> = (w..hi)
                    .map(|i| self.get(r, i))
                    .filter(|v| !v.is_nan())
                    .collect();
                if bucket.is_empty() {
                    out.push('·');
                } else {
                    let mean = bucket.iter().sum::<f64>() / bucket.len() as f64;
                    let level = ((mean / self.clip_max) * (SHADES.len() - 1) as f64)
                        .round()
                        .clamp(0.0, (SHADES.len() - 1) as f64) as usize;
                    out.push(SHADES[level]);
                }
                w = hi;
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, vals: Vec<f64>) -> WeeklySeries {
        WeeklySeries::new(name, vals)
    }

    #[test]
    fn builds_and_clips() {
        let h = Heatmap::from_series(
            &[series("a", vec![0.5, 10.0]), series("b", vec![1.0, f64::NAN])],
            3.0,
        );
        assert_eq!(h.weeks, 2);
        assert_eq!(h.get(0, 0), 0.5);
        assert_eq!(h.get(0, 1), 3.0); // clipped
        assert!(h.get(1, 1).is_nan());
    }

    #[test]
    fn ragged_series_padded_with_nan() {
        let h = Heatmap::from_series(&[series("a", vec![1.0]), series("b", vec![1.0, 2.0])], 3.0);
        assert_eq!(h.weeks, 2);
        assert!(h.get(0, 1).is_nan());
    }

    #[test]
    fn render_shapes() {
        let h = Heatmap::from_series(
            &[series("long-name", vec![0.0, 1.5, 3.0]), series("b", vec![3.0, 3.0, 3.0])],
            3.0,
        );
        let text = h.render(1);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("long-name |"));
        assert!(lines[1].starts_with("b         |"));
        // Max-value cells render as full blocks.
        assert!(lines[1].ends_with("███"));
        // Zero renders as a space, mid as a mid shade.
        assert!(lines[0].contains(' '));
    }

    #[test]
    fn render_marks_missing() {
        let h = Heatmap::from_series(&[series("a", vec![f64::NAN, 1.0])], 2.0);
        let text = h.render(1);
        assert!(text.contains('·'));
    }

    #[test]
    fn render_buckets_weeks() {
        let h = Heatmap::from_series(&[series("a", vec![1.0; 10])], 2.0);
        let text = h.render(5);
        // 10 weeks / 5 per char = 2 chars after the separator.
        let row = text.lines().next().unwrap();
        assert_eq!(row.split('|').nth(1).unwrap().chars().count(), 2);
    }
}
