//! Target-overlap time series and industry confirmation joins
//! (Fig. 8, 9, 10, 13 and the §7 scalar statistics).

use crate::upset::TargetTuple;
use serde::{Deserialize, Serialize};
use simcore::STUDY_WEEKS;
use std::collections::{HashMap, HashSet};

/// Weekly counts of distinct (day, IP) targets: tuples are daily-
/// distinct by construction; the weekly series sums days (§5: "time
/// series count daily tuples and sum them up to weekly totals").
pub fn weekly_target_counts(tuples: &[TargetTuple]) -> Vec<f64> {
    let distinct: HashSet<TargetTuple> = tuples.iter().copied().collect();
    let mut out = vec![0.0; STUDY_WEEKS];
    for (day, _) in distinct {
        let w = day.div_euclid(7);
        if (0..STUDY_WEEKS as i64).contains(&w) {
            out[w as usize] += 1.0;
        }
    }
    out
}

/// Fig. 10: two observatories' weekly target counts plus the weekly
/// count of targets they share.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlapSeries {
    pub a: Vec<f64>,
    pub b: Vec<f64>,
    pub shared: Vec<f64>,
}

pub fn weekly_overlap(a: &[TargetTuple], b: &[TargetTuple]) -> OverlapSeries {
    let sa: HashSet<TargetTuple> = a.iter().copied().collect();
    let sb: HashSet<TargetTuple> = b.iter().copied().collect();
    let shared: Vec<TargetTuple> = sa.intersection(&sb).copied().collect();
    OverlapSeries {
        a: weekly_target_counts(a),
        b: weekly_target_counts(b),
        shared: weekly_target_counts(&shared),
    }
}

/// Fig. 8: weekly decomposition of a target stream into *new* IPs
/// (never attacked before within the stream) and *recurring* ones, plus
/// the cumulative CDF of new-target arrivals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NewRecurring {
    pub new_targets: Vec<f64>,
    pub recurring_targets: Vec<f64>,
    /// Cumulative share of all distinct IPs first seen by each week.
    pub cdf: Vec<f64>,
}

pub fn new_vs_recurring(tuples: &[TargetTuple]) -> NewRecurring {
    let mut distinct: Vec<TargetTuple> = tuples.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    // Process in day order; track first appearance of each IP.
    distinct.sort_by_key(|&(day, ip)| (day, ip));
    let mut seen: HashSet<netmodel::Ipv4> = HashSet::new();
    let mut new_targets = vec![0.0; STUDY_WEEKS];
    let mut recurring = vec![0.0; STUDY_WEEKS];
    for (day, ip) in distinct {
        let w = day.div_euclid(7);
        if !(0..STUDY_WEEKS as i64).contains(&w) {
            continue;
        }
        if seen.insert(ip) {
            new_targets[w as usize] += 1.0;
        } else {
            recurring[w as usize] += 1.0;
        }
    }
    let total_new: f64 = new_targets.iter().sum();
    let mut acc = 0.0;
    let cdf = new_targets
        .iter()
        .map(|&n| {
            acc += n;
            if total_new > 0.0 {
                acc / total_new
            } else {
                0.0
            }
        })
        .collect();
    NewRecurring {
        new_targets,
        recurring_targets: recurring,
        cdf,
    }
}

/// Fig. 9 / Fig. 13: for each exclusive academic subset, the share of
/// its targets confirmed by an industry baseline set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfirmationShares {
    /// (subset mask over the academic sets, subset size, confirmed share).
    pub rows: Vec<(u16, usize, f64)>,
    /// Reverse view: share of the industry set seen by each academic
    /// observatory independently (§7.2 "how many targets inferred by
    /// Netscout were also observed by academia").
    pub industry_seen_by: Vec<f64>,
    /// Share of the industry set seen by the union of academic sets.
    pub industry_seen_by_union: f64,
}

pub fn confirmation_shares(
    academic: &[(String, Vec<TargetTuple>)],
    industry: &[TargetTuple],
) -> ConfirmationShares {
    let industry_set: HashSet<TargetTuple> = industry.iter().copied().collect();
    // Membership masks over academic sets.
    let mut membership: HashMap<TargetTuple, u16> = HashMap::new();
    for (i, (_, tuples)) in academic.iter().enumerate() {
        for &t in tuples {
            *membership.entry(t).or_insert(0) |= 1 << i;
        }
    }
    // Exclusive-subset confirmation.
    let mut subset_total: HashMap<u16, usize> = HashMap::new();
    let mut subset_confirmed: HashMap<u16, usize> = HashMap::new();
    for (&t, &mask) in &membership {
        *subset_total.entry(mask).or_insert(0) += 1;
        if industry_set.contains(&t) {
            *subset_confirmed.entry(mask).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<(u16, usize, f64)> = subset_total
        .iter()
        .map(|(&mask, &total)| {
            let confirmed = *subset_confirmed.get(&mask).unwrap_or(&0);
            (mask, total, confirmed as f64 / total as f64)
        })
        .collect();
    rows.sort_by_key(|(mask, _, _)| *mask);

    // Reverse direction.
    let industry_n = industry_set.len().max(1);
    let industry_seen_by = academic
        .iter()
        .map(|(_, tuples)| {
            let s: HashSet<TargetTuple> = tuples.iter().copied().collect();
            industry_set.intersection(&s).count() as f64 / industry_n as f64
        })
        .collect();
    let union: HashSet<TargetTuple> = membership.keys().copied().collect();
    let industry_seen_by_union =
        industry_set.intersection(&union).count() as f64 / industry_n as f64;

    ConfirmationShares {
        rows,
        industry_seen_by,
        industry_seen_by_union,
    }
}

/// Share of distinct *IP addresses* (not tuples) common to two streams,
/// relative to the smaller set — the Jonker-et-al.-style comparison of
/// §7.1 ("this overlap is lower, i.e., 1.18%–2.9% of the IP addresses").
pub fn ip_overlap_share(a: &[TargetTuple], b: &[TargetTuple]) -> f64 {
    let ips_a: HashSet<netmodel::Ipv4> = a.iter().map(|&(_, ip)| ip).collect();
    let ips_b: HashSet<netmodel::Ipv4> = b.iter().map(|&(_, ip)| ip).collect();
    let smaller = ips_a.len().min(ips_b.len());
    if smaller == 0 {
        return 0.0;
    }
    ips_a.intersection(&ips_b).count() as f64 / smaller as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::Ipv4;

    fn t(day: i64, ip: u32) -> TargetTuple {
        (day, Ipv4(ip))
    }

    #[test]
    fn weekly_counts_dedupe_and_bucket() {
        let tuples = vec![t(0, 1), t(0, 1), t(6, 2), t(7, 3), t(-1, 4), t(999_999, 5)];
        let counts = weekly_target_counts(&tuples);
        assert_eq!(counts[0], 2.0);
        assert_eq!(counts[1], 1.0);
        assert_eq!(counts.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn overlap_series_shared_subset() {
        let a = vec![t(0, 1), t(0, 2), t(7, 3)];
        let b = vec![t(0, 2), t(7, 3), t(7, 4)];
        let o = weekly_overlap(&a, &b);
        assert_eq!(o.a[0], 2.0);
        assert_eq!(o.b[0], 1.0);
        assert_eq!(o.shared[0], 1.0);
        assert_eq!(o.shared[1], 1.0);
        // Shared never exceeds either side.
        for w in 0..STUDY_WEEKS {
            assert!(o.shared[w] <= o.a[w] && o.shared[w] <= o.b[w]);
        }
    }

    #[test]
    fn new_vs_recurring_split() {
        // ip1 attacked on day 0 and day 7: new then recurring.
        let tuples = vec![t(0, 1), t(7, 1), t(7, 2)];
        let nr = new_vs_recurring(&tuples);
        assert_eq!(nr.new_targets[0], 1.0);
        assert_eq!(nr.new_targets[1], 1.0);
        assert_eq!(nr.recurring_targets[1], 1.0);
        // CDF ends at 1.
        assert!((nr.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // CDF is monotone.
        for w in nr.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn new_vs_recurring_empty() {
        let nr = new_vs_recurring(&[]);
        assert!(nr.new_targets.iter().all(|&x| x == 0.0));
        assert!(nr.cdf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn confirmation_shares_exclusive_subsets() {
        let academic = vec![
            ("T".to_string(), vec![t(0, 1), t(0, 2)]),
            ("H".to_string(), vec![t(0, 2), t(0, 3)]),
        ];
        // Industry confirms ip2 (seen by both) and ip3 (H only).
        let industry = vec![t(0, 2), t(0, 3), t(0, 9)];
        let c = confirmation_shares(&academic, &industry);
        let row = |mask: u16| c.rows.iter().find(|(m, _, _)| *m == mask).unwrap();
        // T-only = {ip1}: 0 confirmed.
        assert_eq!(row(0b01).2, 0.0);
        // H-only = {ip3}: fully confirmed.
        assert_eq!(row(0b10).2, 1.0);
        // Both = {ip2}: fully confirmed.
        assert_eq!(row(0b11).2, 1.0);
        // Industry seen by T: 1/3; by H: 2/3; by union: 2/3.
        assert!((c.industry_seen_by[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.industry_seen_by[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.industry_seen_by_union - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_seen_targets_confirmed_when_industry_superset() {
        let academic = vec![("A".to_string(), vec![t(0, 1), t(1, 2)])];
        let industry = vec![t(0, 1), t(1, 2), t(2, 3)];
        let c = confirmation_shares(&academic, &industry);
        assert_eq!(c.rows.len(), 1);
        assert_eq!(c.rows[0].2, 1.0);
    }

    #[test]
    fn ip_overlap_uses_addresses_not_tuples() {
        // Same IP on different days still counts once.
        let a = vec![t(0, 1), t(5, 1), t(0, 2)];
        let b = vec![t(9, 1), t(9, 7)];
        // smaller set has 2 IPs {1,7}; intersection {1} ⇒ 0.5.
        assert!((ip_overlap_share(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(ip_overlap_share(&a, &[]), 0.0);
    }
}
