//! Correlation analysis (Fig. 6, Fig. 14, Appendix F).
//!
//! Spearman rank correlation (the paper's primary choice: "less
//! susceptible to outliers than Pearson"), Pearson as the cross-check,
//! both with two-tailed t-test p-values; correlation matrices over many
//! series with pairwise-complete observations; and the quarterly
//! pairwise box statistics of Appendix F.

use crate::series::WeeklySeries;
use crate::special::t_two_tailed_p;
use serde::{Deserialize, Serialize};

/// A correlation estimate with its significance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Correlation {
    pub rho: f64,
    pub p_value: f64,
    /// Number of pairwise-complete observations.
    pub n: usize,
}

impl Correlation {
    /// The paper greys out coefficients with p > 0.05.
    pub fn significant(&self) -> bool {
        self.p_value <= 0.05
    }
}

/// Pearson product-moment correlation over pairwise-complete values.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<Correlation> {
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| !x.is_nan() && !y.is_nan())
        .map(|(&x, &y)| (x, y))
        .collect();
    correlation_of_pairs(&pairs)
}

/// Spearman rank correlation: Pearson over average ranks.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<Correlation> {
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| !x.is_nan() && !y.is_nan())
        .map(|(&x, &y)| (x, y))
        .collect();
    if pairs.len() < 3 {
        return None;
    }
    let rx = average_ranks(&pairs.iter().map(|(x, _)| *x).collect::<Vec<_>>());
    let ry = average_ranks(&pairs.iter().map(|(_, y)| *y).collect::<Vec<_>>());
    let ranked: Vec<(f64, f64)> = rx.into_iter().zip(ry).collect();
    correlation_of_pairs(&ranked)
}

fn correlation_of_pairs(pairs: &[(f64, f64)]) -> Option<Correlation> {
    let n = pairs.len();
    if n < 3 {
        return None;
    }
    let nf = n as f64;
    let mx = pairs.iter().map(|(x, _)| x).sum::<f64>() / nf;
    let my = pairs.iter().map(|(_, y)| y).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in pairs {
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    let rho = (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0);
    let df = nf - 2.0;
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let t = rho * (df / (1.0 - rho * rho)).sqrt();
        t_two_tailed_p(t, df)
    };
    Some(Correlation { rho, p_value, n })
}

/// Average (fractional) ranks with tie handling, 1-based.
///
/// Ordering is IEEE-754 total order (`f64::total_cmp`), so NaN input no
/// longer panics the sort: positive NaNs rank above `+inf`, negative
/// NaNs below `-inf`, and equal-bit NaNs tie with each other (NaN ≠ NaN
/// under `==`, so tie detection compares total order too). Correlation
/// callers pre-filter NaN pairs; direct callers get a deterministic
/// ranking of whatever they pass in.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len()
            && values[idx[j + 1]].total_cmp(&values[idx[i]]) == std::cmp::Ordering::Equal
        {
            j += 1;
        }
        // Tied block [i, j]: average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// A full pairwise correlation matrix over named series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    pub names: Vec<String>,
    /// Row-major `names.len() × names.len()`; diagonal is rho = 1.
    pub cells: Vec<Option<Correlation>>,
}

impl CorrelationMatrix {
    pub fn get(&self, i: usize, j: usize) -> Option<Correlation> {
        self.cells[i * self.names.len() + j]
    }
}

/// Correlation method selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    Spearman,
    Pearson,
}

/// Compute the pairwise matrix over a set of series.
pub fn correlation_matrix(series: &[WeeklySeries], method: Method) -> CorrelationMatrix {
    let n = series.len();
    let mut cells = vec![None; n * n];
    for i in 0..n {
        for j in 0..n {
            cells[i * n + j] = if i == j {
                Some(Correlation {
                    rho: 1.0,
                    p_value: 0.0,
                    n: series[i].present().count(),
                })
            } else {
                match method {
                    Method::Spearman => spearman(&series[i].values, &series[j].values),
                    Method::Pearson => pearson(&series[i].values, &series[j].values),
                }
            };
        }
    }
    CorrelationMatrix {
        names: series.iter().map(|s| s.name.clone()).collect(),
        cells,
    }
}

/// Box statistics over a set of quarterly correlations (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub mean: f64,
    pub q3: f64,
    pub max: f64,
    pub n: usize,
}

/// Compute box statistics from raw values (NaNs dropped).
pub fn box_stats(values: &[f64]) -> Option<BoxStats> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        // Linear interpolation between closest ranks.
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (v[hi] - v[lo]) * (pos - lo as f64)
        }
    };
    Some(BoxStats {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        mean: v.iter().sum::<f64>() / v.len() as f64,
        q3: q(0.75),
        max: v[v.len() - 1],
        n: v.len(),
    })
}

/// Per-quarter Spearman correlations between two weekly series:
/// the study's 18 quarters, each contributing one coefficient
/// (insufficient quarters yield NaN and are dropped by `box_stats`).
pub fn quarterly_correlations(a: &WeeklySeries, b: &WeeklySeries) -> Vec<f64> {
    let weeks = a.values.len().min(b.values.len());
    let mut out = Vec::new();
    // Quarter boundaries in week indices via the calendar.
    let mut q_start = 0usize;
    let mut current_q = simcore::SimTime::from_weeks(0).quarter_index();
    for w in 1..=weeks {
        let q = if w < weeks {
            simcore::SimTime::from_weeks(w as i64).quarter_index()
        } else {
            i64::MAX
        };
        if q != current_q {
            let xs = &a.values[q_start..w];
            let ys = &b.values[q_start..w];
            out.push(match spearman(xs, ys) {
                Some(c) => c.rho,
                None => f64::NAN,
            });
            q_start = w;
            current_q = q;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let c = pearson(&xs, &ys).unwrap();
        assert!((c.rho - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-10);
    }

    #[test]
    fn pearson_anticorrelation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -x).collect();
        let c = pearson(&xs, &ys).unwrap();
        assert!((c.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        // Spearman sees through monotone nonlinearity; Pearson does not.
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp().min(1e300)).collect();
        let s = spearman(&xs, &ys).unwrap();
        assert!((s.rho - 1.0).abs() < 1e-12);
        let p = pearson(&xs, &ys).unwrap();
        assert!(p.rho < 0.9);
    }

    #[test]
    fn spearman_outlier_robustness() {
        // One huge outlier wrecks Pearson but barely moves Spearman —
        // the paper's §6.3 rationale.
        let mut xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| x + 0.1).collect();
        xs.push(0.0);
        ys.push(1e9);
        let s = spearman(&xs, &ys).unwrap();
        let p = pearson(&xs, &ys).unwrap();
        assert!(s.rho > 0.85, "spearman {}", s.rho);
        assert!(p.rho < 0.5, "pearson {}", p.rho);
    }

    #[test]
    fn nan_pairs_skipped() {
        let xs = vec![1.0, 2.0, f64::NAN, 4.0, 5.0, 6.0];
        let ys = vec![2.0, 4.0, 6.0, f64::NAN, 10.0, 12.0];
        let c = pearson(&xs, &ys).unwrap();
        assert_eq!(c.n, 4);
        assert!((c.rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn insufficient_data_is_none() {
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0]).is_none());
        assert!(spearman(&[1.0], &[1.0]).is_none());
        // Constant series: undefined correlation.
        assert!(pearson(&[1.0; 10], &(0..10).map(|i| i as f64).collect::<Vec<_>>()).is_none());
    }

    #[test]
    fn uncorrelated_noise_insignificant() {
        // Deterministic pseudo-noise via a simple LCG.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<f64> = (0..100).map(|_| next()).collect();
        let ys: Vec<f64> = (0..100).map(|_| next()).collect();
        let c = spearman(&xs, &ys).unwrap();
        assert!(c.rho.abs() < 0.25, "rho {}", c.rho);
        assert!(!c.significant() || c.rho.abs() < 0.25);
    }

    #[test]
    fn average_ranks_with_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn average_ranks_nan_does_not_panic() {
        // Regression: `partial_cmp(..).unwrap()` aborted on any NaN in
        // this public API. Total order ranks NaN above +inf.
        let r = average_ranks(&[2.0, f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(r, vec![2.0, 4.0, 1.0, 3.0]);
        // Negative NaN ranks below -inf; identical NaNs tie.
        let neg_nan = -f64::NAN;
        let r = average_ranks(&[neg_nan, f64::NEG_INFINITY, neg_nan]);
        assert_eq!(r, vec![1.5, 3.0, 1.5]);
    }

    #[test]
    fn spearman_p_value_reference() {
        // Hand check: displacements d = [0,1,1,0,0,1,1,0,1,1], Σd² = 6,
        // ρ = 1 − 6·6 / (10·99) = 0.963636…
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys = vec![1.0, 3.0, 2.0, 4.0, 5.0, 7.0, 6.0, 8.0, 10.0, 9.0];
        let c = spearman(&xs, &ys).unwrap();
        assert!((c.rho - 0.963_636).abs() < 1e-4, "rho {}", c.rho);
        assert!(c.p_value < 1e-3);
        assert!(c.significant());
    }

    #[test]
    fn matrix_shape_and_diagonal() {
        let series = vec![
            WeeklySeries::new("a", (0..50).map(|i| i as f64).collect()),
            WeeklySeries::new("b", (0..50).map(|i| (50 - i) as f64).collect()),
            WeeklySeries::new("c", (0..50).map(|i| (i * i) as f64).collect()),
        ];
        let m = correlation_matrix(&series, Method::Spearman);
        assert_eq!(m.names.len(), 3);
        for i in 0..3 {
            assert!((m.get(i, i).unwrap().rho - 1.0).abs() < 1e-12);
        }
        assert!((m.get(0, 1).unwrap().rho + 1.0).abs() < 1e-12);
        assert!((m.get(0, 2).unwrap().rho - 1.0).abs() < 1e-12);
        // Symmetric.
        let ab = m.get(0, 1).unwrap().rho;
        let ba = m.get(1, 0).unwrap().rho;
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn box_stats_basics() {
        let b = box_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.n, 5);
    }

    #[test]
    fn box_stats_drops_nans_and_handles_empty() {
        let b = box_stats(&[f64::NAN, 1.0, 3.0]).unwrap();
        assert_eq!(b.n, 2);
        assert_eq!(b.median, 2.0);
        assert!(box_stats(&[f64::NAN]).is_none());
        assert!(box_stats(&[]).is_none());
    }

    #[test]
    fn quarterly_correlations_count() {
        // Full-length study series ⇒ 18 quarters (2019Q1..2023Q2).
        let a = WeeklySeries::new("a", (0..simcore::STUDY_WEEKS).map(|i| i as f64).collect());
        let b = WeeklySeries::new("b", (0..simcore::STUDY_WEEKS).map(|i| (i * 2) as f64).collect());
        let qs = quarterly_correlations(&a, &b);
        assert_eq!(qs.len(), 18);
        // Perfectly correlated in every quarter.
        assert!(qs.iter().all(|&r| (r - 1.0).abs() < 1e-9));
    }
}
