//! Special mathematical functions needed for the correlation p-values
//! (Fig. 6): log-gamma, the regularized incomplete beta function, and
//! the Student-t two-tailed survival function.
//!
//! Implemented here (with reference-value tests against SciPy outputs)
//! rather than pulling a stats crate — the offline dependency set does
//! not include one, and these four functions are all the paper's
//! statistics require.

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// n = 9 coefficients). Accurate to ~1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function I_x(a, b) via the Lentz
/// continued-fraction expansion (Numerical Recipes §6.4).
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai needs positive parameters");
    assert!((0.0..=1.0).contains(&x), "betai x out of range: {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for betai (modified Lentz method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-tailed p-value of a Student-t statistic with `df` degrees of
/// freedom: P(|T| >= |t|).
pub fn t_two_tailed_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    if !t.is_finite() {
        return 0.0;
    }
    betai(df / 2.0, 0.5, df / (df + t * t))
}

/// Standard normal CDF via erf (Abramowitz & Stegun 7.1.26 polynomial;
/// |error| < 1.5e-7 — ample for reporting).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3_628_800f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn betai_reference_values() {
        // SciPy: betainc(2, 3, 0.5) = 0.6875
        close(betai(2.0, 3.0, 0.5), 0.6875, 1e-10);
        // betainc(0.5, 0.5, 0.3) = 0.3690101196
        close(betai(0.5, 0.5, 0.3), 0.369_010_119_6, 1e-8);
        // betainc(5, 5, 0.5) = 0.5 (symmetry)
        close(betai(5.0, 5.0, 0.5), 0.5, 1e-12);
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            let v = betai(3.0, 2.0, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn t_pvalue_reference() {
        // SciPy: 2*t.sf(2.0, 10) = 0.07338803
        close(t_two_tailed_p(2.0, 10.0), 0.073_388_03, 1e-6);
        // 2*t.sf(0, df) = 1
        close(t_two_tailed_p(0.0, 5.0), 1.0, 1e-12);
        // Large |t| → p → 0
        assert!(t_two_tailed_p(50.0, 30.0) < 1e-10);
        // Symmetric in t.
        close(t_two_tailed_p(-2.0, 10.0), t_two_tailed_p(2.0, 10.0), 1e-12);
    }

    #[test]
    fn t_pvalue_large_df_approaches_normal() {
        // With df → ∞ the t distribution approaches N(0,1):
        // 2*(1 - Φ(1.96)) ≈ 0.05.
        close(t_two_tailed_p(1.96, 100_000.0), 0.05, 1e-3);
    }

    #[test]
    fn erf_reference() {
        // The A&S 7.1.26 polynomial has |error| < 1.5e-7 everywhere,
        // including a ~1e-9 residual at x = 0.
        close(erf(0.0), 0.0, 1e-6);
        close(erf(1.0), 0.842_700_79, 1e-6);
        close(erf(-1.0), -0.842_700_79, 1e-6);
        close(erf(3.0), 0.999_977_9, 1e-6);
    }

    #[test]
    fn normal_cdf_reference() {
        close(normal_cdf(0.0), 0.5, 1e-6);
        close(normal_cdf(1.96), 0.975, 1e-4);
        close(normal_cdf(-1.96), 0.025, 1e-4);
    }
}
