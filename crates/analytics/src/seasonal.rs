//! Seasonal structure of weekly series (§6.1: "relative attack counts
//! reached a peak during the first half of the year (2019-2022)
//! followed by a valley").

use crate::series::WeeklySeries;
use serde::{Deserialize, Serialize};
use simcore::time::week_start_date;

/// Average value per calendar month (index 0 = January), NaNs skipped.
/// Months with no present data are NaN.
pub fn monthly_profile(series: &WeeklySeries) -> [f64; 12] {
    let mut sums = [0.0f64; 12];
    let mut counts = [0usize; 12];
    for (w, v) in series.present() {
        let month = week_start_date(w as i64).month as usize - 1;
        sums[month] += v;
        counts[month] += 1;
    }
    let mut out = [f64::NAN; 12];
    for m in 0..12 {
        if counts[m] > 0 {
            out[m] = sums[m] / counts[m] as f64;
        }
    }
    out
}

/// Summary of a series' half-year asymmetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeasonalSummary {
    /// Mean over January–June.
    pub h1_mean: f64,
    /// Mean over July–December.
    pub h2_mean: f64,
    /// h1 / h2 — above 1 ⇒ first-half peaks (the paper's pattern).
    pub h1_over_h2: f64,
    /// 1-based calendar month with the highest average.
    pub peak_month: u8,
}

pub fn seasonal_summary(series: &WeeklySeries) -> Option<SeasonalSummary> {
    let profile = monthly_profile(series);
    let mean = |range: std::ops::Range<usize>| -> f64 {
        let vals: Vec<f64> = profile[range].iter().copied().filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let h1 = mean(0..6);
    let h2 = mean(6..12);
    if h1.is_nan() || h2.is_nan() || h2 == 0.0 {
        return None;
    }
    let peak_month = profile
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|a, b| a.1.total_cmp(b.1))?
        .0 as u8
        + 1;
    Some(SeasonalSummary {
        h1_mean: h1,
        h2_mean: h2,
        h1_over_h2: h1 / h2,
        peak_month,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A full-study series whose value equals its calendar month.
    fn month_indexed() -> WeeklySeries {
        let values: Vec<f64> = (0..simcore::STUDY_WEEKS)
            .map(|w| week_start_date(w as i64).month as f64)
            .collect();
        WeeklySeries::new("months", values)
    }

    #[test]
    fn profile_recovers_month_values() {
        let profile = monthly_profile(&month_indexed());
        for (m, v) in profile.iter().enumerate() {
            assert!((v - (m as f64 + 1.0)).abs() < 1e-9, "month {m}: {v}");
        }
    }

    #[test]
    fn summary_detects_h1_peaks() {
        // Values high Jan-Jun, low Jul-Dec.
        let values: Vec<f64> = (0..simcore::STUDY_WEEKS)
            .map(|w| {
                if week_start_date(w as i64).month <= 6 {
                    10.0
                } else {
                    5.0
                }
            })
            .collect();
        let s = seasonal_summary(&WeeklySeries::new("x", values)).unwrap();
        assert!((s.h1_over_h2 - 2.0).abs() < 0.05, "{:?}", s);
        assert!(s.peak_month <= 6);
    }

    #[test]
    fn summary_flat_is_one() {
        let s = seasonal_summary(&WeeklySeries::new("flat", vec![3.0; 235])).unwrap();
        assert!((s.h1_over_h2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nan_months_skipped() {
        // Only January present.
        let values: Vec<f64> = (0..simcore::STUDY_WEEKS)
            .map(|w| {
                if week_start_date(w as i64).month == 1 {
                    7.0
                } else {
                    f64::NAN
                }
            })
            .collect();
        let profile = monthly_profile(&WeeklySeries::new("jan", values));
        assert!((profile[0] - 7.0).abs() < 1e-9);
        assert!(profile[6].is_nan());
    }

    #[test]
    fn summary_none_without_h2_data() {
        let values: Vec<f64> = (0..simcore::STUDY_WEEKS)
            .map(|w| {
                if week_start_date(w as i64).month <= 3 {
                    1.0
                } else {
                    f64::NAN
                }
            })
            .collect();
        assert!(seasonal_summary(&WeeklySeries::new("h1only", values)).is_none());
    }
}
