//! Block-bootstrap confidence intervals for trend statistics.
//!
//! The paper reports regression slopes without uncertainty. Weekly
//! attack counts are autocorrelated (campaigns, seasons), so a naive
//! i.i.d. bootstrap would understate variance; we resample contiguous
//! blocks of weeks (moving-block bootstrap) and refit the trend on each
//! replicate.

use crate::series::WeeklySeries;
use simcore::SimRng;

/// A bootstrap interval for the 4-year relative change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendInterval {
    /// Point estimate: fitted relative change over 208 weeks.
    pub change_4y: f64,
    /// 2.5 % quantile of the bootstrap distribution.
    pub lo: f64,
    /// 97.5 % quantile.
    pub hi: f64,
    pub replicates: usize,
}

impl TrendInterval {
    /// Is the trend's sign unambiguous at the 95 % level?
    pub fn sign_significant(&self) -> bool {
        (self.lo > 0.0 && self.hi > 0.0) || (self.lo < 0.0 && self.hi < 0.0)
    }
}

fn change_4y_of(series: &WeeklySeries) -> Option<f64> {
    series
        .linear_regression()
        .as_ref()
        .and_then(crate::series::relative_change_4y)
}

/// Moving-block bootstrap of the 4-year relative change.
///
/// Blocks of `block_len` consecutive weeks are drawn with replacement
/// and concatenated to the original length; each replicate keeps the
/// week *indices* of the original series (the regression's x-axis) but
/// permutes block contents — the standard recipe for trend uncertainty
/// under serial dependence.
pub fn trend_interval(
    series: &WeeklySeries,
    block_len: usize,
    replicates: usize,
    rng: &mut SimRng,
) -> Option<TrendInterval> {
    let n = series.values.len();
    if n < block_len.max(2) || replicates == 0 {
        return None;
    }
    let point = change_4y_of(series)?;
    // Residual-based resampling: fit once, bootstrap the residual
    // blocks, re-add the fitted line. This keeps the trend identified
    // while resampling the noise structure.
    let reg = series.linear_regression()?;
    let fitted: Vec<f64> = (0..n).map(|i| reg.intercept + reg.slope * i as f64).collect();
    let residuals: Vec<f64> = series
        .values
        .iter()
        .zip(&fitted)
        .map(|(&v, &f)| if v.is_nan() { f64::NAN } else { v - f })
        .collect();
    let max_start = n - block_len;
    let mut changes = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let mut resampled = Vec::with_capacity(n);
        while resampled.len() < n {
            let start = rng.usize_below(max_start + 1);
            let take = block_len.min(n - resampled.len());
            resampled.extend_from_slice(&residuals[start..start + take]);
        }
        let values: Vec<f64> = resampled
            .iter()
            .zip(&fitted)
            .map(|(&r, &f)| if r.is_nan() { f64::NAN } else { f + r })
            .collect();
        if let Some(c) = change_4y_of(&WeeklySeries::new("replicate", values)) {
            changes.push(c);
        }
    }
    if changes.is_empty() {
        return None;
    }
    changes.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        let pos = p * (changes.len() - 1) as f64;
        changes[pos.round() as usize]
    };
    Some(TrendInterval {
        change_4y: point,
        lo: q(0.025),
        hi: q(0.975),
        replicates: changes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_line(slope: f64, n: usize, noise: f64, seed: u64) -> WeeklySeries {
        let mut rng = SimRng::new(seed);
        let values: Vec<f64> = (0..n)
            .map(|i| 10.0 + slope * i as f64 + noise * (rng.f64() - 0.5))
            .collect();
        WeeklySeries::new("x", values)
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let s = noisy_line(0.05, 235, 2.0, 1);
        let mut rng = SimRng::new(2);
        let iv = trend_interval(&s, 8, 400, &mut rng).unwrap();
        assert!(iv.lo <= iv.change_4y && iv.change_4y <= iv.hi, "{iv:?}");
        assert!(iv.replicates >= 390);
    }

    #[test]
    fn strong_trend_is_significant() {
        let s = noisy_line(0.05, 235, 1.0, 3);
        let mut rng = SimRng::new(4);
        let iv = trend_interval(&s, 8, 400, &mut rng).unwrap();
        assert!(iv.sign_significant(), "{iv:?}");
        assert!(iv.lo > 0.0);
    }

    #[test]
    fn pure_noise_is_not_significant() {
        let s = noisy_line(0.0, 235, 8.0, 5);
        let mut rng = SimRng::new(6);
        let iv = trend_interval(&s, 8, 400, &mut rng).unwrap();
        assert!(!iv.sign_significant(), "{iv:?}");
    }

    #[test]
    fn interval_widens_with_noise() {
        let mut rng = SimRng::new(7);
        let quiet = trend_interval(&noisy_line(0.02, 235, 0.5, 8), 8, 300, &mut rng).unwrap();
        let loud = trend_interval(&noisy_line(0.02, 235, 8.0, 8), 8, 300, &mut rng).unwrap();
        assert!(loud.hi - loud.lo > 2.0 * (quiet.hi - quiet.lo), "quiet {quiet:?} loud {loud:?}");
    }

    #[test]
    fn handles_nan_gaps() {
        let mut s = noisy_line(0.05, 235, 1.0, 9);
        s.mask_range(30, 55);
        let mut rng = SimRng::new(10);
        let iv = trend_interval(&s, 8, 200, &mut rng).unwrap();
        assert!(iv.change_4y.is_finite());
        assert!(iv.lo.is_finite() && iv.hi.is_finite());
    }

    #[test]
    fn degenerate_inputs_none() {
        let mut rng = SimRng::new(11);
        assert!(trend_interval(&WeeklySeries::new("x", vec![1.0]), 8, 100, &mut rng).is_none());
        let s = noisy_line(0.01, 100, 1.0, 12);
        assert!(trend_interval(&s, 8, 0, &mut rng).is_none());
    }

    #[test]
    fn deterministic_given_rng() {
        let s = noisy_line(0.03, 200, 2.0, 13);
        let a = trend_interval(&s, 8, 100, &mut SimRng::new(14)).unwrap();
        let b = trend_interval(&s, 8, 100, &mut SimRng::new(14)).unwrap();
        assert_eq!(a, b);
    }
}
