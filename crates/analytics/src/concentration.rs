//! Concentration statistics over target distributions (§7.1 / Table 4:
//! "7 of our top 10 most targeted ASes belong to hosters" — how
//! concentrated is the victim population?).

use serde::{Deserialize, Serialize};

/// Concentration summary of a count distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Concentration {
    /// Gini coefficient in [0, 1): 0 = perfectly even, →1 = one entity
    /// holds everything.
    pub gini: f64,
    /// Share held by the single largest entity.
    pub top1_share: f64,
    /// Share held by the ten largest entities.
    pub top10_share: f64,
    /// Number of entities.
    pub n: usize,
}

/// Compute concentration statistics from per-entity counts.
/// Zero-count entities contribute to `n` and flatten nothing; an empty
/// or all-zero input returns `None`.
pub fn concentration(counts: &[u64]) -> Option<Concentration> {
    let total: u64 = counts.iter().sum();
    if counts.is_empty() || total == 0 {
        return None;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total_f = total as f64;
    // Gini via the sorted-index formula:
    // G = (2 * Σ_i i*x_i) / (n * Σ x) - (n + 1) / n, i being 1-based
    // ranks in ascending order.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    let gini = (2.0 * weighted) / (n * total_f) - (n + 1.0) / n;
    let top1 = sorted.last().copied().unwrap_or(0) as f64 / total_f;
    let top10: u64 = sorted.iter().rev().take(10).sum();
    Some(Concentration {
        gini: gini.clamp(0.0, 1.0),
        top1_share: top1,
        top10_share: top10 as f64 / total_f,
        n: sorted.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_even_is_zero() {
        let c = concentration(&[10, 10, 10, 10]).unwrap();
        assert!(c.gini.abs() < 1e-12, "gini {}", c.gini);
        assert_eq!(c.top1_share, 0.25);
        assert_eq!(c.top10_share, 1.0);
    }

    #[test]
    fn single_holder_is_extreme() {
        let mut counts = vec![0u64; 100];
        counts[7] = 1000;
        let c = concentration(&counts).unwrap();
        assert!(c.gini > 0.98, "gini {}", c.gini);
        assert_eq!(c.top1_share, 1.0);
    }

    #[test]
    fn known_small_case() {
        // [1, 3]: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
        let c = concentration(&[1, 3]).unwrap();
        assert!((c.gini - 0.25).abs() < 1e-12);
        assert_eq!(c.top1_share, 0.75);
    }

    #[test]
    fn order_insensitive() {
        let a = concentration(&[5, 1, 9, 3]).unwrap();
        let b = concentration(&[9, 3, 5, 1]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_skew_more_gini() {
        let even = concentration(&[25, 25, 25, 25]).unwrap();
        let mild = concentration(&[40, 30, 20, 10]).unwrap();
        let harsh = concentration(&[97, 1, 1, 1]).unwrap();
        assert!(even.gini < mild.gini);
        assert!(mild.gini < harsh.gini);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(concentration(&[]).is_none());
        assert!(concentration(&[0, 0]).is_none());
        let c = concentration(&[7]).unwrap();
        assert_eq!(c.top1_share, 1.0);
        assert!(c.gini.abs() < 1e-12);
    }
}
