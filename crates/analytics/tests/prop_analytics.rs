//! NaN-robustness property suites (DESIGN.md §6): the analytics layer
//! orders floats with IEEE-754 `total_cmp`, so NaN and ±∞ contamination
//! must never panic — and must leave the *finite* part of every
//! statistic lawful. These suites mix adversarial specials into
//! otherwise well-behaved vectors and assert the documented degraded
//! behaviour, complementing the clean-input invariants in
//! `prop_stats.rs`.

use analytics::corr::average_ranks;
use analytics::{box_stats, median, pearson, spearman, Trend, WeeklySeries};
use proptest::prelude::*;

/// A finite value, or one of the specials, chosen by a selector byte:
/// roughly one in four values is hostile.
fn poisoned(finite: f64, selector: u8) -> f64 {
    match selector % 12 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => finite,
    }
}

fn poisoned_vec(
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-1.0e6f64..1.0e6, any::<u8>()), len)
        .prop_map(|pairs| pairs.into_iter().map(|(v, s)| poisoned(v, s)).collect())
}

proptest! {
    // ---- corr ------------------------------------------------------

    /// `average_ranks` under NaN: still a permutation of 1..=n (NaN
    /// sorts above +∞ in the total order, so every value gets a rank),
    /// and the ranks of the *finite* values still respect their order.
    #[test]
    fn ranks_with_nan_stay_a_permutation(values in poisoned_vec(1..50)) {
        let ranks = average_ranks(&values);
        prop_assert_eq!(ranks.len(), values.len());
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6, "rank sum {sum}");
        for i in 0..values.len() {
            prop_assert!(ranks[i] >= 1.0 && ranks[i] <= n);
            for j in 0..values.len() {
                if values[i].is_finite() && values[j].is_finite() && values[i] < values[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    /// NaN-ranking is placement-stable: a NaN always outranks every
    /// finite value and +∞ (the documented `total_cmp` placement).
    #[test]
    fn nan_ranks_highest(values in poisoned_vec(2..40)) {
        let ranks = average_ranks(&values);
        for i in 0..values.len() {
            if !values[i].is_nan() {
                continue;
            }
            for j in 0..values.len() {
                if values[j].is_finite() || values[j] == f64::INFINITY {
                    prop_assert!(
                        ranks[i] > ranks[j],
                        "NaN rank {} not above {} ({})",
                        ranks[i], ranks[j], values[j]
                    );
                }
            }
        }
    }

    /// Correlations on poisoned inputs never panic, and whatever they
    /// return stays in the lawful ranges.
    #[test]
    fn correlations_survive_poison(
        xs in poisoned_vec(0..50),
        ys in poisoned_vec(0..50),
    ) {
        for f in [pearson, spearman] {
            if let Some(c) = f(&xs, &ys) {
                prop_assert!(c.rho.is_nan() || (-1.0..=1.0).contains(&c.rho));
                prop_assert!(c.p_value.is_nan() || (0.0..=1.0).contains(&c.p_value));
                prop_assert!(c.n <= xs.len().min(ys.len()));
            }
        }
    }

    // ---- box_stats -------------------------------------------------

    /// Box statistics under NaN: NaNs are dropped (they are the
    /// missing-data marker), an all-NaN sample is absent rather than
    /// garbage, and the surviving sample keeps the usual ordering
    /// min ≤ q1 ≤ median ≤ q3 ≤ max in the IEEE total order.
    #[test]
    fn box_stats_survive_poison(values in poisoned_vec(1..50)) {
        let non_nan = values.iter().filter(|v| !v.is_nan()).count();
        match box_stats(&values) {
            None => prop_assert_eq!(non_nan, 0, "stats dropped a non-NaN sample"),
            Some(b) => {
                prop_assert_eq!(b.n, non_nan);
                prop_assert!(b.min.total_cmp(&b.max).is_le());
                if values.iter().all(|v| v.is_finite()) {
                    prop_assert!(b.min <= b.q1 + 1e-9);
                    prop_assert!(b.q1 <= b.median + 1e-9);
                    prop_assert!(b.median <= b.q3 + 1e-9);
                    prop_assert!(b.q3 <= b.max + 1e-9);
                }
                // Finite quartiles interpolate the sorted sample, so
                // they stay inside the finite envelope of the input.
                let lo = values.iter().copied().filter(|v| v.is_finite())
                    .fold(f64::INFINITY, f64::min);
                let hi = values.iter().copied().filter(|v| v.is_finite())
                    .fold(f64::NEG_INFINITY, f64::max);
                for q in [b.q1, b.median, b.q3] {
                    if q.is_finite() && lo.is_finite() {
                        prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
                    }
                }
            }
        }
    }

    // ---- series ----------------------------------------------------

    /// `median` tolerates NaN (masked weeks use NaN as the missing
    /// marker): the result over a poisoned vector equals the median
    /// over some subset of the total order — crucially, no panic, and
    /// for an all-finite vector it is bounded by the extremes.
    #[test]
    fn median_survives_poison(values in poisoned_vec(1..60)) {
        let m = median(&values);
        if values.iter().all(|v| v.is_finite()) {
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo && m <= hi);
        }
    }

    /// NaN weeks are exactly the missing-data marker: the fit over a
    /// NaN-holed series matches a reference OLS over its present
    /// (week, value) pairs, and trend classification stays total even
    /// with ±∞ contamination.
    #[test]
    fn regression_skips_nan_weeks(
        finite in proptest::collection::vec(-1.0e4f64..1.0e4, 2..120),
        holes in any::<u64>(),
    ) {
        let values: Vec<f64> = finite
            .iter()
            .enumerate()
            .map(|(i, &v)| if holes >> (i % 64) & 1 == 1 { f64::NAN } else { v })
            .collect();
        let s = WeeklySeries::new("holed", values);
        let pairs: Vec<(f64, f64)> = s.present().map(|(i, v)| (i as f64, v)).collect();
        let fit = s.linear_regression();
        if pairs.len() < 2 {
            prop_assert!(fit.is_none());
        } else if let Some(r) = fit {
            // Reference OLS over the present pairs.
            let n = pairs.len() as f64;
            let sx: f64 = pairs.iter().map(|(x, _)| x).sum();
            let sy: f64 = pairs.iter().map(|(_, y)| y).sum();
            let sxx: f64 = pairs.iter().map(|(x, _)| x * x).sum();
            let sxy: f64 = pairs.iter().map(|(x, y)| x * y).sum();
            let denom = n * sxx - sx * sx;
            prop_assume!(denom.abs() > 1e-9);
            let slope = (n * sxy - sx * sy) / denom;
            let intercept = (sy - slope * sx) / n;
            prop_assert!((r.slope - slope).abs() < 1e-6 * slope.abs().max(1.0),
                "slope {} vs reference {}", r.slope, slope);
            prop_assert!((r.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0),
                "intercept {} vs reference {}", r.intercept, intercept);
        }
    }

    /// Trend classification is total regardless of contamination.
    #[test]
    fn trend_is_total_under_poison(values in poisoned_vec(0..120)) {
        let t = WeeklySeries::new("p", values).trend();
        prop_assert!(matches!(t, Trend::Increasing | Trend::Decreasing | Trend::Steady));
    }

    /// Smoothing never panics on poison and preserves length.
    #[test]
    fn smoothing_survives_poison(values in poisoned_vec(0..80), span in 1usize..20) {
        let s = WeeklySeries::new("x", values);
        prop_assert_eq!(s.ewma(span).len(), s.len());
        prop_assert_eq!(s.centered_ma(span).len(), s.len());
        prop_assert_eq!(s.normalize_to_baseline().len(), s.len());
    }
}
