//! Property-based tests for the statistical machinery.

use analytics::{
    box_stats, median, pearson, spearman, upset, weekly_target_counts, WeeklySeries,
};
use analytics::corr::average_ranks;
use netmodel::Ipv4;
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, len)
}

proptest! {
    /// Ranks are a permutation-with-ties of 1..=n: they sum to
    /// n(n+1)/2 and lie within [1, n].
    #[test]
    fn ranks_sum_invariant(values in finite_vec(1..60)) {
        let ranks = average_ranks(&values);
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(ranks.iter().all(|&r| r >= 1.0 && r <= n));
    }

    /// Ranks preserve order: x[i] < x[j] implies rank[i] < rank[j].
    #[test]
    fn ranks_monotone(values in finite_vec(2..40)) {
        let ranks = average_ranks(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
                if values[i] == values[j] {
                    prop_assert!((ranks[i] - ranks[j]).abs() < 1e-12);
                }
            }
        }
    }

    /// Correlations live in [-1, 1], are symmetric, and are exactly +1
    /// against a positively scaled copy.
    #[test]
    fn correlation_bounds_and_symmetry(xs in finite_vec(3..60), shift in -100.0f64..100.0) {
        let ys: Vec<f64> = xs.iter().rev().map(|x| x + shift).collect();
        for f in [pearson, spearman] {
            if let Some(c) = f(&xs, &ys) {
                prop_assert!((-1.0..=1.0).contains(&c.rho));
                prop_assert!((0.0..=1.0).contains(&c.p_value));
                let sym = f(&ys, &xs).unwrap();
                prop_assert!((c.rho - sym.rho).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn correlation_self_is_one(xs in finite_vec(3..60), scale in 0.1f64..100.0) {
        let ys: Vec<f64> = xs.iter().map(|x| x * scale + 3.0).collect();
        // Degenerate constant vectors are None; skip those.
        if let Some(c) = pearson(&xs, &ys) {
            prop_assert!((c.rho - 1.0).abs() < 1e-6, "rho {}", c.rho);
        }
        if let Some(c) = spearman(&xs, &ys) {
            prop_assert!((c.rho - 1.0).abs() < 1e-6);
        }
    }

    /// Spearman is invariant under any strictly monotone transform.
    #[test]
    fn spearman_monotone_invariant(xs in finite_vec(3..50)) {
        let ys: Vec<f64> = xs.iter().map(|x| x.atan()).collect();
        if let (Some(a), Some(b)) = (spearman(&xs, &xs), spearman(&xs, &ys)) {
            prop_assert!((a.rho - b.rho).abs() < 1e-9);
        }
    }

    /// Box stats are ordered: min <= q1 <= median <= q3 <= max, and the
    /// mean lies within [min, max].
    #[test]
    fn box_stats_ordered(values in finite_vec(1..60)) {
        let b = box_stats(&values).unwrap();
        prop_assert!(b.min <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.max + 1e-9);
        prop_assert!(b.mean >= b.min - 1e-9 && b.mean <= b.max + 1e-9);
        prop_assert_eq!(b.n, values.len());
    }

    /// The median is order-insensitive and bounded by extremes.
    #[test]
    fn median_properties(mut values in finite_vec(1..60)) {
        let m1 = median(&values);
        values.reverse();
        let m2 = median(&values);
        prop_assert!((m1 - m2).abs() < 1e-12);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m1 >= lo && m1 <= hi);
    }

    /// Normalization: scaling the input leaves the normalized series
    /// unchanged (scale invariance of the §5 aggregation).
    #[test]
    fn normalization_scale_invariant(
        values in proptest::collection::vec(0.1f64..1e5, 20..120),
        scale in 0.001f64..1000.0,
    ) {
        let a = WeeklySeries::new("a", values.clone()).normalize_to_baseline();
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let b = WeeklySeries::new("b", scaled).normalize_to_baseline();
        for (x, y) in a.values.iter().zip(&b.values) {
            prop_assert!((x - y).abs() < 1e-6 * x.abs().max(1.0));
        }
    }

    /// EWMA output stays within the running min/max envelope of its
    /// input (it is a convex combination).
    #[test]
    fn ewma_within_envelope(values in finite_vec(1..120), span in 1usize..30) {
        let s = WeeklySeries::new("x", values.clone()).ewma(span);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (i, &v) in values.iter().enumerate() {
            lo = lo.min(v);
            hi = hi.max(v);
            prop_assert!(s.values[i] >= lo - 1e-9 && s.values[i] <= hi + 1e-9);
        }
    }

    /// Regression of an exactly linear series recovers its parameters.
    #[test]
    fn regression_exact_on_lines(
        slope in -100.0f64..100.0,
        intercept in -1e4f64..1e4,
        n in 2usize..200,
    ) {
        let values: Vec<f64> = (0..n).map(|i| intercept + slope * i as f64).collect();
        let r = WeeklySeries::new("x", values).linear_regression().unwrap();
        prop_assert!((r.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((r.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
    }
}

proptest! {
    /// UpSet invariants on arbitrary target sets: exclusive counts sum
    /// to the distinct total, each set size equals the sum of exclusive
    /// counts over masks containing it, and shares sum to 1.
    #[test]
    fn upset_conservation(
        raw in proptest::collection::vec(
            (0u8..4, 0i64..20, 0u32..50),
            0..200,
        ),
    ) {
        let mut sets: Vec<(String, Vec<(i64, Ipv4)>)> = (0..4)
            .map(|i| (format!("S{i}"), Vec::new()))
            .collect();
        for (set, day, ip) in raw {
            sets[set as usize].1.push((day, Ipv4(ip)));
        }
        let u = upset(&sets);
        let exclusive_total: usize = u.exclusive.values().sum();
        prop_assert_eq!(exclusive_total, u.total_distinct);
        for (i, &size) in u.set_sizes.iter().enumerate() {
            let by_mask: usize = u
                .exclusive
                .iter()
                .filter(|(m, _)| *m & (1 << i) != 0)
                .map(|(_, c)| c)
                .sum();
            prop_assert_eq!(size, by_mask);
        }
        if u.total_distinct > 0 {
            let share_sum: f64 = u.exclusive.keys().map(|&m| u.share(m)).sum();
            prop_assert!((share_sum - 1.0).abs() < 1e-9);
        }
    }

    /// Weekly target counts conserve the number of distinct in-window
    /// tuples.
    #[test]
    fn weekly_counts_conserve(
        tuples in proptest::collection::vec((0i64..1640, 0u32..1000), 0..300),
    ) {
        let tuples: Vec<(i64, Ipv4)> =
            tuples.into_iter().map(|(d, ip)| (d, Ipv4(ip))).collect();
        let counts = weekly_target_counts(&tuples);
        let distinct: std::collections::HashSet<_> = tuples.iter().collect();
        prop_assert_eq!(counts.iter().sum::<f64>() as usize, distinct.len());
    }
}
