//! Property-based tests for the honeypot detector and aggregation
//! chain.

use attackgen::{AttackId, ObservedAttack, PacketEvent};
use honeypot::{
    merge_sensor_flows, reconstruct_carpet_attacks, HoneypotConfig, HoneypotDetector,
};
use netmodel::{AmpVector, InternetPlan, Ipv4, NetScale, Transport};
use proptest::prelude::*;
use simcore::{SimRng, SimTime};

fn plan() -> InternetPlan {
    let mut rng = SimRng::new(100);
    InternetPlan::build(&NetScale::tiny(), &mut rng)
}

fn request(t: i64, victim: u32, sensor: Ipv4, port: u16, src_port: u16) -> PacketEvent {
    PacketEvent {
        time: SimTime(t),
        src: Ipv4(victim),
        src_port,
        dst: sensor,
        dst_port: port,
        transport: Transport::Udp,
        size_bytes: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Detected flows always satisfy the platform thresholds, and their
    /// packet totals never exceed what was ingested at sensors.
    #[test]
    fn flows_respect_thresholds(
        bursts in proptest::collection::vec(
            // (victim, sensor_idx, start, count, spacing)
            (1u32..40, 0usize..5, 0i64..50_000, 1u64..40, 1i64..30),
            1..20,
        ),
    ) {
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let mut det = HoneypotDetector::new(cfg.clone());
        let mut events: Vec<PacketEvent> = Vec::new();
        for (victim, sensor_idx, start, count, spacing) in bursts {
            let sensor = cfg.sensors[sensor_idx];
            for k in 0..count {
                events.push(request(
                    start + k as i64 * spacing,
                    victim,
                    sensor,
                    AmpVector::Dns.src_port(),
                    55_555,
                ));
            }
        }
        events.sort_by_key(|p| p.time);
        let total_ingested = events.len() as u64;
        for e in &events {
            det.ingest(e);
        }
        let flows = det.finish();
        let mut flow_packets = 0;
        for f in &flows {
            prop_assert!(f.packets >= cfg.min_packets);
            prop_assert!(f.first_seen <= f.last_seen);
            flow_packets += f.packets;
        }
        prop_assert!(flow_packets <= total_ingested);
    }

    /// Cross-sensor merging conserves packets and never increases the
    /// event count.
    #[test]
    fn merge_conserves_packets(
        bursts in proptest::collection::vec(
            (1u32..10, 0usize..6, 0i64..20_000, 6u64..30),
            1..16,
        ),
        gap in 1i64..5_000,
    ) {
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let mut det = HoneypotDetector::new(cfg.clone());
        let mut events: Vec<PacketEvent> = Vec::new();
        for (victim, sensor_idx, start, count) in bursts {
            let sensor = cfg.sensors[sensor_idx];
            for k in 0..count {
                events.push(request(start + k as i64, victim, sensor,
                    AmpVector::Dns.src_port(), 55_555));
            }
        }
        events.sort_by_key(|p| p.time);
        for e in &events {
            det.ingest(e);
        }
        let flows = det.finish();
        let flow_packets: u64 = flows.iter().map(|f| f.packets).sum();
        let merged = merge_sensor_flows(&flows, gap);
        prop_assert!(merged.len() <= flows.len());
        let merged_packets: u64 = merged.iter().map(|e| e.packets).sum();
        prop_assert_eq!(flow_packets, merged_packets);
        for e in &merged {
            prop_assert!(e.sensor_count >= 1);
            prop_assert!(e.first_seen <= e.last_seen);
        }
    }

    /// Reconstruction never loses targets, never increases event count,
    /// and every output target appeared in some input.
    #[test]
    fn reconstruction_conserves_targets(
        raw in proptest::collection::vec(
            // (as_pick, offset, start)
            (0usize..3, 0u32..64, 0i64..10_000),
            1..30,
        ),
        gap in 60i64..7_200,
    ) {
        let plan = plan();
        let asns = [
            netmodel::Asn(16276),
            netmodel::Asn(24940),
            netmodel::Asn(16509),
        ];
        let observed: Vec<ObservedAttack> = raw
            .iter()
            .enumerate()
            .map(|(i, &(as_pick, offset, start))| {
                let base = plan.registry.get(asns[as_pick]).unwrap().prefixes[0];
                ObservedAttack {
                    attack_id: AttackId(i as u64),
                    start: SimTime(start),
                    targets: vec![base.nth((offset as u64) % base.size())],
                }
            })
            .collect();
        let merged = reconstruct_carpet_attacks(&plan, &observed, gap);
        prop_assert!(merged.len() <= observed.len());
        prop_assert!(!merged.is_empty());
        let in_targets: std::collections::HashSet<Ipv4> = observed
            .iter()
            .flat_map(|o| o.targets.iter().copied())
            .collect();
        let out_targets: std::collections::HashSet<Ipv4> = merged
            .iter()
            .flat_map(|o| o.targets.iter().copied())
            .collect();
        prop_assert_eq!(in_targets, out_targets);
    }

    /// AmpPot's flow identifier includes the source port: streams that
    /// differ only in spoofed source port never share a flow.
    #[test]
    fn amppot_src_port_partitions(ports in proptest::collection::hash_set(1024u16..60_000, 2..6)) {
        let plan = plan();
        let cfg = HoneypotConfig::amppot(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg.clone());
        let ports: Vec<u16> = ports.into_iter().collect();
        // 120 packets per port — each port's flow clears the threshold.
        for (pi, &p) in ports.iter().enumerate() {
            for k in 0..120i64 {
                det.ingest(&request(pi as i64 * 10_000 + k, 7, sensor,
                    AmpVector::Ntp.src_port(), p));
            }
        }
        let flows = det.finish();
        prop_assert_eq!(flows.len(), ports.len());
        for f in &flows {
            prop_assert_eq!(f.packets, 120);
        }
    }
}
