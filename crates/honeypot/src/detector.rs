//! Packet-level honeypot attack detection.
//!
//! Groups amplification *requests* arriving at sensor addresses into
//! flows using each platform's flow identifier (Table 2), applies the
//! platform's packet threshold and timeout, and emits per-flow attack
//! records. Cross-sensor and carpet-bombing aggregation happens in
//! [`crate::aggregate`].

use crate::platform::{FlowIdScheme, HoneypotConfig};
use attackgen::PacketEvent;
use netmodel::{Ipv4, Prefix};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Flow key: the fields a platform's identifier uses. Unused fields are
/// zeroed so one key type serves all three schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HpFlowKey {
    /// Source IP — the (spoofed) victim. For NewKid this is the /24
    /// prefix base.
    pub src: Ipv4,
    /// Source port (AmpPot only; 0 elsewhere).
    pub src_port: u16,
    /// Sensor address (all schemes).
    pub dst: Ipv4,
    /// Destination (service) port (AmpPot and Hopscotch; 0 for NewKid,
    /// which tracks ports as data).
    pub dst_port: u16,
}

/// How a NewKid flow qualified (footnote 1 of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackMode {
    /// Single destination port crossing the packet threshold.
    MonoProtocol,
    /// Two or more destination ports (multi-protocol attack).
    MultiProtocol,
}

/// A finished honeypot attack flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoneypotFlow {
    pub key: HpFlowKey,
    /// The inferred victim (flow source, before any prefix truncation).
    pub victim: Ipv4,
    pub first_seen: SimTime,
    pub last_seen: SimTime,
    pub packets: u64,
    /// Distinct destination ports (NewKid multi-protocol evidence).
    pub ports: BTreeSet<u16>,
    pub mode: AttackMode,
}

#[derive(Debug)]
struct FlowState {
    victim: Ipv4,
    first_seen: SimTime,
    last_seen: SimTime,
    packets: u64,
    ports: BTreeSet<u16>,
}

/// Streaming detector for one honeypot platform. Feed packets in
/// roughly chronological order; non-sensor traffic is ignored.
#[derive(Debug)]
pub struct HoneypotDetector {
    cfg: HoneypotConfig,
    sensor_set: HashSet<Ipv4>,
    supported_ports: HashSet<u16>,
    flows: HashMap<HpFlowKey, FlowState>,
    finished: Vec<HoneypotFlow>,
    last_expiry_check: i64,
}

impl HoneypotDetector {
    pub fn new(cfg: HoneypotConfig) -> Self {
        let sensor_set = cfg.sensors.iter().copied().collect();
        let supported_ports = cfg.supported.iter().map(|v| v.src_port()).collect();
        HoneypotDetector {
            cfg,
            sensor_set,
            supported_ports,
            flows: HashMap::new(),
            finished: Vec::new(),
            last_expiry_check: i64::MIN,
        }
    }

    pub fn config(&self) -> &HoneypotConfig {
        &self.cfg
    }

    fn key_for(&self, pkt: &PacketEvent) -> HpFlowKey {
        match self.cfg.flow_scheme {
            FlowIdScheme::SrcSrcPortDstDstPort => HpFlowKey {
                src: pkt.src,
                src_port: pkt.src_port,
                dst: pkt.dst,
                dst_port: pkt.dst_port,
            },
            FlowIdScheme::SrcDstDstPort => HpFlowKey {
                src: pkt.src,
                src_port: 0,
                dst: pkt.dst,
                dst_port: pkt.dst_port,
            },
            FlowIdScheme::SrcPrefixDst => HpFlowKey {
                src: Prefix::new(pkt.src, 24).base(),
                src_port: 0,
                dst: pkt.dst,
                dst_port: 0,
            },
        }
    }

    /// Ingest one packet. Packets not addressed to a responding sensor,
    /// or for a service the platform does not emulate, are dropped —
    /// a honeypot cannot be selected as reflector for a protocol it
    /// does not answer.
    pub fn ingest(&mut self, pkt: &PacketEvent) {
        if pkt.time.0 >= self.last_expiry_check + self.cfg.timeout_secs {
            self.expire_idle(pkt.time);
            self.last_expiry_check = pkt.time.0;
        }
        if !self.sensor_set.contains(&pkt.dst) {
            return;
        }
        if !self.supported_ports.contains(&pkt.dst_port) {
            return;
        }
        let key = self.key_for(pkt);
        let flow = self.flows.entry(key).or_insert_with(|| FlowState {
            victim: pkt.src,
            first_seen: pkt.time,
            last_seen: pkt.time,
            packets: 0,
            ports: BTreeSet::new(),
        });
        flow.packets += 1;
        flow.last_seen = flow.last_seen.max(pkt.time);
        flow.ports.insert(pkt.dst_port);
    }

    fn qualifies(&self, flow: &FlowState) -> Option<AttackMode> {
        match self.cfg.multi_port_min {
            Some(multi_min) if flow.ports.len() >= multi_min as usize => {
                // Multi-protocol attacks qualify with the lower bar of
                // simply spanning ports (NewKid footnote).
                if flow.packets >= 2 {
                    Some(AttackMode::MultiProtocol)
                } else {
                    None
                }
            }
            _ => {
                if flow.packets >= self.cfg.min_packets {
                    Some(AttackMode::MonoProtocol)
                } else {
                    None
                }
            }
        }
    }

    fn expire_idle(&mut self, now: SimTime) {
        let cutoff = now.0 - self.cfg.timeout_secs;
        let mut expired: Vec<HpFlowKey> = Vec::new();
        for (key, flow) in &self.flows {
            if flow.last_seen.0 < cutoff {
                expired.push(*key);
            }
        }
        for key in expired {
            let Some(flow) = self.flows.remove(&key) else {
                continue;
            };
            if let Some(mode) = self.qualifies(&flow) {
                self.finished.push(HoneypotFlow {
                    key,
                    victim: flow.victim,
                    first_seen: flow.first_seen,
                    last_seen: flow.last_seen,
                    packets: flow.packets,
                    ports: flow.ports,
                    mode,
                });
            }
        }
    }

    /// Flush and return all qualifying attack flows, sorted by first
    /// packet time.
    pub fn finish(mut self) -> Vec<HoneypotFlow> {
        let keys: Vec<HpFlowKey> = self.flows.keys().copied().collect();
        for key in keys {
            let Some(flow) = self.flows.remove(&key) else {
                continue;
            };
            if let Some(mode) = self.qualifies(&flow) {
                self.finished.push(HoneypotFlow {
                    key,
                    victim: flow.victim,
                    first_seen: flow.first_seen,
                    last_seen: flow.last_seen,
                    packets: flow.packets,
                    ports: flow.ports,
                    mode,
                });
            }
        }
        self.finished
            .sort_by_key(|f| (f.first_seen, f.victim, f.key.dst));
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::{AmpVector, InternetPlan, NetScale, Transport};
    use simcore::SimRng;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn request(t: i64, victim: u32, sensor: Ipv4, port: u16) -> PacketEvent {
        PacketEvent {
            time: SimTime(t),
            src: Ipv4(victim),
            src_port: 55_555,
            dst: sensor,
            dst_port: port,
            transport: Transport::Udp,
            size_bytes: 64,
        }
    }

    #[test]
    fn amppot_detects_above_100_packets() {
        let plan = plan();
        let cfg = HoneypotConfig::amppot(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..120 {
            det.ingest(&request(i, 0x0A00_0001, sensor, AmpVector::Ntp.src_port()));
        }
        let flows = det.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets, 120);
        assert_eq!(flows[0].victim, Ipv4(0x0A00_0001));
        assert_eq!(flows[0].mode, AttackMode::MonoProtocol);
    }

    #[test]
    fn amppot_scan_below_threshold_ignored() {
        // Scanners probing sensors send few packets — the threshold is
        // the scan/attack discriminator (§4 "Definition of attack").
        let plan = plan();
        let cfg = HoneypotConfig::amppot(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..99 {
            det.ingest(&request(i, 0x0A00_0001, sensor, AmpVector::Ntp.src_port()));
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn hopscotch_lower_threshold() {
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..5 {
            det.ingest(&request(i, 0x0A00_0002, sensor, AmpVector::Dns.src_port()));
        }
        let flows = det.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets, 5);
    }

    #[test]
    fn unsupported_protocol_dropped() {
        // Hopscotch does not emulate CHARGEN (§7.3).
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..50 {
            det.ingest(&request(i, 0x0A00_0002, sensor, AmpVector::CharGen.src_port()));
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn non_sensor_traffic_ignored() {
        let plan = plan();
        let cfg = HoneypotConfig::amppot(&plan);
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..200 {
            det.ingest(&request(i, 1, Ipv4::new(198, 41, 0, 4), AmpVector::Dns.src_port()));
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn amppot_src_port_separates_flows() {
        // AmpPot keys on the source port; two spoofed ports make two
        // flows, each under threshold.
        let plan = plan();
        let cfg = HoneypotConfig::amppot(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..120 {
            let mut p = request(i, 0x0A00_0001, sensor, AmpVector::Ntp.src_port());
            p.src_port = if i % 2 == 0 { 1000 } else { 2000 };
            det.ingest(&p);
        }
        assert!(det.finish().is_empty(), "60+60 packets across two flows");
    }

    #[test]
    fn hopscotch_merges_src_ports() {
        // Hopscotch does not key on the source port: the same split
        // stream is one flow there.
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..10 {
            let mut p = request(i, 0x0A00_0001, sensor, AmpVector::Dns.src_port());
            p.src_port = if i % 2 == 0 { 1000 } else { 2000 };
            det.ingest(&p);
        }
        let flows = det.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets, 10);
    }

    #[test]
    fn timeout_splits_flows() {
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let timeout = cfg.timeout_secs;
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..6 {
            det.ingest(&request(i, 0x0A00_0001, sensor, AmpVector::Dns.src_port()));
        }
        // Silence for two timeouts, then a second burst.
        let later = 6 + 2 * timeout;
        for i in 0..6 {
            det.ingest(&request(later + i, 0x0A00_0001, sensor, AmpVector::Dns.src_port()));
        }
        let flows = det.finish();
        assert_eq!(flows.len(), 2);
    }

    #[test]
    fn newkid_mono_protocol() {
        let plan = plan();
        let cfg = HoneypotConfig::newkid(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..6 {
            det.ingest(&request(i, 0x0A00_0101, sensor, AmpVector::Dns.src_port()));
        }
        let flows = det.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].mode, AttackMode::MonoProtocol);
    }

    #[test]
    fn newkid_multi_protocol_lower_bar() {
        // Two ports, only 2+2 packets: qualifies as multi-protocol.
        let plan = plan();
        let cfg = HoneypotConfig::newkid(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        det.ingest(&request(0, 0x0A00_0101, sensor, AmpVector::Dns.src_port()));
        det.ingest(&request(1, 0x0A00_0101, sensor, AmpVector::Ntp.src_port()));
        det.ingest(&request(2, 0x0A00_0101, sensor, AmpVector::Dns.src_port()));
        let flows = det.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].mode, AttackMode::MultiProtocol);
        assert_eq!(flows[0].ports.len(), 2);
    }

    #[test]
    fn newkid_groups_by_prefix() {
        // Packets from two addresses in the same /24 form one flow
        // (carpet bombing shows up as one prefix-level event, the
        // phenomenon NewKid was built to catch).
        let plan = plan();
        let cfg = HoneypotConfig::newkid(&plan);
        let sensor = cfg.sensors[0];
        let mut det = HoneypotDetector::new(cfg);
        for i in 0..3 {
            det.ingest(&request(i, 0x0A00_0101, sensor, AmpVector::Dns.src_port()));
        }
        for i in 3..6 {
            det.ingest(&request(i, 0x0A00_0177, sensor, AmpVector::Dns.src_port()));
        }
        let flows = det.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets, 6);
        assert_eq!(flows[0].key.src, Ipv4(0x0A00_0100));
    }

    #[test]
    fn single_packet_never_qualifies() {
        let plan = plan();
        for cfg in [
            HoneypotConfig::amppot(&plan),
            HoneypotConfig::hopscotch(&plan),
            HoneypotConfig::newkid(&plan),
        ] {
            let sensor = cfg.sensors[0];
            let mut det = HoneypotDetector::new(cfg);
            det.ingest(&request(0, 0x0A00_0001, sensor, AmpVector::Dns.src_port()));
            assert!(det.finish().is_empty());
        }
    }
}
