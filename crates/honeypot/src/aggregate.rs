//! Cross-sensor and carpet-bombing aggregation.
//!
//! Two algorithms from the paper:
//!
//! * **CCC cross-sensor aggregation** (§5): attacks seen at multiple
//!   sensors of one platform are merged into a single event —
//!   implemented over packet-level [`HoneypotFlow`]s.
//! * **Appendix-I carpet-bombing reconstruction**: per-victim events are
//!   aggregated under "the longest BGP-routed prefix (from /11 to /28)
//!   that covers the attack", *without* crossing RIR allocation
//!   boundaries — so an attack sweeping many allocations of one AS is
//!   (deliberately, as in the paper) recorded as many attacks.

use crate::detector::HoneypotFlow;
use attackgen::{AttackId, ObservationColumns, ObservedAttack};
use netmodel::{InternetPlan, Ipv4, Prefix};
use simcore::SimTime;
use std::collections::BTreeMap;

/// Prefix-length search range of the Appendix-I algorithm.
pub const CARPET_MIN_PREFIX: u8 = 11;
pub const CARPET_MAX_PREFIX: u8 = 28;

/// A cross-sensor event: one attack as reconstructed by a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoneypotEvent {
    pub victim: Ipv4,
    pub first_seen: SimTime,
    pub last_seen: SimTime,
    pub packets: u64,
    pub sensor_count: usize,
}

/// Merge per-sensor flows into per-victim events: flows with the same
/// victim whose active periods are within `merge_gap_secs` of each other
/// become one event (the CCC processing shared across Hopscotch and
/// AmpPot, §5).
pub fn merge_sensor_flows(flows: &[HoneypotFlow], merge_gap_secs: i64) -> Vec<HoneypotEvent> {
    let mut by_victim: BTreeMap<Ipv4, Vec<&HoneypotFlow>> = BTreeMap::new();
    for f in flows {
        by_victim.entry(f.victim).or_default().push(f);
    }
    let mut out = Vec::new();
    for (victim, mut group) in by_victim {
        group.sort_by_key(|f| f.first_seen);
        let mut current: Option<(SimTime, SimTime, u64, Vec<Ipv4>)> = None;
        for f in group {
            match current.as_mut() {
                Some((_, last, packets, sensors)) if f.first_seen.0 <= last.0 + merge_gap_secs => {
                    *last = (*last).max(f.last_seen);
                    *packets += f.packets;
                    if !sensors.contains(&f.key.dst) {
                        sensors.push(f.key.dst);
                    }
                }
                _ => {
                    if let Some((first, last, packets, sensors)) = current.take() {
                        out.push(HoneypotEvent {
                            victim,
                            first_seen: first,
                            last_seen: last,
                            packets,
                            sensor_count: sensors.len(),
                        });
                    }
                    current = Some((f.first_seen, f.last_seen, f.packets, vec![f.key.dst]));
                }
            }
        }
        if let Some((first, last, packets, sensors)) = current {
            out.push(HoneypotEvent {
                victim,
                first_seen: first,
                last_seen: last,
                packets,
                sensor_count: sensors.len(),
            });
        }
    }
    out.sort_by_key(|e| (e.first_seen, e.victim));
    out
}

/// Find the longest BGP-routed prefix in [/11, /28] covering the
/// address, clipped so it never crosses the address's RIR allocation
/// block (Appendix I).
pub fn carpet_prefix(plan: &InternetPlan, ip: Ipv4) -> Option<Prefix> {
    let routed = plan.routed_prefix_of(ip)?;
    let alloc = plan.allocation_of(ip)?;
    let len = routed
        .len()
        .clamp(CARPET_MIN_PREFIX, CARPET_MAX_PREFIX)
        // Never wider than the allocation block.
        .max(alloc.block.len());
    Some(Prefix::new(ip, len))
}

/// Appendix-I reconstruction over *observed* attacks: merge events that
/// (a) start within `merge_gap_secs` of each other and (b) whose targets
/// fall in the same carpet prefix (same routed block, same allocation).
/// Targets of merged events are unioned.
pub fn reconstruct_carpet_attacks(
    plan: &InternetPlan,
    observed: &[ObservedAttack],
    merge_gap_secs: i64,
) -> Vec<ObservedAttack> {
    // Group key: the carpet prefix of the first target; events whose
    // targets have no routed prefix stay singletons.
    let mut keyed: Vec<(Option<Prefix>, &ObservedAttack)> = observed
        .iter()
        .map(|o| (carpet_prefix(plan, o.targets[0]), o))
        .collect();
    keyed.sort_by_key(|(p, o)| (*p, o.start));

    let mut out: Vec<ObservedAttack> = Vec::new();
    let mut i = 0;
    while i < keyed.len() {
        let (prefix, first) = keyed[i];
        let mut merged = first.clone();
        let mut last_start = first.start;
        let mut j = i + 1;
        while j < keyed.len() {
            let (p2, next) = keyed[j];
            let mergeable = prefix.is_some()
                && p2 == prefix
                && next.start.0 - last_start.0 <= merge_gap_secs;
            if !mergeable {
                break;
            }
            for &t in &next.targets {
                if !merged.targets.contains(&t) {
                    merged.targets.push(t);
                }
            }
            // Keep the earliest id/start as the event identity.
            last_start = next.start;
            j += 1;
        }
        out.push(merged);
        i = j;
    }
    out.sort_by_key(|o| (o.start, o.attack_id));
    out
}

/// Appendix-I reconstruction over a columnar observation stream — the
/// same algorithm as [`reconstruct_carpet_attacks`], scanning column
/// data and writing merged rows straight into a fresh column set.
///
/// Equivalence with the struct path is exact: the struct version's
/// stable `(prefix, start)` sort is reproduced by sorting row indices
/// by `(prefix, start, index)`, target unions preserve first-seen
/// order, and the merged event keeps the earliest row's id and start.
pub fn reconstruct_carpet_columns(
    plan: &InternetPlan,
    observed: &ObservationColumns,
    merge_gap_secs: i64,
) -> ObservationColumns {
    let n = observed.len();
    let mut keyed: Vec<(Option<Prefix>, u32)> = (0..n as u32)
        .map(|i| {
            (
                carpet_prefix(plan, observed.targets(i as usize)[0]),
                i,
            )
        })
        .collect();
    keyed.sort_unstable_by_key(|&(p, i)| (p, observed.start[i as usize], i));

    let mut out = ObservationColumns::with_capacity(n);
    let mut i = 0;
    while i < keyed.len() {
        let (prefix, first) = keyed[i];
        let fi = first as usize;
        out.begin_row(
            AttackId(observed.attack_id[fi]),
            SimTime(observed.start[fi]),
        );
        let row_base = out.target_arena.len();
        for &t in observed.targets(fi) {
            out.push_target(t);
        }
        let mut last_start = observed.start[fi];
        let mut j = i + 1;
        while j < keyed.len() {
            let (p2, next) = keyed[j];
            let ni = next as usize;
            let mergeable = prefix.is_some()
                && p2 == prefix
                && observed.start[ni] - last_start <= merge_gap_secs;
            if !mergeable {
                break;
            }
            for &t in observed.targets(ni) {
                if !out.target_arena[row_base..].contains(&t) {
                    out.push_target(t);
                }
            }
            last_start = observed.start[ni];
            j += 1;
        }
        out.commit_row();
        i = j;
    }
    out.sort_by_start_id();
    out
}

/// Convert merged per-victim events into [`ObservedAttack`] records
/// (packet-level path). The event id is synthetic (packet streams do not
/// carry ground-truth ids).
pub fn events_to_observed(events: &[HoneypotEvent]) -> Vec<ObservedAttack> {
    events
        .iter()
        .enumerate()
        .map(|(i, e)| ObservedAttack {
            attack_id: AttackId(u64::MAX - i as u64),
            start: e.first_seen,
            targets: vec![e.victim],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{AttackMode, HpFlowKey};
    use netmodel::NetScale;
    use simcore::SimRng;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn flow(victim: u32, sensor: u32, first: i64, last: i64, packets: u64) -> HoneypotFlow {
        HoneypotFlow {
            key: HpFlowKey {
                src: Ipv4(victim),
                src_port: 0,
                dst: Ipv4(sensor),
                dst_port: 53,
            },
            victim: Ipv4(victim),
            first_seen: SimTime(first),
            last_seen: SimTime(last),
            packets,
            ports: [53].into_iter().collect(),
            mode: AttackMode::MonoProtocol,
        }
    }

    #[test]
    fn concurrent_flows_merge_across_sensors() {
        let flows = vec![
            flow(1, 100, 0, 500, 50),
            flow(1, 101, 100, 600, 40),
            flow(1, 102, 200, 550, 30),
        ];
        let events = merge_sensor_flows(&flows, 900);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.packets, 120);
        assert_eq!(e.sensor_count, 3);
        assert_eq!(e.first_seen, SimTime(0));
        assert_eq!(e.last_seen, SimTime(600));
    }

    #[test]
    fn distant_flows_stay_separate() {
        let flows = vec![flow(1, 100, 0, 500, 50), flow(1, 100, 10_000, 10_500, 40)];
        let events = merge_sensor_flows(&flows, 900);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn different_victims_never_merge() {
        let flows = vec![flow(1, 100, 0, 500, 50), flow(2, 100, 0, 500, 40)];
        let events = merge_sensor_flows(&flows, 900);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn same_sensor_counted_once() {
        let flows = vec![flow(1, 100, 0, 100, 10), flow(1, 100, 150, 300, 10)];
        let events = merge_sensor_flows(&flows, 900);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].sensor_count, 1);
    }

    #[test]
    fn carpet_prefix_respects_bounds() {
        let plan = plan();
        // Any routed target address yields a prefix within [/11, /28]
        // that stays inside its allocation.
        let rec = plan.registry.get(netmodel::Asn(16276)).unwrap();
        let ip = rec.prefixes[0].nth(5);
        let p = carpet_prefix(&plan, ip).unwrap();
        assert!((CARPET_MIN_PREFIX..=CARPET_MAX_PREFIX).contains(&p.len()));
        let alloc = plan.allocation_of(ip).unwrap();
        assert!(alloc.block.covers(p), "carpet prefix crosses allocation");
        assert!(p.contains(ip));
    }

    #[test]
    fn carpet_prefix_none_for_unrouted() {
        let plan = plan();
        assert_eq!(carpet_prefix(&plan, Ipv4::new(223, 255, 255, 1)), None);
    }

    #[test]
    fn reconstruction_merges_same_prefix_events() {
        let plan = plan();
        let rec = plan.registry.get(netmodel::Asn(16276)).unwrap();
        let base = rec.prefixes[0].base();
        let mk = |id: u64, off: u32, t: i64| ObservedAttack {
            attack_id: AttackId(id),
            start: SimTime(t),
            targets: vec![Ipv4(base.0 + off)],
        };
        let observed = vec![mk(1, 1, 0), mk(2, 2, 60), mk(3, 3, 120)];
        let merged = reconstruct_carpet_attacks(&plan, &observed, 600);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].targets.len(), 3);
    }

    #[test]
    fn reconstruction_respects_allocation_boundaries() {
        let plan = plan();
        // Two victims in different allocations (different ASes) at the
        // same time: never merged, even if close in address space.
        let a = plan.registry.get(netmodel::Asn(16276)).unwrap().prefixes[0].nth(0);
        let b = plan.registry.get(netmodel::Asn(24940)).unwrap().prefixes[0].nth(0);
        let observed = vec![
            ObservedAttack {
                attack_id: AttackId(1),
                start: SimTime(0),
                targets: vec![a],
            },
            ObservedAttack {
                attack_id: AttackId(2),
                start: SimTime(30),
                targets: vec![b],
            },
        ];
        let merged = reconstruct_carpet_attacks(&plan, &observed, 600);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn reconstruction_respects_time_gap() {
        let plan = plan();
        let rec = plan.registry.get(netmodel::Asn(16276)).unwrap();
        let base = rec.prefixes[0].base();
        let observed = vec![
            ObservedAttack {
                attack_id: AttackId(1),
                start: SimTime(0),
                targets: vec![Ipv4(base.0 + 1)],
            },
            ObservedAttack {
                attack_id: AttackId(2),
                start: SimTime(10_000),
                targets: vec![Ipv4(base.0 + 2)],
            },
        ];
        let merged = reconstruct_carpet_attacks(&plan, &observed, 600);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn columnar_reconstruction_matches_struct_path() {
        let plan = plan();
        let base = plan.registry.get(netmodel::Asn(16276)).unwrap().prefixes[0].base();
        let other = plan.registry.get(netmodel::Asn(24940)).unwrap().prefixes[0].nth(0);
        let mk = |id: u64, ip: Ipv4, t: i64| ObservedAttack {
            attack_id: AttackId(id),
            start: SimTime(t),
            targets: vec![ip],
        };
        // Same-prefix chains, a tie on (prefix, start) to exercise sort
        // stability, a foreign allocation, a time-gapped straggler, and
        // a duplicate target to exercise the union.
        let observed = vec![
            mk(4, Ipv4(base.0 + 2), 60),
            mk(1, Ipv4(base.0 + 1), 0),
            mk(2, Ipv4(base.0 + 2), 60),
            mk(3, Ipv4(base.0 + 3), 120),
            mk(5, other, 30),
            mk(6, Ipv4(base.0 + 9), 50_000),
        ];
        let struct_path = reconstruct_carpet_attacks(&plan, &observed, 600);
        let columnar = reconstruct_carpet_columns(
            &plan,
            &ObservationColumns::from_observed(&observed),
            600,
        );
        assert_eq!(columnar.to_vec(), struct_path);
    }

    #[test]
    fn events_to_observed_roundtrip() {
        let events = vec![HoneypotEvent {
            victim: Ipv4(7),
            first_seen: SimTime(100),
            last_seen: SimTime(200),
            packets: 50,
            sensor_count: 2,
        }];
        let obs = events_to_observed(&events);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].targets, vec![Ipv4(7)]);
        assert_eq!(obs[0].start, SimTime(100));
    }
}
