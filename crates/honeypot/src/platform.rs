//! Honeypot platform configurations (Table 2).
//!
//! Each platform differs in sensor count, flow identifier, timeout,
//! packet thresholds, and the set of amplification protocols it
//! emulates. The protocol-support difference is load-bearing: it
//! reproduces §7.3 (AmpPot CHARGEN-heavy vs Hopscotch CLDAP-heavy) and
//! Fig. 3(a) (Hopscotch missing the 2023 recovery carried by emerging
//! vectors it does not emulate).

use netmodel::{AmpVector, InternetPlan, Ipv4};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a platform groups request packets into attack flows (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowIdScheme {
    /// AmpPot: (src IP, src port, dst IP, dst port).
    SrcSrcPortDstDstPort,
    /// Hopscotch: (src IP, dst IP, dst port).
    SrcDstDstPort,
    /// NewKid: (src /24 prefix, dst IP), dst port tracked as data for
    /// the multi-protocol threshold.
    SrcPrefixDst,
}

/// One honeypot platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoneypotConfig {
    pub name: String,
    /// Sensor addresses that *respond* (and can thus be selected as
    /// reflectors by scanning attackers).
    pub sensors: Vec<Ipv4>,
    /// Addresses allocated but silent (AmpPot has 70 allocated, 30
    /// responsive; silent sensors never attract attacks, §5).
    pub allocated_total: usize,
    pub flow_scheme: FlowIdScheme,
    /// Flow timeout in seconds (Table 2: AmpPot 60 min, Hopscotch
    /// 15 min, NewKid 1 min).
    pub timeout_secs: i64,
    /// Minimum packets for a flow to count as an attack (per Table 2).
    pub min_packets: u64,
    /// NewKid's multi-protocol rule: an attack spanning ≥ this many
    /// distinct destination ports also qualifies (with the same packet
    /// minimum).
    pub multi_port_min: Option<u32>,
    /// Amplification protocols the platform emulates.
    pub supported: BTreeSet<AmpVector>,
    /// Relative scan-list entrenchment of the platform's sensors: how
    /// over-represented they are in attacker reflector lists compared
    /// to a uniformly random pool member. Long-running platforms whose
    /// sensors answer scanners reliably (AmpPot has operated since
    /// 2015 and correlates attacks with prior scans, §5) accumulate a
    /// higher listing rate per sensor.
    pub selection_boost: f64,
}

impl HoneypotConfig {
    /// AmpPot per Table 2 / §5, with its protocol mix skewed toward
    /// CHARGEN and the emerging 2023 vectors.
    pub fn amppot(plan: &InternetPlan) -> Self {
        let responsive = plan.honeypots.amppot_responsive;
        HoneypotConfig {
            name: "AmpPot".into(),
            sensors: plan.honeypots.amppot_allocated[..responsive].to_vec(),
            allocated_total: plan.honeypots.amppot_allocated.len(),
            flow_scheme: FlowIdScheme::SrcSrcPortDstDstPort,
            timeout_secs: 60 * 60,
            min_packets: 100,
            multi_port_min: None,
            selection_boost: 4.0,
            supported: [
                AmpVector::Dns,
                AmpVector::Ntp,
                AmpVector::CharGen,
                AmpVector::Qotd,
                AmpVector::Rpc,
                AmpVector::Ssdp,
                AmpVector::NetBios,
                AmpVector::Snmp,
                AmpVector::WsDiscovery,
            ]
            .into_iter()
            .collect(),
        }
    }

    /// Hopscotch per Table 2, CLDAP-capable but blind to the emerging
    /// vectors.
    pub fn hopscotch(plan: &InternetPlan) -> Self {
        HoneypotConfig {
            name: "Hopscotch".into(),
            sensors: plan.honeypots.hopscotch.clone(),
            allocated_total: plan.honeypots.hopscotch.len(),
            flow_scheme: FlowIdScheme::SrcDstDstPort,
            timeout_secs: 15 * 60,
            min_packets: 5,
            multi_port_min: None,
            selection_boost: 1.0,
            supported: [
                AmpVector::Dns,
                AmpVector::Ntp,
                AmpVector::Cldap,
                AmpVector::Qotd,
                AmpVector::Rpc,
                AmpVector::Ssdp,
                AmpVector::Memcached,
            ]
            .into_iter()
            .collect(),
        }
    }

    /// NewKid per Table 2: one sensor, two thresholds.
    pub fn newkid(plan: &InternetPlan) -> Self {
        HoneypotConfig {
            name: "NewKid".into(),
            sensors: plan.honeypots.newkid.clone(),
            allocated_total: plan.honeypots.newkid.len(),
            flow_scheme: FlowIdScheme::SrcPrefixDst,
            timeout_secs: 60,
            min_packets: 5,
            multi_port_min: Some(2),
            selection_boost: 1.5,
            supported: [
                AmpVector::Dns,
                AmpVector::Ntp,
                AmpVector::Ssdp,
                AmpVector::CharGen,
                AmpVector::Cldap,
            ]
            .into_iter()
            .collect(),
        }
    }

    pub fn supports(&self, v: AmpVector) -> bool {
        self.supported.contains(&v)
    }

    /// Number of responding sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::NetScale;
    use simcore::SimRng;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    #[test]
    fn table2_parameters() {
        let plan = plan();
        let amppot = HoneypotConfig::amppot(&plan);
        assert_eq!(amppot.sensor_count(), 30);
        assert_eq!(amppot.allocated_total, 70);
        assert_eq!(amppot.timeout_secs, 3600);
        assert_eq!(amppot.min_packets, 100);
        assert_eq!(amppot.flow_scheme, FlowIdScheme::SrcSrcPortDstDstPort);

        let hops = HoneypotConfig::hopscotch(&plan);
        assert_eq!(hops.sensor_count(), 65);
        assert_eq!(hops.timeout_secs, 900);
        assert_eq!(hops.min_packets, 5);
        assert_eq!(hops.flow_scheme, FlowIdScheme::SrcDstDstPort);

        let nk = HoneypotConfig::newkid(&plan);
        assert_eq!(nk.sensor_count(), 1);
        assert_eq!(nk.timeout_secs, 60);
        assert_eq!(nk.min_packets, 5);
        assert_eq!(nk.multi_port_min, Some(2));
        assert_eq!(nk.flow_scheme, FlowIdScheme::SrcPrefixDst);
    }

    #[test]
    fn protocol_support_differs_as_in_s73() {
        let plan = plan();
        let amppot = HoneypotConfig::amppot(&plan);
        let hops = HoneypotConfig::hopscotch(&plan);
        // §7.3: CHARGEN is AmpPot territory, CLDAP is Hopscotch's.
        assert!(amppot.supports(AmpVector::CharGen));
        assert!(!hops.supports(AmpVector::CharGen));
        assert!(hops.supports(AmpVector::Cldap));
        assert!(!amppot.supports(AmpVector::Cldap));
        // Both cover the common vectors (QOTD, RPC, NTP — "largely
        // overlapping target sets" for those).
        for v in [AmpVector::Qotd, AmpVector::Rpc, AmpVector::Ntp, AmpVector::Dns] {
            assert!(amppot.supports(v) && hops.supports(v));
        }
        // The 2023 emerging vectors are invisible to Hopscotch.
        assert!(amppot.supports(AmpVector::WsDiscovery));
        assert!(!hops.supports(AmpVector::WsDiscovery));
    }

    #[test]
    fn amppot_uses_responsive_prefix_of_allocation() {
        let plan = plan();
        let amppot = HoneypotConfig::amppot(&plan);
        for s in &amppot.sensors {
            assert!(plan.honeypots.amppot_allocated.contains(s));
        }
    }
}
