//! `honeypot` — reflection-amplification honeypot observatories
//! (AmpPot, Hopscotch, NewKid).
//!
//! Platform configurations follow Table 2 of the paper; packet-level
//! detection ([`detector`]) applies each platform's flow identifier and
//! thresholds; [`aggregate`] implements CCC cross-sensor merging and the
//! Appendix-I carpet-bombing reconstruction; [`event::Honeypot`] is the
//! fast analytic path used for the macro study.

pub mod aggregate;
pub mod detector;
pub mod event;
pub mod pipeline;
pub mod platform;

pub use aggregate::{
    carpet_prefix, events_to_observed, merge_sensor_flows, reconstruct_carpet_attacks,
    reconstruct_carpet_columns,
    HoneypotEvent, CARPET_MAX_PREFIX, CARPET_MIN_PREFIX,
};
pub use detector::{AttackMode, HoneypotDetector, HoneypotFlow, HpFlowKey};
pub use event::Honeypot;
pub use pipeline::{HoneypotPipeline, PipelineStats};
pub use platform::{FlowIdScheme, HoneypotConfig};
