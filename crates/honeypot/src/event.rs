//! Event-level honeypot observatory: analytic visibility of reflection-
//! amplification attacks for the macro study.
//!
//! Physics: an attacker abusing `k` reflectors out of a per-vector pool
//! of size `P` selects each responding sensor independently with
//! probability ≈ `k / P`. A platform with `s` sensors is therefore
//! selected into an attack with probability `1 − (1 − k/P)^s`, and a
//! selected sensor receives a `1/k` share of the request load — which
//! then has to clear the platform's per-flow packet threshold (Table 2).

use crate::platform::HoneypotConfig;
use attackgen::{Attack, AttackClass, AttackRef, ObservationColumns, ObservedAttack};
use netmodel::{AmpVector, InternetPlan};
use simcore::dist::{binomial, poisson};
use simcore::faults::ObsFaults;
use simcore::SimRng;
use std::collections::BTreeMap;

/// An operating honeypot platform plus the reflector-pool context it
/// hides in.
#[derive(Debug, Clone)]
pub struct Honeypot {
    pub cfg: HoneypotConfig,
    pools: BTreeMap<AmpVector, u64>,
    /// Injected data-plane faults (outage windows, sensor-fleet
    /// decline/churn). Empty by default and bit-for-bit inert when
    /// empty: the sensor count passes through as the same integer.
    pub faults: ObsFaults,
}

impl Honeypot {
    pub fn new(cfg: HoneypotConfig, plan: &InternetPlan) -> Self {
        Honeypot {
            cfg,
            pools: plan.reflector_pools.clone(),
            faults: ObsFaults::default(),
        }
    }

    pub fn amppot(plan: &InternetPlan) -> Self {
        Self::new(HoneypotConfig::amppot(plan), plan)
    }

    pub fn hopscotch(plan: &InternetPlan) -> Self {
        Self::new(HoneypotConfig::hopscotch(plan), plan)
    }

    pub fn newkid(plan: &InternetPlan) -> Self {
        Self::new(HoneypotConfig::newkid(plan), plan)
    }

    /// Event-level observation of one attack, appended directly to a
    /// columnar sink; returns whether a row was emitted.
    ///
    /// RNG is forked from (attack id, platform name): deterministic, and
    /// independent across platforms — AmpPot and Hopscotch make separate
    /// reflector-selection draws for the same attack, which is what
    /// produces the partial (≈ 50 %) target overlap of Fig. 7.
    pub fn observe_into(
        &self,
        attack: AttackRef<'_>,
        root: &SimRng,
        out: &mut ObservationColumns,
    ) -> bool {
        // Outage check first, before any RNG fork, so unaffected weeks
        // keep their exact verdict streams.
        let week = attack.start.week_index();
        if self.faults.is_down(week) {
            return false;
        }
        if attack.class != AttackClass::ReflectionAmplification {
            return false;
        }
        let Some(refl) = attack.reflectors else {
            return false;
        };
        if !self.cfg.supports(refl.vector) {
            return false;
        }
        let Some(&pool) = self.pools.get(&refl.vector) else {
            return false;
        };
        let k = refl.reflector_count as f64;
        let select_p = (self.cfg.selection_boost * k / pool as f64).min(1.0);
        let mut rng = root.fork(attack.id.0).fork_named(&self.cfg.name);
        // Sensor fleet at this week: the nominal count unless churn is
        // injected (identity pass-through keeps the binomial draw
        // bit-identical on the fault-free path).
        let sensors = self.faults.fleet_at(self.cfg.sensor_count() as u64, week);
        if sensors == 0 {
            return false;
        }
        // How many of our sensors did the attacker pick?
        let m = binomial(&mut rng, sensors, select_p);
        if m == 0 {
            return false;
        }
        // Per-sensor, per-victim expected request packets over the whole
        // attack (honeypots cap responses via safeguards, but *requests*
        // keep arriving and are what the detector counts).
        let width = attack.targets.len() as f64;
        // Booters re-fire short attacks back to back; a platform with a
        // long flow timeout (AmpPot: 60 min) accumulates those repeats
        // into one flow, multiplying the packets the threshold sees.
        let repetition = (self.cfg.timeout_secs as f64 / attack.duration_secs as f64)
            .clamp(1.0, 4.0);
        let per_sensor_victim =
            attack.pps / k * attack.duration_secs as f64 * repetition / width;
        // A victim is recorded if its flow at the busiest selected
        // sensor clears the packet threshold.
        let draws = m.min(3);
        out.begin_row(attack.id, attack.start);
        for &victim in attack.targets {
            let best = (0..draws)
                .map(|_| poisson(&mut rng, per_sensor_victim))
                .max()
                .unwrap_or(0);
            if best >= self.cfg.min_packets {
                out.push_target(victim);
            }
        }
        if out.pending_targets() == 0 {
            out.rollback_row();
            return false;
        }
        out.commit_row();
        true
    }

    /// Event-level observation of one struct attack (the columnar
    /// [`Honeypot::observe_into`] through a one-row sink).
    pub fn observe(&self, attack: &Attack, root: &SimRng) -> Option<ObservedAttack> {
        let mut out = ObservationColumns::new();
        self.observe_into(attack.view(), root, &mut out)
            .then(|| out.get(0).to_observed())
    }

    /// Observe a whole attack stream.
    pub fn observe_all(&self, attacks: &[Attack], root: &SimRng) -> Vec<ObservedAttack> {
        attacks
            .iter()
            .filter_map(|a| self.observe(a, root))
            .collect()
    }

    /// Observe a whole attack stream, sharded across `pool`. Identical
    /// output to [`Honeypot::observe_all`]: per-attack draws fork from
    /// (attack id, platform name) and shards merge in input order.
    pub fn observe_all_on(
        &self,
        attacks: &[Attack],
        root: &SimRng,
        pool: &simcore::ExecPool,
    ) -> Vec<ObservedAttack> {
        pool.par_filter_map(attacks, |a| self.observe(a, root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attackgen::attack::{AttackId, AttackVector, ReflectorUse};
    use netmodel::{Asn, Ipv4, NetScale};
    use simcore::SimTime;

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn ra(id: u64, vector: AmpVector, k: u32, pps: f64, width: u32) -> Attack {
        let targets = (0..width).map(|i| Ipv4(0x0B00_0000 + i)).collect();
        Attack {
            id: AttackId(id),
            class: AttackClass::ReflectionAmplification,
            vector: AttackVector::Amplification(vector),
            start: SimTime(50_000),
            duration_secs: 600,
            targets,
            target_asn: Asn(1),
            pps,
            bps: pps * 4000.0,
            reflectors: Some(ReflectorUse {
                vector,
                reflector_count: k,
            }),
            spoof_space_fraction: 0.0,
            campaign: None,
        }
    }

    #[test]
    fn heavy_attack_with_many_reflectors_usually_seen() {
        let plan = plan();
        let hp = Honeypot::hopscotch(&plan);
        let root = SimRng::new(1);
        let pool = plan.reflector_pools[&AmpVector::Dns] as f64;
        // Selection probability ≈ 1 - (1 - k/P)^65; pick k for ≈95 %.
        let k = (pool * 0.045) as u32;
        let seen = (0..200)
            .filter(|&id| hp.observe(&ra(id, AmpVector::Dns, k, 50_000.0, 1), &root).is_some())
            .count();
        assert!(seen > 170, "seen {seen}/200");
    }

    #[test]
    fn few_reflectors_rarely_selected() {
        let plan = plan();
        let hp = Honeypot::hopscotch(&plan);
        let root = SimRng::new(1);
        let seen = (0..200)
            .filter(|&id| hp.observe(&ra(id, AmpVector::Dns, 20, 50_000.0, 1), &root).is_some())
            .count();
        // 20 / 50k pool × 65 sensors ⇒ ~2.6 % selection.
        assert!(seen < 20, "seen {seen}/200");
    }

    #[test]
    fn unsupported_vector_invisible() {
        let plan = plan();
        let hops = Honeypot::hopscotch(&plan);
        let amppot = Honeypot::amppot(&plan);
        let root = SimRng::new(1);
        // CHARGEN: AmpPot yes, Hopscotch no (§7.3).
        let pool = plan.reflector_pools[&AmpVector::CharGen];
        let k = (pool / 10).max(100) as u32;
        let mut amppot_seen = 0;
        for id in 0..100 {
            let a = ra(id, AmpVector::CharGen, k, 100_000.0, 1);
            assert!(hops.observe(&a, &root).is_none());
            amppot_seen += amppot.observe(&a, &root).is_some() as u32;
        }
        assert!(amppot_seen > 50, "amppot {amppot_seen}");
    }

    #[test]
    fn direct_path_invisible() {
        let plan = plan();
        let hp = Honeypot::amppot(&plan);
        let root = SimRng::new(1);
        let mut a = ra(1, AmpVector::Dns, 10_000, 100_000.0, 1);
        a.class = AttackClass::DirectPathSpoofed;
        a.reflectors = None;
        a.spoof_space_fraction = 1.0;
        assert!(hp.observe(&a, &root).is_none());
    }

    #[test]
    fn amppot_threshold_is_harder() {
        // Same low-rate attack: Hopscotch (≥5 pkts) catches it when
        // selected, AmpPot (≥100 pkts) rejects the flow even when
        // selected. A 1-hour duration keeps the repetition factor at 1
        // for both platforms, and a large k keeps selection ≈ certain
        // for both — isolating the packet-threshold difference.
        let plan = plan();
        let hops = Honeypot::hopscotch(&plan);
        let amppot = Honeypot::amppot(&plan);
        let root = SimRng::new(2);
        let pool = plan.reflector_pools[&AmpVector::Dns] as f64;
        let k = (pool * 0.05) as u32;
        let duration = 3600u32;
        let mut hops_seen = 0;
        let mut amppot_seen = 0;
        for id in 0..300 {
            // ~30 packets per selected sensor over the whole attack.
            let pps = k as f64 * 30.0 / duration as f64;
            let mut a = ra(id, AmpVector::Dns, k, pps, 1);
            a.duration_secs = duration;
            hops_seen += hops.observe(&a, &root).is_some() as u32;
            amppot_seen += amppot.observe(&a, &root).is_some() as u32;
        }
        assert!(hops_seen > 200, "hopscotch {hops_seen}");
        assert!(amppot_seen < hops_seen / 4, "amppot {amppot_seen} vs {hops_seen}");
    }

    #[test]
    fn platforms_draw_independently() {
        let plan = plan();
        let hops = Honeypot::hopscotch(&plan);
        let amppot = Honeypot::amppot(&plan);
        let root = SimRng::new(3);
        let pool = plan.reflector_pools[&AmpVector::Dns] as f64;
        let k = (pool * 0.02) as u32;
        let mut hops_only = 0;
        let mut amppot_only = 0;
        let mut both = 0;
        for id in 0..400 {
            let a = ra(id, AmpVector::Dns, k, 100_000.0, 1);
            let h = hops.observe(&a, &root).is_some();
            let m = amppot.observe(&a, &root).is_some();
            if h && m {
                both += 1;
            } else if h {
                hops_only += 1;
            } else if m {
                amppot_only += 1;
            }
        }
        // All three categories must occur (Fig. 7's partial overlap).
        assert!(both > 0 && hops_only > 0 && amppot_only > 0,
            "both {both}, hops {hops_only}, amppot {amppot_only}");
    }

    #[test]
    fn carpet_records_subset_of_targets() {
        let plan = plan();
        let hp = Honeypot::hopscotch(&plan);
        let root = SimRng::new(4);
        let pool = plan.reflector_pools[&AmpVector::Ssdp] as f64;
        let k = (pool * 0.05) as u32;
        // Wide, low-rate carpet: per-victim flow small, only some
        // victims cross the 5-packet bar.
        let width = 64;
        let pps = k as f64 * 6.0 * width as f64 / 600.0; // ~6 pkts/victim/sensor
        let mut partial = false;
        for id in 0..100 {
            let a = ra(id, AmpVector::Ssdp, k, pps, width);
            if let Some(o) = hp.observe(&a, &root) {
                assert!(o.targets.iter().all(|t| a.targets.contains(t)));
                if o.targets.len() < width as usize {
                    partial = true;
                }
            }
        }
        assert!(partial, "carpet observation should sometimes be partial");
    }

    #[test]
    fn churn_shrinks_the_fleet_and_outage_kills_it() {
        let plan = plan();
        let healthy = Honeypot::hopscotch(&plan);
        let mut declining = Honeypot::hopscotch(&plan);
        declining.faults.churn = Some(simcore::faults::SensorChurn {
            decline_per_year: 0.25,
            offline_weekly: 0.1,
            seed: 5,
        });
        let mut dark = Honeypot::hopscotch(&plan);
        let week = SimTime(50_000).week_index() as u32;
        dark.faults.outages.push(simcore::faults::OutageWindow {
            start_week: week,
            end_week: week + 1,
        });
        let root = SimRng::new(1);
        let pool = plan.reflector_pools[&AmpVector::Dns] as f64;
        // Moderate selection probability so a fleet shrunk to ~25%
        // after three years of decline clearly changes the hit count.
        let k = (pool * 0.02) as u32;
        let late_start = SimTime(3 * 365 * 86_400); // ~3 years in
        let count = |hp: &Honeypot, start: SimTime| {
            (0..300)
                .filter(|&id| {
                    let mut a = ra(id, AmpVector::Dns, k, 50_000.0, 1);
                    a.start = start;
                    hp.observe(&a, &root).is_some()
                })
                .count()
        };
        let full = count(&healthy, late_start);
        let shrunk = count(&declining, late_start);
        assert!(
            shrunk * 2 < full,
            "a ~90% smaller fleet must see far less: {shrunk} vs {full}"
        );
        assert_eq!(count(&dark, SimTime(50_000)), 0, "outage week records nothing");
        assert_eq!(count(&dark, late_start), full, "outside the window: bit-identical");
    }

    #[test]
    fn observation_deterministic() {
        let plan = plan();
        let hp = Honeypot::amppot(&plan);
        let root = SimRng::new(5);
        let pool = plan.reflector_pools[&AmpVector::Ntp] as f64;
        let a = ra(42, AmpVector::Ntp, (pool * 0.05) as u32, 80_000.0, 1);
        let first = hp.observe(&a, &root);
        for _ in 0..10 {
            assert_eq!(hp.observe(&a, &root), first);
        }
    }
}
