//! The full packet-level honeypot processing pipeline, composed the way
//! the paper's data flows (§5): per-sensor flow detection (Table 2) →
//! CCC cross-sensor merging → Appendix-I carpet-bombing reconstruction
//! → observed attack events.
//!
//! The event-level [`crate::event::Honeypot`] path short-circuits all of
//! this for the macro study; this pipeline exists to process actual
//! packet streams (validation, examples, and any future replay of real
//! sensor logs).

use crate::aggregate::{
    events_to_observed, merge_sensor_flows, reconstruct_carpet_attacks, HoneypotEvent,
};
use crate::detector::HoneypotDetector;
use crate::platform::HoneypotConfig;
use attackgen::{ObservedAttack, PacketEvent};
use netmodel::InternetPlan;

/// Pipeline statistics, reported alongside the results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    pub packets_ingested: u64,
    pub flows_detected: usize,
    pub events_after_sensor_merge: usize,
    pub attacks_after_reconstruction: usize,
}

/// A packet-in, attacks-out honeypot processing pipeline.
#[derive(Debug)]
pub struct HoneypotPipeline {
    cfg: HoneypotConfig,
    detector: HoneypotDetector,
    packets: u64,
}

impl HoneypotPipeline {
    pub fn new(cfg: HoneypotConfig) -> Self {
        HoneypotPipeline {
            detector: HoneypotDetector::new(cfg.clone()),
            cfg,
            packets: 0,
        }
    }

    pub fn config(&self) -> &HoneypotConfig {
        &self.cfg
    }

    /// Ingest one captured packet (non-sensor traffic is ignored by the
    /// detector).
    pub fn ingest(&mut self, pkt: &PacketEvent) {
        self.packets += 1;
        self.detector.ingest(pkt);
    }

    /// Flush and run the full aggregation chain. The `plan` supplies
    /// the routed-prefix and allocation tables that the Appendix-I
    /// reconstruction consults.
    pub fn finish(self, plan: &InternetPlan) -> (Vec<ObservedAttack>, PipelineStats) {
        let flows = self.detector.finish();
        let flows_detected = flows.len();
        // CCC merge window: the platform's own flow timeout.
        let events: Vec<HoneypotEvent> = merge_sensor_flows(&flows, self.cfg.timeout_secs);
        let events_after_sensor_merge = events.len();
        let observed = events_to_observed(&events);
        let attacks = reconstruct_carpet_attacks(plan, &observed, self.cfg.timeout_secs);
        let stats = PipelineStats {
            packets_ingested: self.packets,
            flows_detected,
            events_after_sensor_merge,
            attacks_after_reconstruction: attacks.len(),
        };
        (attacks, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::{AmpVector, Asn, Ipv4, NetScale, Transport};
    use simcore::{SimRng, SimTime};

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn request(t: i64, victim: Ipv4, sensor: Ipv4, port: u16) -> PacketEvent {
        PacketEvent {
            time: SimTime(t),
            src: victim,
            src_port: 55_555,
            dst: sensor,
            dst_port: port,
            transport: Transport::Udp,
            size_bytes: 64,
        }
    }

    #[test]
    fn single_attack_one_event() {
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let sensor_a = cfg.sensors[0];
        let sensor_b = cfg.sensors[1];
        let victim = plan.registry.get(Asn(16276)).unwrap().prefixes[0].nth(9);
        let mut pipe = HoneypotPipeline::new(cfg);
        // The same attack reaches two sensors.
        for t in 0..20 {
            pipe.ingest(&request(t, victim, sensor_a, AmpVector::Dns.src_port()));
            pipe.ingest(&request(t, victim, sensor_b, AmpVector::Dns.src_port()));
        }
        let (attacks, stats) = pipe.finish(&plan);
        assert_eq!(stats.packets_ingested, 40);
        assert_eq!(stats.flows_detected, 2, "one flow per sensor");
        assert_eq!(stats.events_after_sensor_merge, 1, "CCC merges sensors");
        assert_eq!(attacks.len(), 1);
        assert_eq!(attacks[0].targets, vec![victim]);
    }

    #[test]
    fn carpet_attack_reconstructed() {
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let sensor = cfg.sensors[0];
        // Sweep 8 consecutive addresses of one OVH prefix.
        let base = plan.registry.get(Asn(16276)).unwrap().prefixes[0].base();
        let mut pipe = HoneypotPipeline::new(cfg);
        let mut t = 0i64;
        for off in 0..8u32 {
            let victim = Ipv4(base.0 + off);
            for _ in 0..6 {
                pipe.ingest(&request(t, victim, sensor, AmpVector::Ssdp.src_port()));
                t += 1;
            }
        }
        let (attacks, stats) = pipe.finish(&plan);
        assert_eq!(stats.flows_detected, 8, "one per-victim flow each");
        assert_eq!(stats.events_after_sensor_merge, 8);
        assert_eq!(
            attacks.len(),
            1,
            "Appendix-I reconstruction should collapse the carpet"
        );
        assert_eq!(attacks[0].targets.len(), 8);
    }

    #[test]
    fn cross_allocation_carpet_stays_split() {
        // Appendix I: sweeps across different allocations are recorded
        // as separate attacks.
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let sensor = cfg.sensors[0];
        let v1 = plan.registry.get(Asn(16276)).unwrap().prefixes[0].nth(1);
        let v2 = plan.registry.get(Asn(24940)).unwrap().prefixes[0].nth(1);
        let mut pipe = HoneypotPipeline::new(cfg);
        for t in 0..10 {
            pipe.ingest(&request(t, v1, sensor, AmpVector::Dns.src_port()));
            pipe.ingest(&request(t, v2, sensor, AmpVector::Dns.src_port()));
        }
        let (attacks, _) = pipe.finish(&plan);
        assert_eq!(attacks.len(), 2);
    }

    #[test]
    fn scans_filtered_by_thresholds() {
        // A scanner touches every sensor with 2 probes: zero attacks.
        let plan = plan();
        let cfg = HoneypotConfig::hopscotch(&plan);
        let sensors = cfg.sensors.clone();
        let scanner = Ipv4::new(45, 1, 1, 1);
        let mut pipe = HoneypotPipeline::new(cfg);
        for (i, &s) in sensors.iter().enumerate() {
            for k in 0..2 {
                pipe.ingest(&request(i as i64 * 3 + k, scanner, s, AmpVector::Dns.src_port()));
            }
        }
        let (attacks, stats) = pipe.finish(&plan);
        assert!(attacks.is_empty(), "scan probes must not become attacks");
        assert_eq!(stats.flows_detected, 0);
        assert_eq!(stats.packets_ingested, 130);
    }

    #[test]
    fn empty_pipeline() {
        let plan = plan();
        let pipe = HoneypotPipeline::new(HoneypotConfig::amppot(&plan));
        let (attacks, stats) = pipe.finish(&plan);
        assert!(attacks.is_empty());
        assert_eq!(stats, PipelineStats::default());
    }
}
