//! `telescope` — network-telescope observatories (UCSD-NT, ORION) with
//! the Corsaro RSDoS detector.
//!
//! Two fidelities over the same Appendix-J parameters:
//! [`corsaro::RsdosDetector`] consumes packet streams (used for
//! validation), [`event::Telescope`] computes per-attack verdicts
//! analytically (used for the 4.5-year macro study).

pub mod capture;
pub mod corsaro;
pub mod event;

pub use capture::{is_backscatter, TelescopeCapture};
pub use corsaro::{min_detectable_rate_mbps, FlowKey, RsdosAttack, RsdosConfig, RsdosDetector};
pub use event::Telescope;
