//! The Corsaro-style RSDoS detector (Appendix J), operating on packet
//! streams.
//!
//! Faithful to the published configuration:
//!
//! 1. **Flow identifier**: the tuple (protocol, source IP) — the source
//!    is the *victim* of the randomly-spoofed attack whose backscatter
//!    lands in the darknet. Ports are aggregated as data, not key.
//! 2. **Threshold**: a flow must reach ≥ 25 packets and last ≥ 60 s, and
//!    must at some point sustain ≥ 30 packets within a 60-second window
//!    that slides every 10 seconds.
//! 3. **Timeout**: packets are counted in 300-second intervals; after an
//!    interval with no new packets the attack flow is finished.
//!
//! Like Corsaro itself, once both thresholds have been met the flow
//! counts as an attack for the rest of its lifetime — any number of
//! further packets keeps it alive until the interval timeout.

use attackgen::PacketEvent;
use netmodel::Ipv4;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::HashMap;

/// Detector parameters (Appendix J defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RsdosConfig {
    /// Minimum packets from a single source IP.
    pub min_packets: u64,
    /// Minimum flow duration in seconds.
    pub min_duration_secs: i64,
    /// Packet-rate threshold: packets within one rate window.
    pub rate_threshold: u64,
    /// Rate window length in seconds.
    pub rate_window_secs: i64,
    /// Rate window slide in seconds.
    pub rate_slide_secs: i64,
    /// Interval length; a flow with an interval of silence is finished.
    pub interval_secs: i64,
}

impl Default for RsdosConfig {
    fn default() -> Self {
        RsdosConfig {
            min_packets: 25,
            min_duration_secs: 60,
            rate_threshold: 30,
            rate_window_secs: 60,
            rate_slide_secs: 10,
            interval_secs: 300,
        }
    }
}

/// Flow key per Appendix J: (protocol, source IP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    pub protocol: u8,
    pub src: Ipv4,
}

/// A finished flow that met the attack thresholds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsdosAttack {
    pub key: FlowKey,
    pub first_seen: SimTime,
    pub last_seen: SimTime,
    pub packets: u64,
    /// Maximum packets observed in any rate window.
    pub peak_window_packets: u64,
}

impl RsdosAttack {
    pub fn duration_secs(&self) -> i64 {
        self.last_seen.0 - self.first_seen.0
    }
}

#[derive(Debug)]
struct FlowState {
    first_seen: SimTime,
    last_seen: SimTime,
    packets: u64,
    /// Packet counts per rate-slide bucket, newest kept; pruned to the
    /// rate window length.
    buckets: Vec<(i64, u64)>,
    peak_window: u64,
    thresholds_met: bool,
}

impl FlowState {
    fn new(t: SimTime) -> Self {
        FlowState {
            first_seen: t,
            last_seen: t,
            packets: 0,
            buckets: Vec::new(),
            peak_window: 0,
            thresholds_met: false,
        }
    }
}

/// Streaming RSDoS detector. Feed packets in (approximately)
/// chronological order via [`RsdosDetector::ingest`], then call
/// [`RsdosDetector::finish`].
#[derive(Debug)]
pub struct RsdosDetector {
    cfg: RsdosConfig,
    flows: HashMap<FlowKey, FlowState>,
    finished: Vec<RsdosAttack>,
    last_expiry_check: i64,
}

impl RsdosDetector {
    pub fn new(cfg: RsdosConfig) -> Self {
        RsdosDetector {
            cfg,
            flows: HashMap::new(),
            finished: Vec::new(),
            last_expiry_check: i64::MIN,
        }
    }

    pub fn config(&self) -> &RsdosConfig {
        &self.cfg
    }

    /// Number of currently live flows.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Ingest one captured packet.
    pub fn ingest(&mut self, pkt: &PacketEvent) {
        // Periodically expire idle flows (piggybacked on packet arrival,
        // like Corsaro's interval processing).
        if pkt.time.0 >= self.last_expiry_check + self.cfg.interval_secs {
            self.expire_idle(pkt.time);
            self.last_expiry_check = pkt.time.0;
        }

        let key = FlowKey {
            protocol: pkt.transport.protocol_number(),
            src: pkt.src,
        };
        let slide = self.cfg.rate_slide_secs;
        let window_buckets = (self.cfg.rate_window_secs / slide).max(1);
        let flow = self
            .flows
            .entry(key)
            .or_insert_with(|| FlowState::new(pkt.time));
        flow.packets += 1;
        flow.last_seen = flow.last_seen.max(pkt.time);

        // Rate accounting: 10-second buckets, window = 6 buckets.
        let bucket = pkt.time.0.div_euclid(slide);
        match flow.buckets.last_mut() {
            Some((b, c)) if *b == bucket => *c += 1,
            _ => flow.buckets.push((bucket, 1)),
        }
        // Prune buckets older than the window relative to the newest.
        let newest = flow.buckets.last().map(|(b, _)| *b).unwrap_or(bucket);
        flow.buckets.retain(|(b, _)| newest - *b < window_buckets);
        let window_sum: u64 = flow.buckets.iter().map(|(_, c)| c).sum();
        flow.peak_window = flow.peak_window.max(window_sum);

        if !flow.thresholds_met
            && flow.packets >= self.cfg.min_packets
            && (flow.last_seen.0 - flow.first_seen.0) >= self.cfg.min_duration_secs
            && flow.peak_window >= self.cfg.rate_threshold
        {
            flow.thresholds_met = true;
        }
    }

    /// Expire flows idle for at least one interval before `now`.
    fn expire_idle(&mut self, now: SimTime) {
        let cutoff = now.0 - self.cfg.interval_secs;
        let cfg = &self.cfg;
        let finished = &mut self.finished;
        self.flows.retain(|key, flow| {
            if flow.last_seen.0 < cutoff {
                if flow.thresholds_met {
                    finished.push(RsdosAttack {
                        key: *key,
                        first_seen: flow.first_seen,
                        last_seen: flow.last_seen,
                        packets: flow.packets,
                        peak_window_packets: flow.peak_window,
                    });
                }
                let _ = cfg;
                false
            } else {
                true
            }
        });
    }

    /// Flush all remaining flows and return every detected attack,
    /// sorted by first-seen time.
    pub fn finish(mut self) -> Vec<RsdosAttack> {
        let keys: Vec<FlowKey> = self.flows.keys().copied().collect();
        for key in keys {
            let Some(flow) = self.flows.remove(&key) else {
                continue;
            };
            if flow.thresholds_met {
                self.finished.push(RsdosAttack {
                    key,
                    first_seen: flow.first_seen,
                    last_seen: flow.last_seen,
                    packets: flow.packets,
                    peak_window_packets: flow.peak_window,
                });
            }
        }
        self.finished.sort_by_key(|a| (a.first_seen, a.key.src));
        self.finished
    }
}

/// The minimum attack rate (in Mbps) a telescope of the given coverage
/// can detect within one 300-second interval — the §5 calculation that
/// yields ≈ 0.026 Mbps for UCSD-NT and ≈ 0.60 Mbps for ORION.
///
/// Binding constraint: `min_packets` backscatter packets must land in
/// the darknet within the interval, i.e.
/// `attack_pps * coverage * interval >= min_packets`. The paper's
/// figures imply an average attack-packet size of ≈ 114 bytes on the
/// wire (mixed SYN / SYN-ACK / RST backscatter), which we adopt.
pub fn min_detectable_rate_mbps(coverage: f64, cfg: &RsdosConfig) -> f64 {
    const AVG_PACKET_BYTES: f64 = 114.0;
    let attack_pps = cfg.min_packets as f64 / (coverage * cfg.interval_secs as f64);
    attack_pps * AVG_PACKET_BYTES * 8.0 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::Transport;

    fn pkt(t: i64, src: u32) -> PacketEvent {
        PacketEvent {
            time: SimTime(t),
            src: Ipv4(src),
            src_port: 80,
            dst: Ipv4(0x2C00_0001),
            dst_port: 50_000,
            transport: Transport::Tcp,
            size_bytes: 60,
        }
    }

    /// A compliant attack: 1 packet/second for `secs` seconds.
    fn feed_steady(det: &mut RsdosDetector, src: u32, start: i64, secs: i64) {
        for s in 0..secs {
            det.ingest(&pkt(start + s, src));
        }
    }

    #[test]
    fn detects_compliant_flow() {
        let mut det = RsdosDetector::new(RsdosConfig::default());
        feed_steady(&mut det, 1, 0, 120); // 120 pkts, 120 s, 60/window
        let attacks = det.finish();
        assert_eq!(attacks.len(), 1);
        let a = &attacks[0];
        assert_eq!(a.packets, 120);
        assert_eq!(a.duration_secs(), 119);
        assert!(a.peak_window_packets >= 30);
    }

    #[test]
    fn too_few_packets_rejected() {
        let mut det = RsdosDetector::new(RsdosConfig::default());
        // 20 packets over 100 s: duration OK, count under 25.
        for i in 0..20 {
            det.ingest(&pkt(i * 5, 1));
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn too_short_duration_rejected() {
        let mut det = RsdosDetector::new(RsdosConfig::default());
        // 100 packets in 30 s: count and rate OK, duration under 60 s.
        for i in 0..100 {
            det.ingest(&pkt(i * 30 / 100, 1));
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn rate_threshold_required() {
        let mut det = RsdosDetector::new(RsdosConfig::default());
        // 30 packets over 300 s: count/duration OK, but only 6 packets
        // per 60-s window — under the 30-packet rate threshold.
        for i in 0..30 {
            det.ingest(&pkt(i * 10, 1));
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn burst_then_trickle_still_counts() {
        // Appendix J: once both thresholds are met, "any number of
        // packets is enough to maintain it until the flow times out".
        let mut det = RsdosDetector::new(RsdosConfig::default());
        feed_steady(&mut det, 1, 0, 90); // meets everything
        // Trickle one packet every 250 s (inside the 300 s interval).
        for k in 1..=5 {
            det.ingest(&pkt(90 + k * 250, 1));
        }
        let attacks = det.finish();
        assert_eq!(attacks.len(), 1);
        assert_eq!(attacks[0].last_seen, SimTime(90 + 5 * 250));
    }

    #[test]
    fn idle_interval_splits_flows() {
        let mut det = RsdosDetector::new(RsdosConfig::default());
        feed_steady(&mut det, 1, 0, 90);
        // Silence for > 2 intervals, then a second qualifying attack
        // from the same source.
        feed_steady(&mut det, 1, 90 + 700, 90);
        let attacks = det.finish();
        assert_eq!(attacks.len(), 2, "idle gap should split the flow");
        assert_eq!(attacks[0].packets, 90);
        assert_eq!(attacks[1].packets, 90);
    }

    #[test]
    fn flows_keyed_by_protocol_and_src() {
        let mut det = RsdosDetector::new(RsdosConfig::default());
        feed_steady(&mut det, 1, 0, 90);
        // Same src, different protocol: independent flow, under
        // thresholds.
        let mut icmp = pkt(10, 1);
        icmp.transport = Transport::Icmp;
        det.ingest(&icmp);
        feed_steady(&mut det, 2, 0, 90);
        let attacks = det.finish();
        assert_eq!(attacks.len(), 2);
        let srcs: Vec<u32> = attacks.iter().map(|a| a.key.src.0).collect();
        assert!(srcs.contains(&1) && srcs.contains(&2));
    }

    #[test]
    fn second_attack_after_expiry_detected_mid_stream() {
        // Expiry is piggybacked on later packets from other flows.
        let mut det = RsdosDetector::new(RsdosConfig::default());
        feed_steady(&mut det, 1, 0, 90);
        feed_steady(&mut det, 2, 2000, 90); // triggers expiry of flow 1
        assert_eq!(det.live_flows(), 1, "flow 1 should have expired");
        let attacks = det.finish();
        assert_eq!(attacks.len(), 2);
    }

    #[test]
    fn min_detectable_rates_match_paper() {
        let cfg = RsdosConfig::default();
        // §5: UCSD-NT (≈12M addresses of 2^32) detects ~0.026 Mbps,
        // ORION (≈500k) ~0.60 Mbps.
        let ucsd_cov = 12_582_912.0 / 4_294_967_296.0;
        let orion_cov = 524_288.0 / 4_294_967_296.0;
        let ucsd = min_detectable_rate_mbps(ucsd_cov, &cfg);
        let orion = min_detectable_rate_mbps(orion_cov, &cfg);
        assert!((ucsd - 0.026).abs() < 0.005, "ucsd {ucsd}");
        assert!((orion - 0.60).abs() < 0.1, "orion {orion}");
        // And the ratio is exactly the size ratio.
        assert!((orion / ucsd - 24.0).abs() < 0.01);
    }

    #[test]
    fn peak_window_tracks_bursts() {
        let mut det = RsdosDetector::new(RsdosConfig::default());
        // 10 pps for 10 s = 100 packets in one window.
        for i in 0..100 {
            det.ingest(&pkt(i / 10, 1));
        }
        // Stretch duration past 60 s.
        det.ingest(&pkt(70, 1));
        let attacks = det.finish();
        assert_eq!(attacks.len(), 1);
        assert!(attacks[0].peak_window_packets >= 100);
    }

    #[test]
    fn empty_stream_no_attacks() {
        let det = RsdosDetector::new(RsdosConfig::default());
        assert!(det.finish().is_empty());
    }
}
