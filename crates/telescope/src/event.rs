//! Event-level telescope observatory: the fast visibility model used for
//! the 4.5-year macro study.
//!
//! Applies the *same* Appendix-J thresholds as the packet-level
//! [`crate::corsaro::RsdosDetector`], but analytically: for each
//! ground-truth attack it computes the expected backscatter rate into
//! the darknet and samples the detector verdict, instead of materializing
//! millions of packets. The `corsaro_agrees_with_event_model` test in
//! this crate cross-validates the two paths.

use crate::corsaro::RsdosConfig;
use attackgen::packets::BACKSCATTER_RESPONSE_RATE;
use attackgen::{Attack, AttackClass, AttackRef, ObservationColumns, ObservedAttack};
use netmodel::{InternetPlan, TelescopePlan};
use simcore::dist::poisson;
use simcore::faults::ObsFaults;
use simcore::SimRng;

/// An operating network telescope.
#[derive(Debug, Clone)]
pub struct Telescope {
    pub spec: TelescopePlan,
    pub cfg: RsdosConfig,
    /// Fraction of attack packets the victim answers.
    pub response_rate: f64,
    /// Injected data-plane faults (outage windows). Empty by default
    /// and bit-for-bit inert when empty.
    pub faults: ObsFaults,
}

impl Telescope {
    /// The UCSD-NT instance (/9 + /10, ≈ 12M addresses).
    pub fn ucsd(plan: &InternetPlan) -> Self {
        Telescope {
            spec: plan.ucsd.clone(),
            cfg: RsdosConfig::default(),
            response_rate: BACKSCATTER_RESPONSE_RATE,
            faults: ObsFaults::default(),
        }
    }

    /// The Merit ORION instance (/13, ≈ 500k addresses).
    pub fn orion(plan: &InternetPlan) -> Self {
        Telescope {
            spec: plan.orion.clone(),
            cfg: RsdosConfig::default(),
            response_rate: BACKSCATTER_RESPONSE_RATE,
            faults: ObsFaults::default(),
        }
    }

    /// Darknet coverage of the IPv4 space.
    pub fn coverage(&self) -> f64 {
        self.spec.coverage()
    }

    /// Event-level observation of one attack, appended directly to a
    /// columnar sink. Returns whether a row was emitted; when the
    /// telescope sees nothing that clears the RSDoS thresholds the sink
    /// is left untouched.
    ///
    /// The verdict RNG is forked from (attack id, telescope name) so
    /// observations are deterministic and independent across
    /// observatories regardless of processing order.
    pub fn observe_into(
        &self,
        attack: AttackRef<'_>,
        root: &SimRng,
        out: &mut ObservationColumns,
    ) -> bool {
        // Outage check first, before any RNG fork: a dark telescope
        // records nothing, and the fault path must not perturb the
        // verdict streams of unaffected weeks.
        if self.faults.is_down(attack.start.week_index()) {
            return false;
        }
        if attack.class != AttackClass::DirectPathSpoofed {
            return false;
        }
        let f = attack.spoof_space_fraction;
        if f <= 0.0 {
            return false;
        }
        let mut rng = root.fork(attack.id.0).fork_named(&self.spec.name);
        // Is the darknet inside the attacker's spoof rotation range?
        if !rng.chance(f) {
            return false;
        }
        let density = (self.coverage() / f).min(1.0);
        let duration = attack.duration_secs as i64;
        if duration < self.cfg.min_duration_secs {
            return false;
        }
        out.begin_row(attack.id, attack.start);
        for &victim in attack.targets {
            // Backscatter rate from this victim into the darknet.
            let lambda = attack.pps_per_target() * self.response_rate * density;
            let total = poisson(&mut rng, lambda * attack.duration_secs as f64);
            if total < self.cfg.min_packets {
                continue;
            }
            // Peak sliding-window check: the max over the flow's windows
            // exceeds the threshold if any of a handful of sampled
            // windows does (windows overlap; a few draws approximate the
            // running maximum well).
            let windows = (duration / self.cfg.rate_slide_secs).clamp(1, 6);
            let window_mean = lambda * self.cfg.rate_window_secs as f64;
            let peak = (0..windows)
                .map(|_| poisson(&mut rng, window_mean))
                .max()
                .unwrap_or(0);
            if peak >= self.cfg.rate_threshold {
                out.push_target(victim);
            }
        }
        if out.pending_targets() == 0 {
            out.rollback_row();
            return false;
        }
        out.commit_row();
        true
    }

    /// Event-level observation of one struct attack (the columnar
    /// [`Telescope::observe_into`] through a one-row sink).
    pub fn observe(&self, attack: &Attack, root: &SimRng) -> Option<ObservedAttack> {
        let mut out = ObservationColumns::new();
        self.observe_into(attack.view(), root, &mut out)
            .then(|| out.get(0).to_observed())
    }

    /// Observe a whole attack stream.
    pub fn observe_all(&self, attacks: &[Attack], root: &SimRng) -> Vec<ObservedAttack> {
        attacks
            .iter()
            .filter_map(|a| self.observe(a, root))
            .collect()
    }

    /// Observe a whole attack stream, sharded across `pool`. Per-attack
    /// verdicts fork from (attack id, telescope name), so shard
    /// boundaries cannot perturb them; the pool merges shards in input
    /// order, making the result identical to [`Telescope::observe_all`].
    pub fn observe_all_on(
        &self,
        attacks: &[Attack],
        root: &SimRng,
        pool: &simcore::ExecPool,
    ) -> Vec<ObservedAttack> {
        pool.par_filter_map(attacks, |a| self.observe(a, root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corsaro::RsdosDetector;
    use attackgen::attack::{AttackId, AttackVector};
    use attackgen::packets::backscatter_packets;
    use netmodel::{Asn, Ipv4, NetScale};

    fn plan() -> InternetPlan {
        let mut rng = SimRng::new(100);
        InternetPlan::build(&NetScale::tiny(), &mut rng)
    }

    fn rsdos(id: u64, pps: f64, duration: u32, spoof: f64) -> Attack {
        Attack {
            id: AttackId(id),
            class: AttackClass::DirectPathSpoofed,
            vector: AttackVector::SynFlood,
            start: simcore::SimTime(10_000),
            duration_secs: duration,
            targets: vec![Ipv4::new(93, 184, 216, 34)],
            target_asn: Asn(1),
            pps,
            bps: pps * 3360.0,
            reflectors: None,
            spoof_space_fraction: spoof,
            campaign: None,
        }
    }

    #[test]
    fn big_attack_seen_by_both_telescopes() {
        let plan = plan();
        let (ucsd, orion) = (Telescope::ucsd(&plan), Telescope::orion(&plan));
        let root = SimRng::new(1);
        let a = rsdos(1, 500_000.0, 600, 1.0);
        assert!(ucsd.observe(&a, &root).is_some());
        assert!(orion.observe(&a, &root).is_some());
    }

    #[test]
    fn small_attack_seen_only_by_ucsd() {
        // §6.1 reason (i): UCSD is ~24x larger, so it detects attacks
        // ORION cannot.
        let plan = plan();
        let (ucsd, orion) = (Telescope::ucsd(&plan), Telescope::orion(&plan));
        let root = SimRng::new(1);
        // ~0.2 Mbps: above UCSD's 0.026 Mbps floor, below ORION's 0.6.
        let mut ucsd_hits = 0;
        let mut orion_hits = 0;
        for id in 0..100 {
            let a = rsdos(id, 400.0, 600, 1.0);
            ucsd_hits += ucsd.observe(&a, &root).is_some() as u32;
            orion_hits += orion.observe(&a, &root).is_some() as u32;
        }
        assert!(ucsd_hits > 90, "ucsd {ucsd_hits}");
        assert!(orion_hits < 10, "orion {orion_hits}");
    }

    #[test]
    fn tiny_attack_missed_by_both() {
        let plan = plan();
        let (ucsd, orion) = (Telescope::ucsd(&plan), Telescope::orion(&plan));
        let root = SimRng::new(1);
        for id in 0..50 {
            let a = rsdos(id, 50.0, 300, 1.0);
            assert!(ucsd.observe(&a, &root).is_none());
            assert!(orion.observe(&a, &root).is_none());
        }
    }

    #[test]
    fn non_rsdos_invisible() {
        let plan = plan();
        let ucsd = Telescope::ucsd(&plan);
        let root = SimRng::new(1);
        let mut a = rsdos(1, 500_000.0, 600, 1.0);
        a.class = AttackClass::DirectPathNonSpoofed;
        a.spoof_space_fraction = 0.0;
        assert!(ucsd.observe(&a, &root).is_none());
        a.class = AttackClass::ReflectionAmplification;
        assert!(ucsd.observe(&a, &root).is_none());
    }

    #[test]
    fn short_attack_rejected() {
        let plan = plan();
        let ucsd = Telescope::ucsd(&plan);
        let root = SimRng::new(1);
        let a = rsdos(1, 500_000.0, 45, 1.0); // under 60 s
        assert!(ucsd.observe(&a, &root).is_none());
    }

    #[test]
    fn partial_spoof_misses_sometimes() {
        let plan = plan();
        let ucsd = Telescope::ucsd(&plan);
        let root = SimRng::new(1);
        let seen = (0..300)
            .filter(|&id| ucsd.observe(&rsdos(id, 500_000.0, 600, 0.4), &root).is_some())
            .count();
        // ~40% inclusion probability.
        assert!((80..=160).contains(&seen), "seen {seen}");
    }

    #[test]
    fn observation_deterministic() {
        let plan = plan();
        let ucsd = Telescope::ucsd(&plan);
        let root = SimRng::new(9);
        let a = rsdos(7, 2_000.0, 300, 0.7);
        let first = ucsd.observe(&a, &root);
        for _ in 0..10 {
            assert_eq!(ucsd.observe(&a, &root), first);
        }
    }

    #[test]
    fn telescopes_decorrelated_per_attack() {
        // The same attack must get *different* randomness at the two
        // telescopes (partial-spoof inclusion must not be lockstep).
        let plan = plan();
        let (ucsd, orion) = (Telescope::ucsd(&plan), Telescope::orion(&plan));
        let root = SimRng::new(9);
        let mut diverged = false;
        for id in 0..200 {
            let a = rsdos(id, 10_000_000.0, 600, 0.5);
            let u = ucsd.observe(&a, &root).is_some();
            let o = orion.observe(&a, &root).is_some();
            if u != o {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "inclusion draws should differ across telescopes");
    }

    #[test]
    fn corsaro_agrees_with_event_model() {
        // Cross-validate packet-level Corsaro against the event-level
        // verdict across a pps sweep: away from the threshold boundary
        // the two fidelities must agree.
        let plan = plan();
        let ucsd = Telescope::ucsd(&plan);
        let root = SimRng::new(31);
        let mut agreements = 0;
        let mut total = 0;
        for (i, &pps) in [100.0f64, 400.0, 1500.0, 6000.0, 25_000.0, 100_000.0]
            .iter()
            .enumerate()
        {
            for rep in 0..5 {
                let a = rsdos(1000 + (i * 5 + rep) as u64, pps, 600, 1.0);
                let event_verdict = ucsd.observe(&a, &root).is_some();
                let mut pkt_rng = root.fork(a.id.0).fork_named("packets");
                let pkts = backscatter_packets(&a, &ucsd.spec, &mut pkt_rng);
                let mut det = RsdosDetector::new(RsdosConfig::default());
                for p in &pkts {
                    det.ingest(p);
                }
                let packet_verdict = !det.finish().is_empty();
                total += 1;
                if event_verdict == packet_verdict {
                    agreements += 1;
                }
            }
        }
        let rate = agreements as f64 / total as f64;
        assert!(rate >= 0.85, "agreement rate {rate}");
    }

    #[test]
    fn outage_blacks_out_exactly_its_window() {
        let plan = plan();
        let mut dark = Telescope::ucsd(&plan);
        let week = rsdos(1, 1.0, 1, 1.0).start.week_index() as u32;
        dark.faults.outages.push(simcore::faults::OutageWindow {
            start_week: week,
            end_week: week + 1,
        });
        let healthy = Telescope::ucsd(&plan);
        let root = SimRng::new(1);
        let a = rsdos(1, 500_000.0, 600, 1.0);
        assert!(healthy.observe(&a, &root).is_some());
        assert!(dark.observe(&a, &root).is_none(), "in-window attack must vanish");
        // An attack one week later is past the outage and must match
        // the healthy telescope bit-for-bit.
        let mut later = rsdos(2, 500_000.0, 600, 1.0);
        later.start = simcore::SimTime(later.start.0 + 7 * 86_400);
        assert_eq!(dark.observe(&later, &root), healthy.observe(&later, &root));
    }

    #[test]
    fn observe_all_filters() {
        let plan = plan();
        let ucsd = Telescope::ucsd(&plan);
        let root = SimRng::new(2);
        let attacks = vec![
            rsdos(1, 500_000.0, 600, 1.0),
            rsdos(2, 10.0, 300, 1.0),
            rsdos(3, 500_000.0, 600, 1.0),
        ];
        let seen = ucsd.observe_all(&attacks, &root);
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|o| o.attack_id.0 != 2));
    }
}
