//! The telescope capture front-end: backscatter classification.
//!
//! A darknet receives a mix of Internet background radiation — scan
//! probes, misconfiguration, and the RSDoS *backscatter* that the DoS
//! analysis wants (§2.2). Corsaro's DoS pipeline only counts response
//! traffic (SYN-ACK/RST/ICMP replies); feeding raw probes into the flow
//! table would turn every Internet-wide scanner into a phantom
//! "attack". We model the response/probe distinction through the port
//! structure: responses come *from* service ports, probes go *to* them.

use crate::corsaro::{RsdosAttack, RsdosConfig, RsdosDetector};
use attackgen::PacketEvent;
use netmodel::Transport;

/// Is this packet backscatter (a response), as opposed to a probe or
/// payload request?
///
/// Heuristic mirroring the Corsaro classification:
/// * ICMP toward the darknet is a reply artifact (echo reply,
///   port/host unreachable) — backscatter;
/// * TCP *from* a well-known service port is a SYN-ACK/RST from a
///   victim's service — backscatter;
/// * anything aimed *at* a service port from an ephemeral port is a
///   probe/request — not backscatter.
pub fn is_backscatter(pkt: &PacketEvent) -> bool {
    match pkt.transport {
        Transport::Icmp => true,
        Transport::Tcp => pkt.src_port < 1024,
        Transport::Udp => {
            // UDP responses come from the service port (e.g. a DNS
            // answer from :53); probes target the service port from an
            // ephemeral source.
            pkt.src_port < 1024 && pkt.dst_port >= 1024
        }
    }
}

/// A telescope capture pipeline: backscatter filter in front of the
/// RSDoS detector, with drop accounting.
#[derive(Debug)]
pub struct TelescopeCapture {
    detector: RsdosDetector,
    pub backscatter_packets: u64,
    pub filtered_packets: u64,
}

impl TelescopeCapture {
    pub fn new(cfg: RsdosConfig) -> Self {
        TelescopeCapture {
            detector: RsdosDetector::new(cfg),
            backscatter_packets: 0,
            filtered_packets: 0,
        }
    }

    /// Ingest one darknet packet; non-backscatter is counted and
    /// dropped before the flow table.
    pub fn ingest(&mut self, pkt: &PacketEvent) {
        if is_backscatter(pkt) {
            self.backscatter_packets += 1;
            self.detector.ingest(pkt);
        } else {
            self.filtered_packets += 1;
        }
    }

    /// Finish and return detected RSDoS attacks.
    pub fn finish(self) -> Vec<RsdosAttack> {
        self.detector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attackgen::scans::{scan_probe_packets, ScanCampaign};
    use netmodel::{AmpVector, Ipv4};
    use simcore::{SimRng, SimTime};

    fn backscatter_pkt(t: i64, victim: u32) -> PacketEvent {
        PacketEvent {
            time: SimTime(t),
            src: Ipv4(victim),
            src_port: 80, // SYN-ACK from the victim's web server
            dst: Ipv4(0x2C00_0001),
            dst_port: 51_000,
            transport: Transport::Tcp,
            size_bytes: 60,
        }
    }

    #[test]
    fn classification_basics() {
        assert!(is_backscatter(&backscatter_pkt(0, 1)));
        let mut probe = backscatter_pkt(0, 1);
        probe.src_port = 40_000;
        probe.dst_port = 443;
        assert!(!is_backscatter(&probe));
        probe.transport = Transport::Icmp;
        assert!(is_backscatter(&probe));
    }

    #[test]
    fn scanner_would_fool_raw_detector_but_not_capture() {
        // An Internet-wide scanner hitting a large darknet sends enough
        // probes from one source to satisfy every RSDoS threshold — the
        // backscatter filter is what keeps it out of the attack counts.
        let scan = ScanCampaign {
            scanner: Ipv4::new(45, 9, 9, 9),
            vector: None,
            start: SimTime(0),
            duration_secs: 300,
            pps: 50_000.0,
            probes_per_target: 1,
        };
        let darknet_sample: Vec<Ipv4> = (0..2000).map(|i| Ipv4(0x2C00_0000 + i)).collect();
        let mut rng = SimRng::new(1);
        let probes = scan_probe_packets(&scan, &darknet_sample, &mut rng);

        // Raw detector: false positive.
        let mut raw = RsdosDetector::new(RsdosConfig::default());
        for p in &probes {
            raw.ingest(p);
        }
        assert_eq!(raw.finish().len(), 1, "raw detector should be fooled");

        // Capture pipeline: filtered.
        let mut capture = TelescopeCapture::new(RsdosConfig::default());
        for p in &probes {
            capture.ingest(p);
        }
        assert_eq!(capture.filtered_packets, probes.len() as u64);
        assert!(capture.finish().is_empty(), "capture must drop scan probes");
    }

    #[test]
    fn backscatter_passes_through() {
        let mut capture = TelescopeCapture::new(RsdosConfig::default());
        for t in 0..120 {
            capture.ingest(&backscatter_pkt(t, 0x5060_0001));
        }
        assert_eq!(capture.backscatter_packets, 120);
        assert_eq!(capture.filtered_packets, 0);
        let attacks = capture.finish();
        assert_eq!(attacks.len(), 1);
    }

    #[test]
    fn mixed_stream_counts_only_backscatter() {
        let scan = ScanCampaign {
            scanner: Ipv4::new(45, 9, 9, 9),
            vector: Some(AmpVector::Dns),
            start: SimTime(0),
            duration_secs: 120,
            pps: 1000.0,
            probes_per_target: 2,
        };
        let darknet_sample: Vec<Ipv4> = (0..100).map(|i| Ipv4(0x2C00_0000 + i)).collect();
        let mut rng = SimRng::new(2);
        let mut stream = scan_probe_packets(&scan, &darknet_sample, &mut rng);
        for t in 0..120 {
            stream.push(backscatter_pkt(t, 0x5060_0001));
        }
        stream.sort_by_key(|p| p.time);
        let mut capture = TelescopeCapture::new(RsdosConfig::default());
        for p in &stream {
            capture.ingest(p);
        }
        assert_eq!(capture.backscatter_packets, 120);
        assert_eq!(capture.filtered_packets, 200);
        let attacks = capture.finish();
        assert_eq!(attacks.len(), 1);
        assert_eq!(attacks[0].key.src, Ipv4(0x5060_0001));
    }
}
