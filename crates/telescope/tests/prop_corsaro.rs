//! Property-based tests for the Corsaro RSDoS detector: threshold
//! monotonicity and stream-structure invariants.

use attackgen::PacketEvent;
use netmodel::{Ipv4, Transport};
use proptest::prelude::*;
use simcore::SimTime;
use telescope::{RsdosConfig, RsdosDetector};

fn pkt(t: i64, src: u32) -> PacketEvent {
    PacketEvent {
        time: SimTime(t),
        src: Ipv4(src),
        src_port: 80,
        dst: Ipv4(0x2C00_0001),
        dst_port: 50_000,
        transport: Transport::Tcp,
        size_bytes: 60,
    }
}

/// Feed a constant-rate flow: `pps` packets per second for `secs`.
fn run_constant_flow(pps: u32, secs: u32) -> usize {
    let mut det = RsdosDetector::new(RsdosConfig::default());
    for s in 0..secs as i64 {
        for _ in 0..pps {
            det.ingest(&pkt(s, 7));
        }
    }
    det.finish().len()
}

proptest! {
    /// Detection is monotone in rate: if a constant-rate flow is
    /// detected at rate r, it is detected at any higher rate with the
    /// same duration. (Deterministic detector, exhaustive over the
    /// sampled pair.)
    #[test]
    fn detection_monotone_in_rate(lo in 1u32..8, extra in 1u32..8, secs in 61u32..240) {
        let hi = lo + extra;
        let det_lo = run_constant_flow(lo, secs);
        let det_hi = run_constant_flow(hi, secs);
        prop_assert!(det_hi >= det_lo, "rate {lo}->{hi} lost detection");
    }

    /// Detection is monotone in duration at a qualifying rate.
    #[test]
    fn detection_monotone_in_duration(short in 10u32..120, extra in 1u32..240) {
        let long = short + extra;
        prop_assert!(run_constant_flow(1, long) >= run_constant_flow(1, short));
    }

    /// A flow below the packet threshold is never an attack, however
    /// it is spread in time.
    #[test]
    fn under_count_never_detected(
        times in proptest::collection::vec(0i64..100_000, 1..24),
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut det = RsdosDetector::new(RsdosConfig::default());
        for t in sorted {
            det.ingest(&pkt(t, 9));
        }
        prop_assert!(det.finish().is_empty());
    }

    /// Distinct sources never share flows: per-source verdicts are
    /// independent of interleaving.
    #[test]
    fn sources_independent(n_sources in 1u32..6, secs in 61u32..120) {
        // Interleaved: all sources at 1 pps.
        let mut det = RsdosDetector::new(RsdosConfig::default());
        for s in 0..secs as i64 {
            for src in 0..n_sources {
                det.ingest(&pkt(s, 100 + src));
            }
        }
        let interleaved = det.finish().len();
        // Sequential per-source runs.
        let single = run_constant_flow(1, secs);
        prop_assert_eq!(interleaved, single * n_sources as usize);
    }

    /// Reported attacks always satisfy the configured thresholds.
    #[test]
    fn reported_attacks_satisfy_thresholds(
        bursts in proptest::collection::vec((0i64..5_000, 1u32..120, 1u32..12), 1..8),
    ) {
        let cfg = RsdosConfig::default();
        let mut det = RsdosDetector::new(cfg.clone());
        let mut events: Vec<PacketEvent> = Vec::new();
        for (start, secs, pps) in bursts {
            for s in 0..secs as i64 {
                for _ in 0..pps {
                    events.push(pkt(start + s, 42));
                }
            }
        }
        events.sort_by_key(|p| p.time);
        for e in &events {
            det.ingest(e);
        }
        for attack in det.finish() {
            prop_assert!(attack.packets >= cfg.min_packets);
            prop_assert!(attack.duration_secs() >= cfg.min_duration_secs);
            prop_assert!(attack.peak_window_packets >= cfg.rate_threshold);
            prop_assert!(attack.first_seen <= attack.last_seen);
        }
    }
}
