//! Synthetic vendor reports: derive an industry-report-style summary
//! from a vantage point's observed weekly series.
//!
//! The paper's §3 complaint is that vendor reports compare short
//! periods, mix absolute and relative numbers, and cherry-pick. This
//! module deliberately reproduces the *format* (year-over-year relative
//! change per attack class) from simulated observatory data so the
//! Table-1 comparison — academic trend symbols vs industry claim counts
//! — can be regenerated end to end, and so the cherry-picking effect
//! can be studied (see `period_sensitivity`).

use crate::corpus::TrendClaim;
use analytics::WeeklySeries;
use serde::{Deserialize, Serialize};

/// Year-over-year summary a synthetic vendor report would publish.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthReport {
    pub vantage: String,
    /// Relative change of 2022 attack counts vs 2021.
    pub dp_yoy: Option<f64>,
    pub ra_yoy: Option<f64>,
    pub dp_claim: TrendClaim,
    pub ra_claim: TrendClaim,
}

/// Week index ranges of calendar years within the study window.
/// 2019 starts at week 0; years are 52/53 weeks — we use the calendar.
fn year_weeks(year: i32) -> (usize, usize) {
    let start = simcore::Date::new(year, 1, 1).to_sim_time().week_index();
    let end = simcore::Date::new(year + 1, 1, 1).to_sim_time().week_index();
    (
        start.clamp(0, simcore::STUDY_WEEKS as i64) as usize,
        end.clamp(0, simcore::STUDY_WEEKS as i64) as usize,
    )
}

/// Sum of present values over a calendar year.
pub fn yearly_total(series: &WeeklySeries, year: i32) -> f64 {
    let (lo, hi) = year_weeks(year);
    series
        .present()
        .filter(|(i, _)| (lo..hi).contains(i))
        .map(|(_, v)| v)
        .sum()
}

/// Relative change between two calendar years of a series. `None` if
/// the base year has no volume.
pub fn yoy_change(series: &WeeklySeries, from: i32, to: i32) -> Option<f64> {
    let base = yearly_total(series, from);
    if base <= 0.0 {
        return None;
    }
    Some((yearly_total(series, to) - base) / base)
}

fn claim_from_change(change: Option<f64>) -> TrendClaim {
    match change {
        None => TrendClaim::NotReported,
        Some(c) if c > 0.05 => TrendClaim::Increase(Some(c)),
        Some(c) if c < -0.05 => TrendClaim::Decrease(Some(c)),
        Some(_) => TrendClaim::Mixed,
    }
}

/// Build the 2022-vs-2021 synthetic report for a vantage point.
pub fn synthesize(vantage: &str, dp: &WeeklySeries, ra: &WeeklySeries) -> SynthReport {
    let dp_yoy = yoy_change(dp, 2021, 2022);
    let ra_yoy = yoy_change(ra, 2021, 2022);
    SynthReport {
        vantage: vantage.to_string(),
        dp_yoy,
        ra_yoy,
        dp_claim: claim_from_change(dp_yoy),
        ra_claim: claim_from_change(ra_yoy),
    }
}

/// §3 "Comparing short periods may be misleading": relative changes of
/// each quarter of `year` vs the same quarter of the previous year.
/// The spread across quarters quantifies how much a cherry-picked
/// quarter could distort the annual story.
pub fn period_sensitivity(series: &WeeklySeries, year: i32) -> Vec<Option<f64>> {
    (1..=4u8)
        .map(|q| {
            let month = (q - 1) * 3 + 1;
            let q_start =
                simcore::Date::new(year, month, 1).to_sim_time().week_index();
            let q_end = if q == 4 {
                simcore::Date::new(year + 1, 1, 1).to_sim_time().week_index()
            } else {
                simcore::Date::new(year, month + 3, 1).to_sim_time().week_index()
            };
            let prev_start =
                simcore::Date::new(year - 1, month, 1).to_sim_time().week_index();
            let prev_end = if q == 4 {
                simcore::Date::new(year, 1, 1).to_sim_time().week_index()
            } else {
                simcore::Date::new(year - 1, month + 3, 1).to_sim_time().week_index()
            };
            let sum = |lo: i64, hi: i64| -> f64 {
                series
                    .present()
                    .filter(|(i, _)| (*i as i64) >= lo && (*i as i64) < hi)
                    .map(|(_, v)| v)
                    .sum()
            };
            let base = sum(prev_start, prev_end);
            if base <= 0.0 {
                None
            } else {
                Some((sum(q_start, q_end) - base) / base)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_year_levels(level_2021: f64, level_2022: f64) -> WeeklySeries {
        let mut values = vec![0.0; simcore::STUDY_WEEKS];
        let (lo21, hi21) = year_weeks(2021);
        let (lo22, hi22) = year_weeks(2022);
        for v in &mut values[lo21..hi21] {
            *v = level_2021;
        }
        for v in &mut values[lo22..hi22] {
            *v = level_2022;
        }
        WeeklySeries::new("x", values)
    }

    #[test]
    fn yearly_total_sums_calendar_year() {
        let s = series_with_year_levels(10.0, 20.0);
        let (lo, hi) = year_weeks(2021);
        assert_eq!(yearly_total(&s, 2021), 10.0 * (hi - lo) as f64);
        assert_eq!(yearly_total(&s, 2019), 0.0);
    }

    #[test]
    fn yoy_change_detects_netscout_style_drop() {
        // Reproduce the famous −17 %: 2022 at 83 % of 2021.
        let s = series_with_year_levels(100.0, 83.0);
        let change = yoy_change(&s, 2021, 2022).unwrap();
        // Week-count differences between years introduce ≤2 % slack.
        assert!((change + 0.17).abs() < 0.02, "change {change}");
    }

    #[test]
    fn yoy_none_without_base_volume() {
        let s = series_with_year_levels(0.0, 50.0);
        assert!(yoy_change(&s, 2021, 2022).is_none());
    }

    #[test]
    fn synthesize_claims() {
        let dp = series_with_year_levels(100.0, 140.0);
        let ra = series_with_year_levels(100.0, 80.0);
        let r = synthesize("TestVantage", &dp, &ra);
        assert!(matches!(r.dp_claim, TrendClaim::Increase(Some(c)) if c > 0.3));
        assert!(matches!(r.ra_claim, TrendClaim::Decrease(Some(c)) if c < -0.1));
        assert_eq!(r.vantage, "TestVantage");
    }

    #[test]
    fn synthesize_flat_is_mixed() {
        let s = series_with_year_levels(100.0, 101.0);
        let r = synthesize("v", &s, &s);
        assert_eq!(r.dp_claim, TrendClaim::Mixed);
    }

    #[test]
    fn period_sensitivity_exposes_cherry_picking() {
        // A series that dips only in Q1 2022: annual change is mild but
        // the Q1 number looks dramatic.
        let mut s = series_with_year_levels(100.0, 100.0);
        let q1_start = simcore::Date::new(2022, 1, 1).to_sim_time().week_index() as usize;
        let q1_end = simcore::Date::new(2022, 4, 1).to_sim_time().week_index() as usize;
        for v in &mut s.values[q1_start..q1_end] {
            *v = 40.0;
        }
        let quarters = period_sensitivity(&s, 2022);
        assert_eq!(quarters.len(), 4);
        let q1 = quarters[0].unwrap();
        let q3 = quarters[2].unwrap();
        assert!(q1 < -0.4, "q1 {q1}");
        assert!(q3.abs() < 0.1, "q3 {q3}");
        let annual = yoy_change(&s, 2021, 2022).unwrap();
        assert!(annual > -0.25, "annual {annual}");
    }
}
