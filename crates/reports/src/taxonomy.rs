//! The academic related-work taxonomy (Appendix B/C).
//!
//! The paper's second published artifact is a "mindmap" taxonomy of
//! recent DDoS literature, organized by research theme and by the data
//! sets each study uses. This module encodes that taxonomy as typed
//! data (themes → studies → data-set kinds, following §8 and Fig. 11)
//! with a text renderer, so the artifact regenerates from code like the
//! report knowledge base does.

use serde::{Deserialize, Serialize};

/// Top-level research themes of the §8 / Fig. 11 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Theme {
    AttackCharacterization,
    AbusableProtocols,
    DetectionMethods,
    AttackerInfrastructure,
    Mitigation,
    LawEnforcement,
    CrossDatasetSynthesis,
}

impl Theme {
    pub const ALL: [Theme; 7] = [
        Theme::AttackCharacterization,
        Theme::AbusableProtocols,
        Theme::DetectionMethods,
        Theme::AttackerInfrastructure,
        Theme::Mitigation,
        Theme::LawEnforcement,
        Theme::CrossDatasetSynthesis,
    ];

    pub const fn label(self) -> &'static str {
        match self {
            Theme::AttackCharacterization => "Attack characterization",
            Theme::AbusableProtocols => "Abusable protocols & new vectors",
            Theme::DetectionMethods => "Detection methods",
            Theme::AttackerInfrastructure => "Attacker infrastructure & TTPs",
            Theme::Mitigation => "Mitigation & resilience",
            Theme::LawEnforcement => "Law-enforcement interventions",
            Theme::CrossDatasetSynthesis => "Cross-dataset synthesis",
        }
    }
}

/// Data-set kinds a study draws on (the taxonomy's second axis — the
/// same observatory families this workspace simulates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataKind {
    Telescope,
    Honeypot,
    FlowData,
    ActiveScans,
    BgpControlPlane,
    BooterGroundTruth,
}

impl DataKind {
    pub const fn label(self) -> &'static str {
        match self {
            DataKind::Telescope => "telescope",
            DataKind::Honeypot => "honeypot",
            DataKind::FlowData => "flow data",
            DataKind::ActiveScans => "active scans",
            DataKind::BgpControlPlane => "BGP control plane",
            DataKind::BooterGroundTruth => "booter ground truth",
        }
    }
}

/// One study in the taxonomy.
#[derive(Debug, Clone, Serialize)]
pub struct Study {
    /// Short citation key, e.g. "Jonker17".
    pub key: &'static str,
    pub title: &'static str,
    pub year: u16,
    pub theme: Theme,
    pub data: &'static [DataKind],
    /// Paper reference number(s) in the DDoScovery bibliography.
    pub refs: &'static [u16],
}

/// The encoded taxonomy: the studies §8 discusses explicitly, placed in
/// the Fig. 11 themes. (The paper notes its own figure "is not
/// exhaustive"; neither is this — it covers every work named in §8.)
pub fn taxonomy() -> Vec<Study> {
    use DataKind::*;
    use Theme::*;
    vec![
        Study { key: "Moore06", title: "Inferring Internet Denial-of-Service Activity", year: 2006, theme: AttackCharacterization, data: &[Telescope], refs: &[107] },
        Study { key: "Jonker17", title: "Millions of Targets under Attack", year: 2017, theme: CrossDatasetSynthesis, data: &[Telescope, Honeypot, ActiveScans], refs: &[76] },
        Study { key: "Jonker18", title: "A First Joint Look at DoS Attacks and BGP Blackholing", year: 2018, theme: CrossDatasetSynthesis, data: &[Telescope, BgpControlPlane], refs: &[77] },
        Study { key: "Blenn17", title: "Quantifying the Spectrum of DoS Attacks through Backscatter", year: 2017, theme: AttackCharacterization, data: &[Telescope], refs: &[16] },
        Study { key: "Thomas17", title: "1000 Days of UDP Amplification DDoS Attacks", year: 2017, theme: AttackCharacterization, data: &[Honeypot], refs: &[167] },
        Study { key: "Kraemer15", title: "AmpPot: Monitoring and Defending Amplification DDoS", year: 2015, theme: DetectionMethods, data: &[Honeypot], refs: &[84] },
        Study { key: "Heinrich21", title: "New Kids on the DRDoS Block", year: 2021, theme: AttackCharacterization, data: &[Honeypot], refs: &[68] },
        Study { key: "Kopp21", title: "DDoS Never Dies? An IXP Perspective", year: 2021, theme: AttackCharacterization, data: &[FlowData], refs: &[82] },
        Study { key: "Kopp19", title: "DDoS Hide & Seek: Booter Takedown Effectiveness", year: 2019, theme: LawEnforcement, data: &[FlowData, BooterGroundTruth], refs: &[83] },
        Study { key: "Collier19", title: "Booting the Booters", year: 2019, theme: LawEnforcement, data: &[BooterGroundTruth], refs: &[31] },
        Study { key: "Krupp16", title: "Identifying Scan and Attack Infrastructures", year: 2016, theme: AttackerInfrastructure, data: &[Honeypot, ActiveScans], refs: &[86] },
        Study { key: "Krupp17", title: "Linking Amplification DDoS Attacks to Booter Services", year: 2017, theme: AttackerInfrastructure, data: &[Honeypot, BooterGroundTruth], refs: &[87] },
        Study { key: "Griffioen21", title: "Scan, Test, Execute: Adversarial Tactics in Amplification DDoS", year: 2021, theme: AttackerInfrastructure, data: &[Honeypot], refs: &[66] },
        Study { key: "Rossow14", title: "Amplification Hell", year: 2014, theme: AbusableProtocols, data: &[ActiveScans], refs: &[155] },
        Study { key: "Kuehrer14", title: "Exit from Hell? Reducing the Impact of Amplification DDoS", year: 2014, theme: Mitigation, data: &[ActiveScans], refs: &[90] },
        Study { key: "Bock21", title: "Weaponizing Middleboxes for TCP Reflected Amplification", year: 2021, theme: AbusableProtocols, data: &[ActiveScans], refs: &[17] },
        Study { key: "Nawrocki21a", title: "The Far Side of DNS Amplification", year: 2021, theme: AttackCharacterization, data: &[FlowData, Honeypot], refs: &[115] },
        Study { key: "Nawrocki21b", title: "Transparent Forwarders: Open DNS Infrastructure", year: 2021, theme: AbusableProtocols, data: &[ActiveScans], refs: &[116] },
        Study { key: "Nawrocki23", title: "SoK: Honeypot-based Detection of Amplification DDoS", year: 2023, theme: CrossDatasetSynthesis, data: &[Honeypot, FlowData], refs: &[117] },
        Study { key: "Nawrocki19", title: "Down the Black Hole: BGP Blackholing at IXPs", year: 2019, theme: Mitigation, data: &[BgpControlPlane, FlowData], refs: &[113] },
        Study { key: "Giotsas17", title: "Inferring BGP Blackholing Activity", year: 2017, theme: Mitigation, data: &[BgpControlPlane], refs: &[63] },
        Study { key: "Wichtlhuber22", title: "IXP Scrubber: ML-Driven DDoS Detection at Scale", year: 2022, theme: DetectionMethods, data: &[FlowData], refs: &[177] },
        Study { key: "Wagner21", title: "United We Stand: Collaborative DDoS Mitigation at Scale", year: 2021, theme: Mitigation, data: &[FlowData], refs: &[176] },
        Study { key: "Jonker16", title: "Measuring the Adoption of DDoS Protection Services", year: 2016, theme: Mitigation, data: &[ActiveScans], refs: &[78] },
        Study { key: "Moura16", title: "Anycast vs. DDoS: the Root DNS Event", year: 2016, theme: Mitigation, data: &[FlowData], refs: &[109] },
        Study { key: "Rizvi22", title: "Anycast Agility: Network Playbooks to Fight DDoS", year: 2022, theme: Mitigation, data: &[FlowData], refs: &[154] },
        Study { key: "Luckie19", title: "Network Hygiene, Incentives, and Regulation (Spoofer)", year: 2019, theme: Mitigation, data: &[ActiveScans], refs: &[96] },
        Study { key: "Krupp21", title: "BGPeek-a-Boo: Active BGP-based Traceback", year: 2021, theme: AttackerInfrastructure, data: &[BgpControlPlane, Honeypot], refs: &[88] },
        Study { key: "Moneva23", title: "Online Ad Campaigns against DDoS: a Quasi-Experiment", year: 2023, theme: LawEnforcement, data: &[BooterGroundTruth], refs: &[106] },
        Study { key: "Hiesgen22", title: "Spoki: A Reactive Network Telescope", year: 2022, theme: AttackerInfrastructure, data: &[Telescope], refs: &[69] },
        Study { key: "Samra23", title: "DDoS2Vec: Flow-level Characterisation of Volumetric DDoS", year: 2023, theme: DetectionMethods, data: &[FlowData], refs: &[157] },
        Study { key: "Nawrocki21c", title: "QUICsand: QUIC Reconnaissance and DoS Flooding", year: 2021, theme: AbusableProtocols, data: &[Telescope], refs: &[114] },
        Study { key: "Hiesgen24", title: "The Age of DDoScovery (this paper)", year: 2024, theme: CrossDatasetSynthesis, data: &[Telescope, Honeypot, FlowData], refs: &[] },
    ]
}

/// Render the taxonomy as an indented text mindmap (the Fig.-11 shape).
pub fn render_mindmap() -> String {
    let studies = taxonomy();
    let mut out = String::from("DDoS literature taxonomy (paper §8 / Appendix C)\n");
    for theme in Theme::ALL {
        let in_theme: Vec<&Study> = studies.iter().filter(|s| s.theme == theme).collect();
        if in_theme.is_empty() {
            continue;
        }
        out.push_str(&format!("├─ {} ({})\n", theme.label(), in_theme.len()));
        for s in in_theme {
            let data: Vec<&str> = s.data.iter().map(|d| d.label()).collect();
            out.push_str(&format!(
                "│   ├─ [{}] {} ({}) — {}\n",
                s.key,
                s.title,
                s.year,
                data.join(" + ")
            ));
        }
    }
    out
}

/// Count studies per (theme, data kind) — the matrix view of the
/// mindmap; the paper's takeaway is the sparsity of the cross-dataset
/// column.
pub fn theme_data_matrix() -> Vec<(Theme, DataKind, usize)> {
    let studies = taxonomy();
    let mut out = Vec::new();
    for theme in Theme::ALL {
        for kind in [
            DataKind::Telescope,
            DataKind::Honeypot,
            DataKind::FlowData,
            DataKind::ActiveScans,
            DataKind::BgpControlPlane,
            DataKind::BooterGroundTruth,
        ] {
            let n = studies
                .iter()
                .filter(|s| s.theme == theme && s.data.contains(&kind))
                .count();
            if n > 0 {
                out.push((theme, kind, n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_unique() {
        let studies = taxonomy();
        let mut keys: Vec<&str> = studies.iter().map(|s| s.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), studies.len());
    }

    #[test]
    fn every_theme_populated() {
        let studies = taxonomy();
        for theme in Theme::ALL {
            assert!(
                studies.iter().any(|s| s.theme == theme),
                "{} empty",
                theme.label()
            );
        }
    }

    #[test]
    fn every_study_names_data() {
        for s in taxonomy() {
            assert!(!s.data.is_empty(), "{} has no data kinds", s.key);
            assert!((2004..=2024).contains(&s.year), "{} year {}", s.key, s.year);
        }
    }

    #[test]
    fn cross_dataset_synthesis_is_rare() {
        // The paper's motivating observation (§8 "Open challenge"): few
        // studies cross data-set boundaries.
        let studies = taxonomy();
        let synth = studies
            .iter()
            .filter(|s| s.theme == Theme::CrossDatasetSynthesis)
            .count();
        assert!(synth * 4 < studies.len(), "{synth} of {}", studies.len());
        // And every synthesis study uses at least two data kinds.
        for s in studies.iter().filter(|s| s.theme == Theme::CrossDatasetSynthesis) {
            assert!(s.data.len() >= 2, "{} uses a single data kind", s.key);
        }
    }

    #[test]
    fn mindmap_renders_every_study() {
        let md = render_mindmap();
        for s in taxonomy() {
            assert!(md.contains(s.key), "{} missing from mindmap", s.key);
        }
        for theme in Theme::ALL {
            assert!(md.contains(theme.label()));
        }
    }

    #[test]
    fn matrix_totals_consistent() {
        let matrix = theme_data_matrix();
        let total: usize = matrix.iter().map(|(_, _, n)| n).sum();
        let expected: usize = taxonomy().iter().map(|s| s.data.len()).sum();
        assert_eq!(total, expected);
    }
}
