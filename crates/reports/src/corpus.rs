//! The industry-report corpus: the 24 reports from 22 vendors the paper
//! surveys (§3, Table 3), encoded as structured data.
//!
//! This is the machine-readable version of the paper's supplementary
//! knowledge base [13]: per report, the format, analysis period, the
//! trend each vendor claims per attack class, and the metrics the report
//! uses. Claims follow the paper's §3 "Comparing findings" discussion
//! and the Table-1 right column (direct path: 5 reports increasing,
//! 0 decreasing; reflection-amplification: 2 increasing, 3 decreasing).

use serde::{Deserialize, Serialize};

/// DDoS mitigation vendors surveyed (Table 3, "Included" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vendor {
    A10,
    Akamai,
    Arelion,
    Cloudflare,
    Comcast,
    Corero,
    DdosGuard,
    F5,
    Huawei,
    Imperva,
    Kaspersky,
    Link11,
    Lumen,
    Microsoft,
    Nbip,
    Netscout,
    NexusGuard,
    Nokia,
    NsFocus,
    Qrator,
    Radware,
    Zayo,
}

impl Vendor {
    pub const ALL: [Vendor; 22] = [
        Vendor::A10,
        Vendor::Akamai,
        Vendor::Arelion,
        Vendor::Cloudflare,
        Vendor::Comcast,
        Vendor::Corero,
        Vendor::DdosGuard,
        Vendor::F5,
        Vendor::Huawei,
        Vendor::Imperva,
        Vendor::Kaspersky,
        Vendor::Link11,
        Vendor::Lumen,
        Vendor::Microsoft,
        Vendor::Nbip,
        Vendor::Netscout,
        Vendor::NexusGuard,
        Vendor::Nokia,
        Vendor::NsFocus,
        Vendor::Qrator,
        Vendor::Radware,
        Vendor::Zayo,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Vendor::A10 => "A10",
            Vendor::Akamai => "Akamai",
            Vendor::Arelion => "Arelion",
            Vendor::Cloudflare => "Cloudflare",
            Vendor::Comcast => "Comcast",
            Vendor::Corero => "Corero",
            Vendor::DdosGuard => "DDoS-Guard",
            Vendor::F5 => "F5",
            Vendor::Huawei => "Huawei",
            Vendor::Imperva => "Imperva",
            Vendor::Kaspersky => "Kaspersky",
            Vendor::Link11 => "Link11",
            Vendor::Lumen => "Lumen",
            Vendor::Microsoft => "Microsoft Azure",
            Vendor::Nbip => "NBIP",
            Vendor::Netscout => "Netscout",
            Vendor::NexusGuard => "NexusGuard",
            Vendor::Nokia => "Nokia",
            Vendor::NsFocus => "NSFocus",
            Vendor::Qrator => "Qrator",
            Vendor::Radware => "Radware",
            Vendor::Zayo => "Zayo",
        }
    }
}

/// Publication format (§3 "Presentation style").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportFormat {
    FullDocument,
    Blog,
    Infographic,
}

/// A vendor's claimed trend for some attack category, with the claimed
/// relative change when the report quantifies it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrendClaim {
    Increase(Option<f64>),
    Decrease(Option<f64>),
    Mixed,
    NotReported,
}

impl TrendClaim {
    pub fn is_increase(self) -> bool {
        matches!(self, TrendClaim::Increase(_))
    }
    pub fn is_decrease(self) -> bool {
        matches!(self, TrendClaim::Decrease(_))
    }
}

/// Attack attributes a report quantifies (§3 "Metrics used by reports").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Metric {
    Count,
    Size,
    Duration,
    Vectors,
    Methods,
    VectorInstances,
    Context,
    Geolocation,
    TargetIndustry,
    MultiVector,
}

/// One surveyed industry report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndustryReport {
    pub vendor: Vendor,
    pub year: u16,
    pub format: ReportFormat,
    /// Months covered by the analysis period.
    pub period_months: u8,
    /// Report covers DDoS exclusively (vs a broader threat report).
    pub ddos_only: bool,
    pub overall: TrendClaim,
    pub direct_path: TrendClaim,
    pub reflection_amplification: TrendClaim,
    pub application_layer: TrendClaim,
    pub metrics: Vec<Metric>,
}

/// The encoded corpus. Claims are taken from §3:
/// * "Companies generally reported an overall increase in DDoS attacks";
/// * exceptions: F5 (−9.7 % total), Arelion ("dramatic" reduction);
/// * RA decreases: Arelion, Netscout (−17 %), Akamai (CharGEN/SSDP/CLDAP);
/// * L7 increases: Cloudflare, F5, Imperva, NBIP, Netscout, NexusGuard,
///   Radware;
/// * Table 1: DP ▲(5) ▼(0); RA ▲(2) ▼(3).
pub fn corpus() -> Vec<IndustryReport> {
    use Metric::*;
    use TrendClaim::*;
    use Vendor::*;
    let all = |v: Vendor,
               format: ReportFormat,
               months: u8,
               ddos_only: bool,
               overall: TrendClaim,
               dp: TrendClaim,
               ra: TrendClaim,
               l7: TrendClaim,
               metrics: Vec<Metric>| IndustryReport {
        vendor: v,
        year: 2022,
        format,
        period_months: months,
        ddos_only,
        overall,
        direct_path: dp,
        reflection_amplification: ra,
        application_layer: l7,
        metrics,
    };
    vec![
        all(A10, ReportFormat::FullDocument, 12, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, Vectors, VectorInstances]),
        all(Akamai, ReportFormat::Blog, 12, true, Increase(None), NotReported, Decrease(None), NotReported, vec![Count, Size, Vectors]),
        // Akamai published two documents in the window (Table 3 lists
        // [4, 5]); the second focuses on 2022 totals.
        all(Akamai, ReportFormat::Blog, 12, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, TargetIndustry]),
        all(Arelion, ReportFormat::FullDocument, 12, true, Decrease(None), Increase(None), Decrease(None), NotReported, vec![Count, Vectors, Context]),
        all(Cloudflare, ReportFormat::Blog, 3, true, Increase(None), Increase(None), NotReported, Increase(None), vec![Count, Size, Duration, Vectors, Geolocation, TargetIndustry]),
        all(Comcast, ReportFormat::FullDocument, 12, false, Increase(None), NotReported, NotReported, NotReported, vec![Count, Vectors, TargetIndustry]),
        all(Corero, ReportFormat::FullDocument, 12, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, Size, Duration]),
        // DDoS-Guard released two documents (Table 3 lists [41, 42]).
        all(DdosGuard, ReportFormat::Blog, 12, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, Vectors, Geolocation]),
        all(DdosGuard, ReportFormat::Infographic, 12, true, Increase(None), NotReported, NotReported, NotReported, vec![Count]),
        all(F5, ReportFormat::Blog, 12, true, Decrease(Some(-0.097)), NotReported, Mixed, Increase(None), vec![Count, Size, Vectors, TargetIndustry]),
        all(Huawei, ReportFormat::FullDocument, 12, true, Increase(None), NotReported, Increase(None), NotReported, vec![Count, Size, Vectors, Methods]),
        all(Imperva, ReportFormat::FullDocument, 12, true, Increase(None), NotReported, NotReported, Increase(None), vec![Count, Size, Duration, MultiVector]),
        all(Kaspersky, ReportFormat::Blog, 3, false, Increase(None), Increase(None), NotReported, NotReported, vec![Count, Duration, Geolocation]),
        all(Link11, ReportFormat::FullDocument, 12, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, Size]),
        all(Lumen, ReportFormat::Blog, 3, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, Size, Duration, TargetIndustry]),
        all(Microsoft, ReportFormat::Blog, 12, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, Size, Duration, Vectors, Geolocation]),
        all(Nbip, ReportFormat::Infographic, 3, true, Increase(None), NotReported, NotReported, Increase(None), vec![Count, Size]),
        all(Netscout, ReportFormat::FullDocument, 6, true, Increase(None), Increase(None), Decrease(Some(-0.17)), Increase(None), vec![Count, Size, Duration, Vectors, Methods, VectorInstances, Context, Geolocation, TargetIndustry, MultiVector]),
        all(NexusGuard, ReportFormat::FullDocument, 12, true, Increase(None), NotReported, Increase(None), Increase(None), vec![Count, Size, Duration, Vectors, MultiVector]),
        all(Nokia, ReportFormat::FullDocument, 12, false, Increase(None), NotReported, NotReported, NotReported, vec![Count, Vectors, VectorInstances]),
        all(NsFocus, ReportFormat::FullDocument, 12, true, Increase(None), Increase(None), NotReported, NotReported, vec![Count, Size, Vectors, Methods, Geolocation]),
        all(Qrator, ReportFormat::Blog, 3, false, Increase(None), NotReported, NotReported, NotReported, vec![Count, Duration, Geolocation]),
        all(Radware, ReportFormat::FullDocument, 12, false, Increase(None), NotReported, NotReported, Increase(None), vec![Count, Size, Vectors, TargetIndustry]),
        all(Zayo, ReportFormat::Blog, 6, true, Increase(None), NotReported, NotReported, NotReported, vec![Count, Size, Duration]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_24_reports_from_22_vendors() {
        let c = corpus();
        assert_eq!(c.len(), 24);
        let vendors: std::collections::BTreeSet<Vendor> = c.iter().map(|r| r.vendor).collect();
        assert_eq!(vendors.len(), 22);
    }

    #[test]
    fn every_vendor_appears() {
        let c = corpus();
        for v in Vendor::ALL {
            assert!(c.iter().any(|r| r.vendor == v), "{} missing", v.name());
        }
    }

    #[test]
    fn table1_industry_column_counts() {
        // Table 1 right column: DP ▲(5) ▼(0); RA ▲(2) ▼(3).
        let c = corpus();
        let dp_inc = c.iter().filter(|r| r.direct_path.is_increase()).count();
        let dp_dec = c.iter().filter(|r| r.direct_path.is_decrease()).count();
        let ra_inc = c
            .iter()
            .filter(|r| r.reflection_amplification.is_increase())
            .count();
        let ra_dec = c
            .iter()
            .filter(|r| r.reflection_amplification.is_decrease())
            .count();
        assert_eq!((dp_inc, dp_dec), (5, 0));
        assert_eq!((ra_inc, ra_dec), (2, 3));
    }

    #[test]
    fn exceptions_from_section3() {
        let c = corpus();
        // F5's −9.7 % total decrease.
        let f5 = c.iter().find(|r| r.vendor == Vendor::F5).unwrap();
        assert_eq!(f5.overall, TrendClaim::Decrease(Some(-0.097)));
        // Arelion's "dramatic" reduction with DP increase.
        let arelion = c.iter().find(|r| r.vendor == Vendor::Arelion).unwrap();
        assert!(arelion.overall.is_decrease());
        assert!(arelion.direct_path.is_increase());
        // Netscout's −17 % RA decrease.
        let netscout = c.iter().find(|r| r.vendor == Vendor::Netscout).unwrap();
        assert_eq!(
            netscout.reflection_amplification,
            TrendClaim::Decrease(Some(-0.17))
        );
    }

    #[test]
    fn l7_increase_reporters() {
        // §3: Cloudflare, F5, Imperva, NBIP, Netscout, NexusGuard,
        // Radware reported substantial L7 increases.
        let c = corpus();
        for v in [
            Vendor::Cloudflare,
            Vendor::F5,
            Vendor::Imperva,
            Vendor::Nbip,
            Vendor::Netscout,
            Vendor::NexusGuard,
            Vendor::Radware,
        ] {
            let any = c
                .iter()
                .any(|r| r.vendor == v && r.application_layer.is_increase());
            assert!(any, "{} should claim an L7 increase", v.name());
        }
    }

    #[test]
    fn most_reports_claim_overall_increase() {
        let c = corpus();
        let inc = c.iter().filter(|r| r.overall.is_increase()).count();
        let dec = c.iter().filter(|r| r.overall.is_decrease()).count();
        assert!(inc >= 20, "inc {inc}");
        assert_eq!(dec, 2); // F5 and Arelion
    }

    #[test]
    fn every_report_uses_counts() {
        for r in corpus() {
            assert!(r.metrics.contains(&Metric::Count), "{:?}", r.vendor);
        }
    }

    #[test]
    fn quarterly_reports_exist() {
        // §3 "Analysis period": some reports cover quarters.
        let c = corpus();
        assert!(c.iter().any(|r| r.period_months == 3));
        assert!(c.iter().any(|r| r.period_months == 12));
    }
}
