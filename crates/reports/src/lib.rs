//! `reports` — the industry-report knowledge base and synthesis layer.
//!
//! [`corpus`] encodes the paper's 24-report survey (§3, Table 3) as
//! structured claims; [`synthesize`] regenerates vendor-report-style
//! year-over-year summaries from simulated observatory series, closing
//! the loop for the Table-1 comparison.

pub mod corpus;
pub mod render;
pub mod synthesize;
pub mod taxonomy;

pub use corpus::{corpus, IndustryReport, Metric, ReportFormat, TrendClaim, Vendor};
pub use render::knowledge_base_markdown;
pub use taxonomy::{render_mindmap, taxonomy, theme_data_matrix, DataKind, Study, Theme};
pub use synthesize::{period_sensitivity, synthesize, yearly_total, yoy_change, SynthReport};

/// Table-1 industry column: (increases, decreases) per attack class
/// across the surveyed reports.
pub fn table1_industry_counts() -> ((usize, usize), (usize, usize)) {
    let c = corpus();
    let dp = (
        c.iter().filter(|r| r.direct_path.is_increase()).count(),
        c.iter().filter(|r| r.direct_path.is_decrease()).count(),
    );
    let ra = (
        c.iter()
            .filter(|r| r.reflection_amplification.is_increase())
            .count(),
        c.iter()
            .filter(|r| r.reflection_amplification.is_decrease())
            .count(),
    );
    (dp, ra)
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_counts_match_paper() {
        let ((dp_inc, dp_dec), (ra_inc, ra_dec)) = super::table1_industry_counts();
        assert_eq!((dp_inc, dp_dec), (5, 0));
        assert_eq!((ra_inc, ra_dec), (2, 3));
    }
}
