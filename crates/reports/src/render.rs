//! Markdown rendering of the industry-report knowledge base.
//!
//! The paper publishes its survey as a living, community-extendable
//! table (Appendix E / ref [13], ddoscovery.github.io). This renderer
//! produces that artifact from the typed corpus so the two can never
//! drift apart.

use crate::corpus::{corpus, IndustryReport, Metric, TrendClaim};

fn claim_cell(c: TrendClaim) -> String {
    match c {
        TrendClaim::Increase(Some(v)) => format!("▲ {:+.1}%", 100.0 * v),
        TrendClaim::Increase(None) => "▲".into(),
        TrendClaim::Decrease(Some(v)) => format!("▼ {:+.1}%", 100.0 * v),
        TrendClaim::Decrease(None) => "▼".into(),
        TrendClaim::Mixed => "◆ mixed".into(),
        TrendClaim::NotReported => "—".into(),
    }
}

fn metric_list(metrics: &[Metric]) -> String {
    metrics
        .iter()
        .map(|m| format!("{m:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render one report as a markdown table row.
fn row(r: &IndustryReport) -> String {
    format!(
        "| {} | {} | {:?} | {} mo | {} | {} | {} | {} | {} | {} |",
        r.vendor.name(),
        r.year,
        r.format,
        r.period_months,
        if r.ddos_only { "DDoS-only" } else { "broad" },
        claim_cell(r.overall),
        claim_cell(r.direct_path),
        claim_cell(r.reflection_amplification),
        claim_cell(r.application_layer),
        metric_list(&r.metrics),
    )
}

/// The full knowledge base as a markdown document.
pub fn knowledge_base_markdown() -> String {
    let reports = corpus();
    let mut out = String::from(
        "# DDoS industry report knowledge base\n\n\
         Structured extraction of the surveyed vendor reports (paper §3,\n\
         Table 3, Appendix E). Trend glyphs: ▲ increase, ▼ decrease,\n\
         ◆ mixed, — not reported.\n\n\
         | Vendor | Year | Format | Period | Scope | Overall | Direct path | Reflection-ampl. | L7 | Metrics |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in &reports {
        out.push_str(&row(r));
        out.push('\n');
    }
    let dp_inc = reports.iter().filter(|r| r.direct_path.is_increase()).count();
    let dp_dec = reports.iter().filter(|r| r.direct_path.is_decrease()).count();
    let ra_inc = reports
        .iter()
        .filter(|r| r.reflection_amplification.is_increase())
        .count();
    let ra_dec = reports
        .iter()
        .filter(|r| r.reflection_amplification.is_decrease())
        .count();
    out.push_str(&format!(
        "\n**Claim counts** (the Table-1 industry column): direct path ▲({dp_inc}) ▼({dp_dec}); \
         reflection-amplification ▲({ra_inc}) ▼({ra_dec}).\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_reports() {
        let md = knowledge_base_markdown();
        // Header + separator + 24 rows.
        let table_rows = md.lines().filter(|l| l.starts_with("| ")).count();
        assert_eq!(table_rows, 1 + 24);
        for vendor in crate::corpus::Vendor::ALL {
            assert!(md.contains(vendor.name()), "{} missing", vendor.name());
        }
    }

    #[test]
    fn rows_have_consistent_column_count() {
        let md = knowledge_base_markdown();
        let counts: Vec<usize> = md
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.matches('|').count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn claim_cells_render_values() {
        assert_eq!(claim_cell(TrendClaim::Decrease(Some(-0.17))), "▼ -17.0%");
        assert_eq!(claim_cell(TrendClaim::Increase(None)), "▲");
        assert_eq!(claim_cell(TrendClaim::NotReported), "—");
    }

    #[test]
    fn summary_counts_match_table1() {
        let md = knowledge_base_markdown();
        assert!(md.contains("direct path ▲(5) ▼(0)"));
        assert!(md.contains("reflection-amplification ▲(2) ▼(3)"));
    }
}
