//! The query-service application layer: a [`serve::Handler`] mapping
//! HTTP requests onto memoized [`StudyRun`] projections.
//!
//! `crates/serve` owns sockets, deadlines, and shedding; this module
//! owns routing and content. Everything served here is a pure
//! projection of one warm `StudyRun` (booted through the persistent
//! stage store when `--store` is set, so a fresh process answers its
//! first query without recomputing intact stages — ROADMAP item 5's
//! tie-in), which is what makes responses safely cacheable:
//!
//! * **ETags** derive from the chained stage fingerprints
//!   (DESIGN.md §7) plus the config hash — the same inputs that decide
//!   cache reuse decide HTTP revalidation, so `If-None-Match` gives a
//!   `304` exactly when a re-run would have produced identical bytes.
//! * A bounded response memo caches rendered bodies per
//!   `path?query`; the underlying projections are themselves memoized
//!   per-run, so a miss is a render, not a recompute.
//! * **Chaos** rides the registered `http.request` site: with a
//!   `ChaosPlan` armed, a scheduled request panics *before* routing and
//!   is recovered by the server's single unwind site into a clean 500 —
//!   one request lost, worker intact, next request served.
//!
//! Endpoints (all GET, one request per connection):
//!
//! | path | payload |
//! |------|---------|
//! | `/healthz` | liveness probe |
//! | `/v1/trends` | the `ddoscovery trends` table, byte-identical |
//! | `/v1/series` | JSON list of observatory slugs |
//! | `/v1/series/<slug>[?norm=1]` | weekly series CSV (raw or normalized) |
//! | `/v1/manifest` | scenario, seed, config hash + JSON, stage fingerprints |
//! | `/v1/experiments` | JSON list of experiment ids |
//! | `/v1/experiments/<id>` | experiment body (text) |
//! | `/v1/experiments/<id>/<file.csv>` | one figure/table CSV artifact |
//! | `/v1/sweep/<field>?values=a,b,c` | small sweep grid as CSV |
//! | `/admin/drain` | trigger graceful drain |

use crate::experiments;
use crate::pipeline::{ObsId, StudyRun};
use crate::render;
use crate::scenario::StudyConfig;
use crate::stagecache::StageFingerprints;
use serve::{Handler, Request, Response, ShutdownHandle};
use simcore::chaos::{sites, ChaosSchedule};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Response-memo capacity; past this the memo is dropped wholesale.
/// The endpoint space is small (a few dozen distinct keys in practice),
/// so an overflow means adversarial query-string churn — exactly the
/// case where caching should stop, not grow.
const MEMO_CAP: usize = 256;

/// Cap on `values=` grid points per sweep request: each point is a
/// (stage-cached) study execution, so the cap is the endpoint's own
/// admission control.
const SWEEP_MAX_VALUES: usize = 8;

/// A warm study served over HTTP. Construct with [`StudyService::new`],
/// wrap in an `Arc`, and hand to `serve::Server::bind`.
pub struct StudyService {
    run: StudyRun,
    cfg: StudyConfig,
    scenario: String,
    fingerprints: StageFingerprints,
    config_hash: u64,
    etag_root: u64,
    chaos: Option<ChaosSchedule>,
    seq: AtomicU64,
    memo: Mutex<HashMap<String, Response>>,
    shutdown: Mutex<Option<ShutdownHandle>>,
}

impl StudyService {
    /// Wrap an executed run. `scenario` labels the manifest endpoint
    /// (`paper`, `quick`, …) the same way run manifests are labeled.
    pub fn new(run: StudyRun, cfg: &StudyConfig, scenario: &str) -> StudyService {
        let fingerprints = StageFingerprints::of(cfg);
        let config_hash = serde_json::to_string(cfg)
            .map(|json| obs::manifest::fnv1a(json.as_bytes()))
            .unwrap_or(cfg.seed);
        let mut chain = obs::manifest::Fnv::new();
        chain.write_u64(config_hash);
        for (name, fp) in fingerprints.manifest_entries() {
            chain.write(name.as_bytes()).write_u64(fp);
        }
        let chaos = cfg.chaos.as_ref().map(|plan| plan.schedule());
        StudyService {
            run,
            cfg: cfg.clone(),
            scenario: scenario.to_string(),
            fingerprints,
            config_hash,
            etag_root: chain.finish(),
            chaos,
            seq: AtomicU64::new(0),
            memo: Mutex::new(HashMap::new()),
            shutdown: Mutex::new(None),
        }
    }

    /// Attach the server's shutdown handle so `/admin/drain` works.
    pub fn attach_shutdown(&self, handle: ShutdownHandle) {
        *lock(&self.shutdown) = Some(handle);
    }

    /// The ETag for a cache key: the chained stage fingerprints mixed
    /// with the request key, so any config or stage change — and only
    /// such a change — invalidates every cached representation.
    fn etag(&self, key: &str) -> String {
        let mut h = obs::manifest::Fnv::new();
        h.write_u64(self.etag_root).write(key.as_bytes());
        format!("\"{:016x}\"", h.finish())
    }

    /// Route and render `req`, memoizing cacheable 200s under their
    /// `path?query` key and honoring `If-None-Match`.
    fn respond(&self, req: &Request) -> Response {
        let key = if req.query.is_empty() {
            req.path.clone()
        } else {
            format!("{}?{}", req.path, req.query)
        };
        let etag = self.etag(&key);
        if req.header("if-none-match") == Some(etag.as_str()) {
            return Response::not_modified(&etag);
        }
        if let Some(hit) = lock(&self.memo).get(&key) {
            return hit.clone();
        }
        let resp = self.render(req);
        if resp.status == 200 {
            let resp = resp.with_header("ETag", &etag);
            let mut memo = lock(&self.memo);
            if memo.len() >= MEMO_CAP {
                memo.clear();
            }
            memo.insert(key, resp.clone());
            return resp;
        }
        resp
    }

    fn render(&self, req: &Request) -> Response {
        let trimmed = req.path.trim_start_matches('/');
        let segments: Vec<&str> = trimmed.split('/').collect();
        match segments.as_slice() {
            ["v1", "trends"] => Response::text(200, render::trends_table(&self.run)),
            ["v1", "series"] => {
                let slugs: Vec<String> = ObsId::ALL.iter().map(|id| format!("{:?}", id.slug())).collect();
                Response::json(200, format!("[{}]", slugs.join(",")))
            }
            ["v1", "series", slug] => self.series(slug, req),
            ["v1", "manifest"] => self.manifest(),
            ["v1", "experiments"] => {
                let ids: Vec<String> =
                    experiments::all_ids().iter().map(|id| format!("{id:?}")).collect();
                Response::json(200, format!("[{}]", ids.join(",")))
            }
            ["v1", "experiments", id] => self.experiment(id, None),
            ["v1", "experiments", id, file] => self.experiment(id, Some(file)),
            ["v1", "sweep", field] => self.sweep(field, req),
            _ => Response::not_found(&req.path),
        }
    }

    fn series(&self, slug: &str, req: &Request) -> Response {
        let Some(id) = ObsId::ALL.iter().copied().find(|id| id.slug() == slug) else {
            return Response::not_found(&format!("series {slug:?} (see /v1/series)"));
        };
        let series = if req.query_param("norm") == Some("1") {
            self.run.normalized_series(id).clone()
        } else {
            self.run.weekly_series(id).clone()
        };
        Response::csv(render::series_csv(&[series]))
    }

    fn manifest(&self) -> Response {
        let config_json =
            serde_json::to_string(&self.cfg).unwrap_or_else(|_| "null".to_string());
        let stages: Vec<String> = self
            .fingerprints
            .manifest_entries()
            .iter()
            .map(|(name, fp)| format!("{name:?}:\"{fp:016x}\""))
            .collect();
        let body = format!(
            "{{\"scenario\":{:?},\"seed\":{},\"config_hash\":\"{:016x}\",\"etag_root\":\"{:016x}\",\"stages\":{{{}}},\"config\":{}}}",
            self.scenario,
            self.cfg.seed,
            self.config_hash,
            self.etag_root,
            stages.join(","),
            config_json
        );
        Response::json(200, body)
    }

    fn experiment(&self, id: &str, file: Option<&str>) -> Response {
        let Some(result) = experiments::run_experiment(&self.run, id) else {
            return Response::not_found(&format!("experiment {id:?} (see /v1/experiments)"));
        };
        match file {
            None => Response::text(200, format!("{}\n\n{}", result.title, result.body)),
            Some(file) => match result.csv.iter().find(|(name, _)| name == file) {
                Some((_, csv)) => Response::csv(csv.clone()),
                None => {
                    let names: Vec<&str> =
                        result.csv.iter().map(|(name, _)| name.as_str()).collect();
                    Response::not_found(&format!(
                        "artifact {file:?} of {id} (has: {})",
                        names.join(", ")
                    ))
                }
            },
        }
    }

    fn sweep(&self, field: &str, req: &Request) -> Response {
        let Some(raw) = req.query_param("values") else {
            return Response::bad_request("sweep needs ?values=v1,v2,...");
        };
        let mut values = Vec::new();
        for part in raw.split(',').filter(|p| !p.is_empty()) {
            match part.parse::<f64>() {
                Ok(v) if v.is_finite() => values.push(v),
                _ => return Response::bad_request("values must be finite numbers"),
            }
        }
        if values.is_empty() {
            return Response::bad_request("sweep needs at least one value");
        }
        if values.len() > SWEEP_MAX_VALUES {
            return Response::bad_request("at most 8 sweep values per request");
        }
        let apply: fn(&mut StudyConfig, f64) = match field {
            "sav_reduction" => |cfg, v| cfg.gen.timeline.sav_reduction = v,
            "carpet_gap_secs" => |cfg, v| cfg.obs.carpet_gap_secs = v as u32,
            _ => {
                return Response::not_found(&format!(
                    "sweep field {field:?} (have: sav_reduction, carpet_gap_secs)"
                ))
            }
        };
        // Grid points run on the shared pool and reuse warm plan/attack
        // stages through the stage cache; a corrupt disk store degrades
        // each point to recompute, never to an error here.
        let report = match crate::sweep::sweep(&self.cfg, &values, &ObsId::MAIN_TEN, apply) {
            Ok(report) => report,
            Err(e) => return Response::bad_request(&e.to_string()),
        };
        let mut csv = String::from("value,observatory,observations,trend,change_4y\n");
        for o in &report.outcomes {
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                o.value,
                o.observatory,
                o.observations,
                o.trend.symbol(),
                if o.change_4y.is_finite() {
                    format!("{:.6}", o.change_4y)
                } else {
                    String::new()
                }
            ));
        }
        for skip in &report.skipped {
            csv.push_str(&format!("{},skipped,,,\n", skip.value));
        }
        Response::csv(csv)
    }
}

impl Handler for StudyService {
    fn handle(&self, req: &Request) -> Response {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // The chaos hook: a scheduled (seed, http.request, seq) panics
        // here and unwinds into `recover::capture` inside the server
        // worker — a clean 500 for exactly this request. No retry by
        // design: requests are cheap for the client to re-issue, and a
        // retry would make `fault.injected` counts depend on timing.
        if let Some(cs) = &self.chaos {
            cs.maybe_fail(sites::HTTP_REQUEST, seq, 0);
        }
        if req.method != "GET" {
            return Response::text(405, "only GET is supported\n");
        }
        match req.path.as_str() {
            "/healthz" => Response::text(200, "ok\n"),
            "/admin/drain" => match lock(&self.shutdown).as_ref() {
                Some(handle) => {
                    handle.shutdown();
                    Response::text(200, "draining\n")
                }
                None => Response::text(503, "no shutdown handle attached\n"),
            },
            _ => self.respond(req),
        }
    }
}

/// Lock a service mutex, surviving poison — the memo and shutdown slot
/// hold plain values that cannot be left in a torn state.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(chaos: bool) -> StudyService {
        let mut cfg = StudyConfig::quick();
        if chaos {
            cfg.chaos = Some(crate::faults::ChaosPlan::recoverable(1.0, 7));
        }
        let run = StudyRun::try_execute(&cfg).expect("quick config executes");
        StudyService::new(run, &cfg, "quick")
    }

    fn get(path: &str) -> Request {
        let (path, query) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query.to_string(),
            headers: Vec::new(),
        }
    }

    #[test]
    fn serves_trends_series_manifest_and_experiments() {
        let svc = service(false);
        assert_eq!(svc.handle(&get("/healthz")).status, 200);
        let trends = svc.handle(&get("/v1/trends"));
        assert_eq!(trends.status, 200);
        assert_eq!(
            String::from_utf8(trends.body).expect("utf8"),
            render::trends_table(&svc.run)
        );
        let list = svc.handle(&get("/v1/series"));
        assert_eq!(list.status, 200);
        let listing = String::from_utf8(list.body).expect("utf8");
        assert!(listing.contains("\"ucsd-nt\"") || listing.contains("ucsd"), "{listing}");
        let csv = svc.handle(&get("/v1/series/hopscotch?norm=1"));
        assert_eq!(csv.status, 200);
        assert!(String::from_utf8(csv.body).expect("utf8").starts_with("week,start_date,"));
        let manifest = svc.handle(&get("/v1/manifest"));
        assert_eq!(manifest.status, 200);
        let manifest = String::from_utf8(manifest.body).expect("utf8");
        assert!(manifest.contains("\"scenario\":\"quick\""), "{manifest}");
        assert!(manifest.contains("\"stages\""), "{manifest}");
        let exp = svc.handle(&get("/v1/experiments"));
        assert!(String::from_utf8(exp.body).expect("utf8").contains("\"table1\""));
        assert_eq!(svc.handle(&get("/v1/experiments/table1")).status, 200);
        assert_eq!(svc.handle(&get("/v1/series/nope")).status, 404);
        assert_eq!(svc.handle(&get("/v1/experiments/nope")).status, 404);
        assert_eq!(svc.handle(&get("/nope")).status, 404);
        let post = Request { method: "POST".to_string(), ..get("/v1/trends") };
        assert_eq!(svc.handle(&post).status, 405);
    }

    #[test]
    fn etags_revalidate_and_memo_caches() {
        let svc = service(false);
        let first = svc.handle(&get("/v1/trends"));
        let etag = first
            .headers
            .iter()
            .find(|(n, _)| n == "ETag")
            .map(|(_, v)| v.clone())
            .expect("200 carries an ETag");
        let mut req = get("/v1/trends");
        req.headers.push(("if-none-match".to_string(), etag.clone()));
        let revalidated = svc.handle(&req);
        assert_eq!(revalidated.status, 304);
        assert!(revalidated.body.is_empty());
        // Same key, no validator: memo hit must be the identical bytes.
        let second = svc.handle(&get("/v1/trends"));
        assert_eq!(second.body, first.body);
        // Different representations get different ETags.
        let raw = svc.handle(&get("/v1/series/hopscotch"));
        let norm = svc.handle(&get("/v1/series/hopscotch?norm=1"));
        let tag = |r: &Response| {
            r.headers
                .iter()
                .find(|(n, _)| n == "ETag")
                .map(|(_, v)| v.clone())
        };
        assert_ne!(tag(&raw), tag(&norm));
    }

    #[test]
    fn sweep_endpoint_validates_and_renders() {
        let svc = service(false);
        assert_eq!(svc.handle(&get("/v1/sweep/sav_reduction")).status, 400);
        assert_eq!(
            svc.handle(&get("/v1/sweep/sav_reduction?values=abc")).status,
            400
        );
        assert_eq!(
            svc.handle(&get("/v1/sweep/sav_reduction?values=1,2,3,4,5,6,7,8,9")).status,
            400
        );
        assert_eq!(svc.handle(&get("/v1/sweep/unknown?values=1")).status, 404);
        let resp = svc.handle(&get("/v1/sweep/carpet_gap_secs?values=1800,3600"));
        assert_eq!(resp.status, 200);
        let csv = String::from_utf8(resp.body).expect("utf8");
        assert!(csv.starts_with("value,observatory,observations,trend,change_4y\n"));
        // 2 grid points x 10 observatories + header.
        assert_eq!(csv.lines().count(), 21, "{csv}");
    }

    #[test]
    fn chaos_panics_ride_the_registered_site() {
        let svc = service(true);
        // p=1.0: every request sequence number is scheduled to fail.
        let caught = simcore::recover::capture(sites::HTTP_REQUEST, || {
            svc.handle(&get("/healthz"))
        });
        let err = caught.expect_err("chaos must fire");
        assert!(err.message.contains("http.request"), "{}", err.message);
    }
}
