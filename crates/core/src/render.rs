//! Text and CSV renderers shared by the experiments.

use analytics::WeeklySeries;
use simcore::time::week_start_date;

/// Render weekly series as CSV: one row per week with its start date,
/// one column per series. NaNs render as empty cells (missing data).
pub fn series_csv(series: &[WeeklySeries]) -> String {
    let weeks = series.iter().map(|s| s.values.len()).max().unwrap_or(0);
    let mut out = String::from("week,start_date");
    for s in series {
        out.push(',');
        out.push_str(&s.name.replace(',', ";"));
    }
    out.push('\n');
    for w in 0..weeks {
        out.push_str(&format!("{w},{}", week_start_date(w as i64)));
        for s in series {
            out.push(',');
            match s.values.get(w) {
                Some(v) if v.is_finite() => out.push_str(&format!("{v:.6}")),
                _ => {}
            }
        }
        out.push('\n');
    }
    out
}

/// Render an aligned text table.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..widths[i] {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = fmt_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// A compact sparkline of a weekly series (8 levels), NaN as '·'.
pub fn sparkline(values: &[f64], buckets: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || buckets == 0 {
        return String::new();
    }
    let finite_max = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let per = values.len().div_ceil(buckets);
    let mut out = String::new();
    for chunk in values.chunks(per) {
        let finite: Vec<f64> = chunk.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            out.push('·');
        } else {
            let mean = finite.iter().sum::<f64>() / finite.len() as f64;
            let level = ((mean / finite_max) * 7.0).round().clamp(0.0, 7.0) as usize;
            out.push(BARS[level]);
        }
    }
    out
}

/// Format an optional correlation as "rho (p)" with the paper's
/// grey-out convention: insignificant values are wrapped in brackets.
pub fn fmt_corr(c: Option<analytics::Correlation>) -> String {
    match c {
        None => "--".into(),
        Some(c) if c.significant() => format!("{:+.2}", c.rho),
        Some(c) => format!("[{:+.2}]", c.rho),
    }
}

/// The `ddoscovery trends` summary table: one row per main-ten
/// observatory with its observation count, path type, and trend
/// symbol. Shared by the CLI subcommand and the query service's
/// `/v1/trends` endpoint so the two stay byte-identical (asserted by
/// `crates/core/tests/http_service.rs`).
pub fn trends_table(run: &crate::pipeline::StudyRun) -> String {
    let mut out = format!("{:16} {:>8}  type  trend\n", "observatory", "attacks");
    for id in crate::pipeline::ObsId::MAIN_TEN {
        let s = run.normalized_series(id);
        out.push_str(&format!(
            "{:16} {:>8}  {:4}  {}\n",
            id.name(),
            run.observations(id).len(),
            if id.is_direct_path() { "DP" } else { "RA" },
            s.trend().symbol()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape_and_missing() {
        let s = vec![
            WeeklySeries::new("a", vec![1.0, f64::NAN]),
            WeeklySeries::new("b,x", vec![2.0, 3.0]),
        ];
        let csv = series_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "week,start_date,a,b;x");
        assert!(lines[1].starts_with("0,2019-01-01,1.000000,2.000000"));
        // NaN -> empty cell
        assert_eq!(lines[2], "1,2019-01-08,,3.000000");
    }

    #[test]
    fn table_alignment() {
        let t = text_table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn sparkline_levels() {
        let line = sparkline(&[0.0, 0.5, 1.0], 3);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        let gap = sparkline(&[f64::NAN, 1.0], 2);
        assert!(gap.starts_with('·'));
    }

    #[test]
    fn corr_formatting() {
        use analytics::Correlation;
        assert_eq!(fmt_corr(None), "--");
        assert_eq!(
            fmt_corr(Some(Correlation { rho: 0.5, p_value: 0.01, n: 10 })),
            "+0.50"
        );
        assert_eq!(
            fmt_corr(Some(Correlation { rho: -0.2, p_value: 0.3, n: 10 })),
            "[-0.20]"
        );
    }
}
