//! Content-addressed cross-run stage cache (DESIGN.md §7).
//!
//! [`crate::StudyRun::execute_on`] is an explicit three-stage
//! dataflow — `plan` → `attacks` → per-observatory `observations` —
//! and each stage output is a pure function of a *subset* of the
//! [`StudyConfig`] plus the outputs of earlier stages. This module
//! keys each stage by an FNV-1a fingerprint of exactly those inputs
//! and memoizes the outputs process-wide, so a parameter sweep (or any
//! repeated `try_execute`) recomputes only the stages whose inputs
//! actually changed: an observation-side sweep skips plan building and
//! attack generation entirely, and a `gen.timeline` sweep reuses the
//! Internet plan at every grid point.
//!
//! **Correctness invariant:** cached output is byte-identical to
//! recomputed output. That holds because (a) every stage is
//! deterministic in its fingerprinted inputs (the execution engine's
//! worker-invariance contract, DESIGN.md §4), and (b) the fingerprint
//! covers *all* inputs: the field inventory below assigns every
//! `StudyConfig` field to exactly one stage class, and a unit test
//! fails if a field is added without being classified — a new knob can
//! never silently alias two different scenarios onto one cache key.
//!
//! The cache is bounded (LRU over filled entries, default
//! [`DEFAULT_BOUND`]), thread-safe, and coalescing: concurrent misses
//! on the same key block on one compute instead of duplicating it.
//! Telemetry lands in the global `obs` registry as
//! `stage.<plan|attacks|observations>.{hit,computed,evicted}` and
//! therefore in every run manifest.

use crate::pipeline::ObsId;
use crate::scenario::StudyConfig;
use attackgen::{AttackColumns, ObservationColumns};
use flowmon::AlertColumns;
use netmodel::InternetPlan;
use obs::manifest::Fnv;
use obs::metrics::Counter;
use serde::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default stage-cache bound, in entries. One full study run occupies
/// 14 entries (1 plan + 1 attack stream + 11 observation streams + the
/// Netscout alert stream), so the default comfortably covers a
/// ~18-point sweep's working set.
pub const DEFAULT_BOUND: usize = 256;

/// Environment variable controlling the stage cache when
/// [`StudyConfig::stage_cache`] is `None`: `off` (or `0`) disables it,
/// an integer sets the entry bound.
pub const STAGE_CACHE_ENV: &str = "DDOSCOVERY_STAGE_CACHE";

/// Parse a [`STAGE_CACHE_ENV`] value: `off` (case-insensitive) means
/// bypass, otherwise an entry count. The CLI surfaces the `Err` as a
/// typed config error; library callers downgrade it to a warning.
pub fn parse_env_bound(v: &str) -> std::result::Result<usize, String> {
    let v = v.trim();
    if v.eq_ignore_ascii_case("off") {
        return Ok(0);
    }
    v.parse::<usize>()
        .map_err(|_| format!("expected `off` or an entry count, got {v:?}"))
}

/// Resolve the effective cache bound for a config: the config knob
/// wins, then [`STAGE_CACHE_ENV`], then [`DEFAULT_BOUND`]. `0` means
/// "bypass the cache". A malformed env value is *not* silently
/// ignored: it warns and falls back to the default bound.
pub fn resolve_bound(config: &StudyConfig) -> usize {
    if let Some(n) = config.stage_cache {
        return n;
    }
    if let Ok(v) = std::env::var(STAGE_CACHE_ENV) {
        match parse_env_bound(&v) {
            Ok(n) => return n,
            Err(message) => obs::warn!(
                "{STAGE_CACHE_ENV}: {message}; using the default bound {DEFAULT_BOUND}"
            ),
        }
    }
    DEFAULT_BOUND
}

// ---------------------------------------------------------------------
// Field inventory: every top-level StudyConfig field, classified.
// ---------------------------------------------------------------------

/// Stage classes a config field can feed. `plan`/`attacks`/
/// `observations` fields enter the corresponding fingerprint (and,
/// transitively, every downstream one); `projection` fields only shape
/// per-run projections computed *after* the cached stages (weekly-gap
/// masking); `execution` fields cannot change any output byte (worker
/// count, the cache bound itself).
pub const STAGE_CLASSES: [&str; 5] =
    ["plan", "attacks", "observations", "projection", "execution"];

/// The classification: `(serialized field name, stage class)`. Must
/// list every top-level [`StudyConfig`] field exactly once —
/// `field_inventory_is_exhaustive` fails otherwise, which is the
/// guard against silent cache poisoning when a field is added.
pub const FIELD_STAGES: &[(&str, &str)] = &[
    ("seed", "plan"),
    ("net", "plan"),
    ("gen", "attacks"),
    ("obs", "observations"),
    ("faults", "observations"),
    ("missing_data", "projection"),
    ("workers", "execution"),
    ("stage_cache", "execution"),
    ("disk_store", "execution"),
    ("chaos", "execution"),
];

/// Fold the serialized values of every field in `class` into `h`, in
/// inventory order. Hashing the serialized JSON keeps the fingerprint
/// sensitive to every nested knob (a new field inside `NetScale` or
/// `GenConfig` changes its parent's serialization and therefore the
/// fingerprint) without any per-field bookkeeping below the top level.
fn fold_class(h: &mut Fnv, config_value: &Value, class: &str) {
    for (field, stage) in FIELD_STAGES {
        if *stage != class {
            continue;
        }
        let v = config_value.get(field).unwrap_or(&Value::Null);
        let json = serde_json::to_string(v).expect("Value serialization is infallible");
        h.write(field.as_bytes()).write(b"=").write(json.as_bytes()).write(b";");
    }
}

/// Per-stage scenario fingerprints of one [`StudyConfig`]. Each stage
/// hash chains its upstream stage's hash, so invalidation flows down
/// the dataflow: a `net` change re-keys everything, a `gen` change
/// re-keys attacks + observations but leaves the plan key intact, an
/// `obs` change re-keys only the observation streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFingerprints {
    /// Key of the Internet plan: `seed` + `net`.
    pub plan: u64,
    /// Key of the ground-truth attack stream: plan key + `gen`.
    pub attacks: u64,
    /// Keys of the eleven final observation streams, indexed by
    /// [`ObsId::index`]: attacks key + `obs` + the observatory slug.
    pub observations: [u64; 11],
    /// Key of the raw Netscout alert stream (the §7.2 baseline input).
    pub netscout_alerts: u64,
}

impl StageFingerprints {
    /// Compute every stage fingerprint of `config`.
    pub fn of(config: &StudyConfig) -> StageFingerprints {
        let value =
            serde_json::to_value(config).expect("StudyConfig serialization is infallible");

        let mut h = Fnv::new();
        h.write(b"stage.plan\0");
        fold_class(&mut h, &value, "plan");
        let plan = h.finish();

        let mut h = Fnv::new();
        h.write(b"stage.attacks\0").write_u64(plan);
        fold_class(&mut h, &value, "attacks");
        let attacks = h.finish();

        let obs_key = |slug: &str| {
            let mut h = Fnv::new();
            h.write(b"stage.observations\0").write_u64(attacks);
            fold_class(&mut h, &value, "observations");
            h.write(slug.as_bytes());
            h.finish()
        };
        let mut observations = [0u64; 11];
        for id in ObsId::ALL {
            observations[id.index()] = obs_key(id.slug());
        }
        let netscout_alerts = obs_key("netscout_alerts");

        StageFingerprints {
            plan,
            attacks,
            observations,
            netscout_alerts,
        }
    }

    /// The observation-stream key of one observatory.
    pub fn observation(&self, id: ObsId) -> u64 {
        self.observations[id.index()]
    }

    /// Manifest entries (`run.stages` in the telemetry JSON): the plan
    /// and attack keys verbatim plus one hash folding all observation
    /// keys.
    pub fn manifest_entries(&self) -> Vec<(String, u64)> {
        let mut h = Fnv::new();
        for fp in self.observations {
            h.write_u64(fp);
        }
        h.write_u64(self.netscout_alerts);
        vec![
            ("plan".to_string(), self.plan),
            ("attacks".to_string(), self.attacks),
            ("observations".to_string(), h.finish()),
        ]
    }
}

// ---------------------------------------------------------------------
// The cache proper.
// ---------------------------------------------------------------------

/// Which stage a cache entry (or counter) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Plan,
    Attacks,
    Observations,
}

impl Stage {
    const ALL: [Stage; 3] = [Stage::Plan, Stage::Attacks, Stage::Observations];

    pub const fn name(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::Attacks => "attacks",
            Stage::Observations => "observations",
        }
    }

    const fn index(self) -> usize {
        match self {
            Stage::Plan => 0,
            Stage::Attacks => 1,
            Stage::Observations => 2,
        }
    }
}

/// Cache actions the flight recorder distinguishes.
#[derive(Debug, Clone, Copy)]
enum CacheEvent {
    Hit,
    Miss,
    Compute,
    Evict,
}

/// Static trace-event name for a cache action — the lookup hot path
/// must not allocate just because tracing is armed.
const fn cache_trace_name(stage: Stage, event: CacheEvent) -> &'static str {
    match (stage, event) {
        (Stage::Plan, CacheEvent::Hit) => "cache.plan.hit",
        (Stage::Plan, CacheEvent::Miss) => "cache.plan.miss",
        (Stage::Plan, CacheEvent::Compute) => "cache.plan.compute",
        (Stage::Plan, CacheEvent::Evict) => "cache.plan.evict",
        (Stage::Attacks, CacheEvent::Hit) => "cache.attacks.hit",
        (Stage::Attacks, CacheEvent::Miss) => "cache.attacks.miss",
        (Stage::Attacks, CacheEvent::Compute) => "cache.attacks.compute",
        (Stage::Attacks, CacheEvent::Evict) => "cache.attacks.evict",
        (Stage::Observations, CacheEvent::Hit) => "cache.observations.hit",
        (Stage::Observations, CacheEvent::Miss) => "cache.observations.miss",
        (Stage::Observations, CacheEvent::Compute) => "cache.observations.compute",
        (Stage::Observations, CacheEvent::Evict) => "cache.observations.evict",
    }
}

/// Mark a cache action on the flight recorder (no-op unless armed).
fn cache_trace(stage: Stage, event: CacheEvent, key: u64) {
    if obs::trace::enabled() {
        obs::trace::instant(cache_trace_name(stage, event), &[("key", key)]);
    }
}

/// A cached stage output. Observation streams and the Netscout alert
/// stream are separate variants of the same stage class.
#[derive(Clone)]
enum StageValue {
    Plan(Arc<InternetPlan>),
    Attacks(Arc<AttackColumns>),
    Observations(Arc<ObservationColumns>),
    Alerts(Arc<AlertColumns>),
}

impl StageValue {
    fn stage(&self) -> Stage {
        match self {
            StageValue::Plan(_) => Stage::Plan,
            StageValue::Attacks(_) => Stage::Attacks,
            StageValue::Observations(_) | StageValue::Alerts(_) => Stage::Observations,
        }
    }
}

/// One cache slot: the value cell plus its LRU stamp. The cell is
/// shared out under `Arc` so a compute can run *outside* the map lock
/// while concurrent same-key callers block on the `OnceLock` instead
/// of duplicating the work.
struct Slot {
    cell: Arc<OnceLock<StageValue>>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Slot>,
    tick: u64,
}

/// Per-stage hit/computed/evicted counts, for tests and diagnostics.
/// `computed` counts stage *executions* (it advances even when the
/// cache is bypassed); `hit` counts lookups served from cache;
/// `evicted` counts entries dropped by the LRU bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    pub hit: u64,
    pub computed: u64,
    pub evicted: u64,
}

/// The bounded, thread-safe, in-process stage cache.
pub struct StageCache {
    inner: Mutex<Inner>,
    hit: [Arc<Counter>; 3],
    computed: [Arc<Counter>; 3],
    evicted: [Arc<Counter>; 3],
}

impl StageCache {
    fn new() -> StageCache {
        let handle = |kind: &str, stage: Stage| {
            obs::metrics::counter(&format!("stage.{}.{kind}", stage.name()))
        };
        StageCache {
            inner: Mutex::new(Inner::default()),
            hit: Stage::ALL.map(|s| handle("hit", s)),
            computed: Stage::ALL.map(|s| handle("computed", s)),
            evicted: Stage::ALL.map(|s| handle("evicted", s)),
        }
    }

    /// A cache with private (non-registry) counters: unit tests use
    /// this so concurrently-running tests cannot contaminate each
    /// other's counts through the shared global registry.
    #[cfg(test)]
    fn isolated() -> StageCache {
        let fresh = || Stage::ALL.map(|_| Arc::new(Counter::new()));
        StageCache {
            inner: Mutex::new(Inner::default()),
            hit: fresh(),
            computed: fresh(),
            evicted: fresh(),
        }
    }

    /// The process-wide cache every [`crate::StudyRun`] executes
    /// against.
    pub fn global() -> &'static StageCache {
        static GLOBAL: OnceLock<StageCache> = OnceLock::new();
        GLOBAL.get_or_init(StageCache::new)
    }

    /// Counter values of one stage (process-cumulative).
    pub fn stats(&self, stage: Stage) -> StageStats {
        let i = stage.index();
        StageStats {
            hit: self.hit[i].get(),
            computed: self.computed[i].get(),
            evicted: self.evicted[i].get(),
        }
    }

    /// Drop every entry (counters keep their cumulative values). For
    /// tests and memory-pressure escape hatches; correctness never
    /// depends on cache contents.
    pub fn clear(&self) {
        self.lock().map.clear();
    }

    /// Filled entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().map.values().filter(|s| s.cell.get().is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A poisoned lock is recovered, not propagated: the cache is a
    /// memoization side table and the `OnceLock` cells inside each
    /// slot stay individually consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The slot for `key` (created empty if absent), plus whether it
    /// was already filled at lookup time. Bumps the LRU stamp.
    fn slot(&self, key: u64) -> (Arc<OnceLock<StageValue>>, bool) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.map.entry(key).or_insert_with(|| Slot {
            cell: Arc::new(OnceLock::new()),
            last_used: 0,
        });
        slot.last_used = tick;
        (Arc::clone(&slot.cell), slot.cell.get().is_some())
    }

    /// Evict least-recently-used *filled* entries (never `protect`,
    /// never in-flight empties) until at most `bound` remain.
    fn enforce_bound(&self, bound: usize, protect: u64) {
        let mut inner = self.lock();
        loop {
            let filled = inner
                .map
                .iter()
                .filter(|(_, s)| s.cell.get().is_some())
                .count();
            if filled <= bound {
                return;
            }
            let victim = inner
                .map
                .iter()
                .filter(|(k, s)| **k != protect && s.cell.get().is_some())
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { return };
            if let Some(slot) = inner.map.remove(&victim) {
                if let Some(v) = slot.cell.get() {
                    self.evicted[v.stage().index()].inc();
                    cache_trace(v.stage(), CacheEvent::Evict, victim);
                }
            }
        }
    }

    /// Core memoization: return the cached value for `key`, computing
    /// (and caching) it on a miss. Concurrent misses on the same key
    /// coalesce onto one compute. `bound == 0` bypasses the cache
    /// entirely (the compute still counts as a stage execution).
    fn get_or_compute(
        &self,
        stage: Stage,
        bound: usize,
        key: u64,
        compute: impl FnOnce() -> StageValue,
    ) -> StageValue {
        if bound == 0 {
            self.computed[stage.index()].inc();
            let _t = obs::trace::Guard::new(
                cache_trace_name(stage, CacheEvent::Compute),
                Some(("key", key)),
            );
            return compute();
        }
        let (cell, filled) = self.slot(key);
        if filled {
            self.hit[stage.index()].inc();
            cache_trace(stage, CacheEvent::Hit, key);
            return cell.get().expect("filled slot has a value").clone();
        }
        let mut ran = false;
        let value = cell
            .get_or_init(|| {
                ran = true;
                self.computed[stage.index()].inc();
                let _t = obs::trace::Guard::new(
                    cache_trace_name(stage, CacheEvent::Compute),
                    Some(("key", key)),
                );
                compute()
            })
            .clone();
        if ran {
            cache_trace(stage, CacheEvent::Miss, key);
            self.enforce_bound(bound, key);
        } else {
            // A concurrent computer filled the cell while we waited:
            // served from cache as far as this caller is concerned.
            self.hit[stage.index()].inc();
            cache_trace(stage, CacheEvent::Hit, key);
        }
        value
    }

    /// Lookup-only: the cached value for `key`, if present and of the
    /// expected kind. Used by the observation stage, which computes
    /// many entries jointly in one fan-out.
    fn get(&self, stage: Stage, bound: usize, key: u64) -> Option<StageValue> {
        if bound == 0 {
            return None;
        }
        let value = {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            inner.map.get_mut(&key).and_then(|slot| {
                slot.last_used = tick;
                slot.cell.get().cloned()
            })
        };
        match value {
            Some(v) => {
                self.hit[stage.index()].inc();
                cache_trace(stage, CacheEvent::Hit, key);
                Some(v)
            }
            None => {
                cache_trace(stage, CacheEvent::Miss, key);
                None
            }
        }
    }

    /// Insert a freshly computed value under `key` and enforce the
    /// bound. Counts one stage execution.
    fn insert(&self, stage: Stage, bound: usize, key: u64, value: StageValue) {
        self.computed[stage.index()].inc();
        // The execution itself ran (and was traced) in the caller's
        // fan-out; mark the result entering the cache.
        cache_trace(stage, CacheEvent::Compute, key);
        if bound == 0 {
            return;
        }
        let (cell, _) = self.slot(key);
        // A racer may have filled the slot with (identical) content
        // already; the first value wins and ours is dropped.
        let _ = cell.set(value);
        self.enforce_bound(bound, key);
    }

    /// Insert a value that was *loaded*, not computed — a disk-store
    /// hit entering the memory tier. Unlike [`StageCache::insert`]
    /// this does not advance `stage.<name>.computed` (that counter
    /// means stage executions; the disk tier counts its own
    /// `disk_hit`), and it emits no compute trace event.
    fn adopt(&self, bound: usize, key: u64, value: StageValue) {
        if bound == 0 {
            return;
        }
        let (cell, _) = self.slot(key);
        let _ = cell.set(value);
        self.enforce_bound(bound, key);
    }

    /// Cached Internet plan for `key`, if any (lookup-only — the
    /// disk-tier flow probes memory before touching the filesystem).
    pub fn get_plan(&self, bound: usize, key: u64) -> Option<Arc<InternetPlan>> {
        match self.get(Stage::Plan, bound, key)? {
            StageValue::Plan(p) => Some(p),
            _ => None,
        }
    }

    /// Cached attack stream for `key`, if any (lookup-only).
    pub fn get_attacks(&self, bound: usize, key: u64) -> Option<Arc<AttackColumns>> {
        match self.get(Stage::Attacks, bound, key)? {
            StageValue::Attacks(a) => Some(a),
            _ => None,
        }
    }

    /// Adopt a disk-loaded Internet plan into the memory tier.
    pub fn adopt_plan(&self, bound: usize, key: u64, v: Arc<InternetPlan>) {
        self.adopt(bound, key, StageValue::Plan(v));
    }

    /// Adopt a disk-loaded attack stream into the memory tier.
    pub fn adopt_attacks(&self, bound: usize, key: u64, v: Arc<AttackColumns>) {
        self.adopt(bound, key, StageValue::Attacks(v));
    }

    /// Adopt a disk-loaded observation stream into the memory tier.
    pub fn adopt_observations(&self, bound: usize, key: u64, v: Arc<ObservationColumns>) {
        self.adopt(bound, key, StageValue::Observations(v));
    }

    /// Adopt a disk-loaded Netscout alert stream into the memory tier.
    pub fn adopt_alerts(&self, bound: usize, key: u64, v: Arc<AlertColumns>) {
        self.adopt(bound, key, StageValue::Alerts(v));
    }

    /// The Internet plan for `key`, built on a miss.
    pub fn plan(
        &self,
        bound: usize,
        key: u64,
        build: impl FnOnce() -> Arc<InternetPlan>,
    ) -> Arc<InternetPlan> {
        match self.get_or_compute(Stage::Plan, bound, key, || StageValue::Plan(build())) {
            StageValue::Plan(p) => p,
            _ => unreachable!("plan key resolved to a non-plan stage value"),
        }
    }

    /// The attack stream for `key`, generated on a miss.
    pub fn attacks(
        &self,
        bound: usize,
        key: u64,
        generate: impl FnOnce() -> Arc<AttackColumns>,
    ) -> Arc<AttackColumns> {
        match self.get_or_compute(Stage::Attacks, bound, key, || StageValue::Attacks(generate()))
        {
            StageValue::Attacks(a) => a,
            _ => unreachable!("attacks key resolved to a non-attacks stage value"),
        }
    }

    /// Cached observation stream for `key`, if any.
    pub fn get_observations(&self, bound: usize, key: u64) -> Option<Arc<ObservationColumns>> {
        match self.get(Stage::Observations, bound, key)? {
            StageValue::Observations(v) => Some(v),
            _ => None,
        }
    }

    /// Cached Netscout alert stream for `key`, if any.
    pub fn get_alerts(&self, bound: usize, key: u64) -> Option<Arc<AlertColumns>> {
        match self.get(Stage::Observations, bound, key)? {
            StageValue::Alerts(v) => Some(v),
            _ => None,
        }
    }

    /// Store a freshly observed stream.
    pub fn insert_observations(&self, bound: usize, key: u64, v: Arc<ObservationColumns>) {
        self.insert(Stage::Observations, bound, key, StageValue::Observations(v));
    }

    /// Store a freshly computed Netscout alert stream.
    pub fn insert_alerts(&self, bound: usize, key: u64, v: Arc<AlertColumns>) {
        self.insert(Stage::Observations, bound, key, StageValue::Alerts(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// THE guard against silent cache poisoning: every top-level
    /// `StudyConfig` field must be classified in `FIELD_STAGES`, and
    /// every classified field must exist. Adding a config field
    /// without deciding which stage it invalidates fails here.
    #[test]
    fn field_inventory_is_exhaustive() {
        let value = serde_json::to_value(&StudyConfig::default()).unwrap();
        let Value::Object(fields) = &value else {
            panic!("StudyConfig must serialize to an object")
        };
        let serialized: BTreeSet<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        let classified: BTreeSet<&str> = FIELD_STAGES.iter().map(|(f, _)| *f).collect();
        assert_eq!(
            classified.len(),
            FIELD_STAGES.len(),
            "a field is classified twice in FIELD_STAGES"
        );
        let unclassified: Vec<&&str> = serialized.difference(&classified).collect();
        assert!(
            unclassified.is_empty(),
            "StudyConfig field(s) {unclassified:?} not classified in \
             stagecache::FIELD_STAGES — assign each to a stage class \
             (plan/attacks/observations/projection/execution) or the \
             stage cache will serve stale results when they change"
        );
        let phantom: Vec<&&str> = classified.difference(&serialized).collect();
        assert!(
            phantom.is_empty(),
            "FIELD_STAGES classifies field(s) {phantom:?} that StudyConfig no longer has"
        );
        for (_, stage) in FIELD_STAGES {
            assert!(
                STAGE_CLASSES.contains(stage),
                "unknown stage class {stage:?}"
            );
        }
    }

    /// Invalidation flows down the dataflow and never up.
    #[test]
    fn fingerprints_track_their_stage_inputs() {
        let base = StageFingerprints::of(&StudyConfig::quick());

        // seed / net → everything changes.
        let mut cfg = StudyConfig::quick();
        cfg.seed ^= 1;
        let fp = StageFingerprints::of(&cfg);
        assert_ne!(fp.plan, base.plan);
        assert_ne!(fp.attacks, base.attacks);
        assert_ne!(fp.observations, base.observations);

        let mut cfg = StudyConfig::quick();
        cfg.net.tail_as_count += 1;
        let fp = StageFingerprints::of(&cfg);
        assert_ne!(fp.plan, base.plan);
        assert_ne!(fp.attacks, base.attacks);

        // gen → plan key survives, attacks + observations re-key.
        let mut cfg = StudyConfig::quick();
        cfg.gen.timeline.sav_reduction += 0.01;
        let fp = StageFingerprints::of(&cfg);
        assert_eq!(fp.plan, base.plan);
        assert_ne!(fp.attacks, base.attacks);
        assert_ne!(fp.observations, base.observations);
        assert_ne!(fp.netscout_alerts, base.netscout_alerts);

        // obs → only the observation streams re-key.
        let mut cfg = StudyConfig::quick();
        cfg.obs.carpet_gap_secs += 1;
        let fp = StageFingerprints::of(&cfg);
        assert_eq!(fp.plan, base.plan);
        assert_eq!(fp.attacks, base.attacks);
        assert_ne!(fp.observations, base.observations);

        // faults → only the observation streams re-key (a fault plan
        // changes what the observatories record, never the plan or the
        // ground-truth attacks).
        let mut cfg = StudyConfig::quick();
        cfg.faults.outages.push(crate::faults::OutageSpec {
            source: "ucsd".into(),
            start_week: 0,
            end_week: 4,
        });
        let fp = StageFingerprints::of(&cfg);
        assert_eq!(fp.plan, base.plan);
        assert_eq!(fp.attacks, base.attacks);
        assert_ne!(fp.observations, base.observations);

        // projection / execution knobs → no stage re-keys at all.
        // `chaos` is machine-checked here: control-plane fault
        // injection must never change an output byte.
        for poison in [
            (|c: &mut StudyConfig| c.missing_data = !c.missing_data) as fn(&mut StudyConfig),
            |c| c.workers = Some(7),
            |c| c.stage_cache = Some(3),
            |c| c.disk_store = Some("/tmp/elsewhere".into()),
            |c| c.chaos = Some(crate::faults::ChaosPlan::recoverable(0.5, 1)),
        ] {
            let mut cfg = StudyConfig::quick();
            poison(&mut cfg);
            assert_eq!(StageFingerprints::of(&cfg), base);
        }
    }

    #[test]
    fn observation_keys_differ_per_stream() {
        let fp = StageFingerprints::of(&StudyConfig::quick());
        let mut seen = BTreeSet::new();
        for key in fp.observations {
            assert!(seen.insert(key), "two observation streams share a key");
        }
        assert!(seen.insert(fp.netscout_alerts));
        assert_ne!(fp.plan, fp.attacks);
    }

    #[test]
    fn manifest_entries_name_all_three_stages() {
        let fp = StageFingerprints::of(&StudyConfig::quick());
        let entries = fp.manifest_entries();
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["plan", "attacks", "observations"]);
        assert_eq!(entries[0].1, fp.plan);
        assert_eq!(entries[1].1, fp.attacks);
    }

    #[test]
    fn bound_resolution_prefers_the_config_knob() {
        let mut cfg = StudyConfig::quick();
        cfg.stage_cache = Some(5);
        assert_eq!(resolve_bound(&cfg), 5);
        cfg.stage_cache = Some(0);
        assert_eq!(resolve_bound(&cfg), 0);
        // None falls back to env/default; with no env set in the test
        // process this is the default. (Env-var behaviour is covered by
        // the CLI subprocess tests, which control their environment.)
        cfg.stage_cache = None;
        if std::env::var(STAGE_CACHE_ENV).is_err() {
            assert_eq!(resolve_bound(&cfg), DEFAULT_BOUND);
        }
    }

    /// A private cache exercising coalescing, LRU eviction, and the
    /// bypass bound (independent of the global one, so this test is
    /// immune to other tests' traffic).
    #[test]
    fn cache_hits_evicts_and_bypasses() {
        let cache = StageCache::isolated();
        let make = |n: u64| -> Arc<ObservationColumns> { Arc::new(ObservationColumns::with_capacity(n as usize)) };

        // Miss then hit.
        assert!(cache.get_observations(4, 1).is_none());
        cache.insert_observations(4, 1, make(1));
        let got = cache.get_observations(4, 1).expect("hit after insert");
        assert_eq!(got.capacity(), 1);
        assert_eq!(cache.len(), 1);

        // LRU eviction at a tiny bound: key 1 is oldest once 2 and 3
        // land and 2 gets re-touched.
        cache.insert_observations(2, 2, make(2));
        let _ = cache.get_observations(2, 2);
        cache.insert_observations(2, 3, make(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get_observations(2, 1).is_none(), "LRU entry must be evicted");
        assert!(cache.get_observations(2, 2).is_some());
        assert!(cache.get_observations(2, 3).is_some());
        assert_eq!(cache.stats(Stage::Observations).evicted, 1);

        // bound == 0 bypasses entirely.
        cache.insert_observations(0, 9, make(9));
        assert!(cache.get_observations(0, 9).is_none());
        assert!(cache.get_observations(4, 9).is_none());

        // get_or_compute: second call is a hit, compute runs once.
        let mut runs = 0;
        for _ in 0..3 {
            let plan_like = cache.attacks(4, 77, || {
                runs += 1;
                Arc::new(AttackColumns::new())
            });
            assert_eq!(plan_like.len(), 0);
        }
        assert_eq!(runs, 1, "compute must run exactly once");
        assert_eq!(cache.stats(Stage::Attacks).computed, 1);
        assert_eq!(cache.stats(Stage::Attacks).hit, 2);

        cache.clear();
        assert!(cache.is_empty());
    }

    /// Adoption (disk-tier loads entering the memory tier) fills the
    /// slot without counting a stage execution — `computed` means "the
    /// stage actually ran", and a disk load is exactly the absence of
    /// that.
    #[test]
    fn adopt_fills_without_counting_a_compute() {
        let cache = StageCache::isolated();
        cache.adopt_attacks(4, 5, Arc::new(AttackColumns::new()));
        assert!(cache.get_attacks(4, 5).is_some());
        let stats = cache.stats(Stage::Attacks);
        assert_eq!(stats.computed, 0, "adopt must not count as a compute");
        assert_eq!(stats.hit, 1, "the lookup after adopt is a hit");
        cache.adopt_plan(4, 6, Arc::new(InternetPlan::build(
            &netmodel::NetScale::tiny(),
            &mut simcore::rng::SimRng::new(1),
        )));
        assert!(cache.get_plan(4, 6).is_some());
        assert_eq!(cache.stats(Stage::Plan).computed, 0);
        // bound 0 bypasses adoption like every other cache path.
        cache.adopt_attacks(0, 7, Arc::new(AttackColumns::new()));
        assert!(cache.get_attacks(4, 7).is_none());
    }

    /// Concurrent same-key misses coalesce onto one compute.
    #[test]
    fn concurrent_misses_coalesce() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = StageCache::isolated();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (cache, runs) = (&cache, &runs);
                scope.spawn(move || {
                    let v = cache.attacks(16, 42, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        Arc::new(AttackColumns::new())
                    });
                    assert_eq!(v.len(), 0);
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let stats = cache.stats(Stage::Attacks);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.hit, 7);
    }

    /// Eviction churn racing a coalesced miss at the tightest bound:
    /// while thread A's compute for key 7 is in flight (its cell empty,
    /// therefore eviction-proof) thread B inserts two other keys
    /// through bound 1, forcing LRU evictions, and thread C coalesces
    /// onto A's cell. Nobody deadlocks, both A and C observe the same
    /// computed value, and the counters add up.
    #[test]
    fn concurrent_eviction_races_coalesced_miss() {
        use std::sync::Barrier;
        let cache = StageCache::isolated();
        let make = |n: usize| -> Arc<ObservationColumns> { Arc::new(ObservationColumns::with_capacity(n)) };
        // Rendezvous 1: A's compute has started; B may churn, C may
        // coalesce. Rendezvous 2: B's churn is done; A may finish.
        let in_flight = Barrier::new(3);
        let churned = Barrier::new(2);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                cache.attacks(1, 7, || {
                    in_flight.wait();
                    churned.wait();
                    Arc::new(AttackColumns::new())
                })
            });
            let c = scope.spawn(|| {
                in_flight.wait();
                cache.attacks(1, 7, || panic!("C must coalesce onto A's compute, not re-run it"))
            });
            in_flight.wait();
            cache.insert_observations(1, 100, make(1));
            cache.insert_observations(1, 101, make(2));
            churned.wait();
            let a = a.join().expect("A must not deadlock or die");
            let c = c.join().expect("C must not deadlock or die");
            assert_eq!(a.len(), 0);
            assert_eq!(c.len(), 0);
        });
        // B's churn at bound 1 evicted at least one filled entry while
        // A's empty cell survived; A computed once, C hit.
        let attacks = cache.stats(Stage::Attacks);
        assert_eq!(attacks.computed, 1);
        assert_eq!(attacks.hit, 1);
        let observations = cache.stats(Stage::Observations);
        assert_eq!(observations.computed, 2);
        assert!(observations.evicted >= 1, "bound 1 churn must evict");
        // The cache stays usable afterwards: key 7 is now filled.
        let again = cache.attacks(4, 7, || panic!("must be served from cache"));
        assert_eq!(again.len(), 0);
    }

    /// A compute that panics must not wedge concurrent waiters on the
    /// same cell: every coalesced caller either computes or errors, and
    /// the cell recovers — a later compute can still fill it.
    #[test]
    fn panicked_compute_does_not_wedge_waiters() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = StageCache::isolated();
        let attempts = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (cache, attempts) = (&cache, &attempts);
                scope.spawn(move || {
                    let got = simcore::recover::capture("stagecache-test", || {
                        cache.attacks(8, 55, || {
                            attempts.fetch_add(1, Ordering::SeqCst);
                            panic!("injected compute failure")
                        })
                    });
                    let err = got.err().expect("every caller must error, not wedge");
                    assert!(err.message.contains("injected compute failure"));
                });
            }
        });
        assert!(
            attempts.load(Ordering::SeqCst) >= 1,
            "at least one caller must have attempted the compute"
        );
        // The cell recovered: a healthy compute fills it and later
        // lookups hit.
        let v = cache.attacks(8, 55, || Arc::new(AttackColumns::new()));
        assert_eq!(v.len(), 0);
        let again = cache.attacks(8, 55, || panic!("must be a cache hit now"));
        assert_eq!(again.len(), 0);
    }
}
