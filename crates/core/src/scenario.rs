//! Study configuration: one struct that pins down everything a run
//! needs, so a single seed reproduces the whole paper.

use attackgen::GenConfig;
use netmodel::NetScale;
use serde::{Deserialize, Serialize};

/// Full configuration of a study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed; every stochastic component forks from it.
    pub seed: u64,
    pub net: NetScale,
    pub gen: GenConfig,
    /// Reproduce the paper's missing-data gaps (ORION 2019Q3–Q4, IXP
    /// January 2019, §6.1) by masking those weeks.
    pub missing_data: bool,
    /// Worker count for the execution pool. `None` uses the process
    /// default (the `DDOSCOVERY_WORKERS` env var, else available
    /// parallelism). Results are identical for every setting — the
    /// pool merges shards in deterministic order.
    pub workers: Option<usize>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0xDD05_C0DE,
            net: NetScale::default(),
            gen: GenConfig::default(),
            missing_data: true,
            workers: None,
        }
    }
}

impl StudyConfig {
    /// The full paper-scale study (≈ 600k attacks over 4.5 years).
    pub fn paper() -> Self {
        StudyConfig::default()
    }

    /// A reduced study for tests and quick examples: ~1/8 of the attack
    /// volume, smaller tail AS population. Trends keep their shapes
    /// (the timeline is unchanged); only counting noise grows.
    pub fn quick() -> Self {
        let mut cfg = StudyConfig {
            net: NetScale::tiny(),
            ..StudyConfig::default()
        };
        cfg.gen.timeline.dp_base_per_week /= 8.0;
        cfg.gen.timeline.ra_base_per_week /= 8.0;
        cfg.gen.random_campaign_count = 8;
        cfg.gen.campaign_rate_scale = 1.0 / 8.0;
        cfg
    }

    /// Like `quick` but without the paper's artificial data gaps —
    /// useful for tests that assert on every week.
    pub fn quick_complete() -> Self {
        let mut cfg = Self::quick();
        cfg.missing_data = false;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = StudyConfig::quick();
        let p = StudyConfig::paper();
        assert!(q.gen.timeline.dp_base_per_week < p.gen.timeline.dp_base_per_week);
        assert!(q.net.tail_as_count < p.net.tail_as_count);
        assert_eq!(q.seed, p.seed);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = StudyConfig::quick();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: StudyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(
            back.gen.timeline.ra_base_per_week,
            cfg.gen.timeline.ra_base_per_week
        );
    }
}
