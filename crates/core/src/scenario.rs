//! Study configuration: one struct that pins down everything a run
//! needs, so a single seed reproduces the whole paper.
//!
//! Every field is classified by the pipeline **stage** it feeds —
//! `plan`, `attacks`, `observations`, projection, or execution-only —
//! and that classification drives the content-addressed stage cache
//! (DESIGN.md §7). The inventory lives in
//! [`crate::stagecache::FIELD_STAGES`] and is enforced by a unit test:
//! adding a field here without classifying it there fails the build's
//! test suite instead of silently poisoning the cache.

use crate::error::{Error, Result};
use crate::faults::{ChaosPlan, FaultPlan};
use attackgen::GenConfig;
use netmodel::NetScale;
use serde::{Deserialize, Serialize};

/// Observation-stage parameters: knobs that change what the
/// observatories report without touching the Internet plan or the
/// ground-truth attack stream. Sweeping one of these re-runs *only*
/// the observation stage — the stage cache serves the plan and the
/// attacks unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsParams {
    /// Honeypot carpet-reconstruction merge gap in seconds (Appendix
    /// I): same-prefix events closer than this collapse into one
    /// carpet-bombing attack.
    pub carpet_gap_secs: u32,
}

impl Default for ObsParams {
    fn default() -> Self {
        ObsParams { carpet_gap_secs: 3600 }
    }
}

/// Full configuration of a study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed; every stochastic component forks from it.
    pub seed: u64,
    pub net: NetScale,
    pub gen: GenConfig,
    /// Observation-stage parameters (honeypot carpet reconstruction).
    pub obs: ObsParams,
    /// Reproduce the paper's missing-data gaps (ORION 2019Q3–Q4, IXP
    /// January 2019, §6.1) by masking those weeks.
    pub missing_data: bool,
    /// Deterministic data-plane fault injection: per-source outage
    /// windows, honeypot sensor churn, flow sampling degradation.
    /// Empty (the default) is bit-for-bit identical to no fault plan.
    /// Stage class: observations — changing it re-keys only the
    /// observation stage.
    pub faults: FaultPlan,
    /// Deterministic control-plane fault injection (panicking pool
    /// shards and stage computes, recovered by bounded retry). `None`
    /// disables injection. Stage class: execution — output bytes are
    /// invariant to this knob as long as failures stay within the
    /// retry budget.
    pub chaos: Option<ChaosPlan>,
    /// Worker count for the execution pool. `None` uses the process
    /// default (the `DDOSCOVERY_WORKERS` env var, else available
    /// parallelism). Results are identical for every setting — the
    /// pool merges shards in deterministic order.
    pub workers: Option<usize>,
    /// Stage-cache bound in entries. `None` uses the process default
    /// (the `DDOSCOVERY_STAGE_CACHE` env var — `off` or an entry
    /// count — else [`crate::stagecache::DEFAULT_BOUND`]); `Some(0)`
    /// disables cross-run caching for this config. Results are
    /// byte-identical either way — the cache stores exact stage
    /// outputs keyed by fingerprints of exactly their inputs.
    pub stage_cache: Option<usize>,
    /// Persistent stage-store directory (DESIGN.md §11). `None` uses
    /// the process default (the `DDOSCOVERY_STORE` env var — a
    /// directory path — else off); `Some(dir)` enables the disk tier
    /// there; an empty string or `off` forces it off. Results are
    /// byte-identical either way: loads are integrity-checked and a
    /// rejected cell falls back to recompute.
    pub disk_store: Option<String>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0xDD05_C0DE,
            net: NetScale::default(),
            gen: GenConfig::default(),
            obs: ObsParams::default(),
            missing_data: true,
            faults: FaultPlan::default(),
            chaos: None,
            workers: None,
            stage_cache: None,
            disk_store: None,
        }
    }
}

/// `Ok` when `v` is finite, else a [`Error::Config`] naming `field`.
fn finite(field: &'static str, v: f64) -> Result<()> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(Error::config(field, format!("must be finite, got {v}")))
    }
}

/// Finite and `>= 0`.
fn non_negative(field: &'static str, v: f64) -> Result<()> {
    finite(field, v)?;
    if v >= 0.0 {
        Ok(())
    } else {
        Err(Error::config(field, format!("must be >= 0, got {v}")))
    }
}

/// Finite and `> 0`.
fn positive(field: &'static str, v: f64) -> Result<()> {
    finite(field, v)?;
    if v > 0.0 {
        Ok(())
    } else {
        Err(Error::config(field, format!("must be > 0, got {v}")))
    }
}

/// Finite and within `[0, 1]`. Shared with the fault-plan validation in
/// [`crate::faults`].
pub(crate) fn fraction(field: &'static str, v: f64) -> Result<()> {
    finite(field, v)?;
    if (0.0..=1.0).contains(&v) {
        Ok(())
    } else {
        Err(Error::config(field, format!("must be within [0, 1], got {v}")))
    }
}

impl StudyConfig {
    /// The full paper-scale study (≈ 600k attacks over 4.5 years).
    pub fn paper() -> Self {
        StudyConfig::default()
    }

    /// A reduced study for tests and quick examples: ~1/8 of the attack
    /// volume, smaller tail AS population. Trends keep their shapes
    /// (the timeline is unchanged); only counting noise grows.
    pub fn quick() -> Self {
        let mut cfg = StudyConfig {
            net: NetScale::tiny(),
            ..StudyConfig::default()
        };
        cfg.gen.timeline.dp_base_per_week /= 8.0;
        cfg.gen.timeline.ra_base_per_week /= 8.0;
        cfg.gen.random_campaign_count = 8;
        cfg.gen.campaign_rate_scale = 1.0 / 8.0;
        cfg
    }

    /// Like `quick` but without the paper's artificial data gaps —
    /// useful for tests that assert on every week.
    pub fn quick_complete() -> Self {
        let mut cfg = Self::quick();
        cfg.missing_data = false;
        cfg
    }

    /// Check every generator invariant. Returns the first violation as
    /// a typed [`Error::Config`] carrying the dotted path of the
    /// offending field. A config that passes runs the whole pipeline
    /// without panicking (enforced by `tests/no_panic_fuzz.rs`).
    pub fn validate(&self) -> Result<()> {
        // Execution knobs.
        if self.workers == Some(0) {
            return Err(Error::config("workers", "must be at least 1 when set"));
        }

        // Internet plan (stage: plan).
        let net = &self.net;
        if net.tail_as_count == 0 {
            return Err(Error::config("net.tail_as_count", "must be at least 1"));
        }
        if net.reflector_pool_total == 0 {
            return Err(Error::config("net.reflector_pool_total", "must be at least 1"));
        }
        fraction("net.netscout_customer_fraction", net.netscout_customer_fraction)?;
        fraction("net.ixp_member_fraction", net.ixp_member_fraction)?;
        fraction("net.akamai_protected_fraction", net.akamai_protected_fraction)?;
        positive("net.tail_weight_exponent", net.tail_weight_exponent)?;

        // Attack timeline (stage: attacks).
        let t = &self.gen.timeline;
        non_negative("gen.timeline.dp_base_per_week", t.dp_base_per_week)?;
        non_negative("gen.timeline.ra_base_per_week", t.ra_base_per_week)?;
        finite("gen.timeline.dp_growth_per_year", t.dp_growth_per_year)?;
        finite("gen.timeline.ra_growth_per_year", t.ra_growth_per_year)?;
        non_negative("gen.timeline.pandemic_peak_dp", t.pandemic_peak_dp)?;
        non_negative("gen.timeline.pandemic_peak_ra", t.pandemic_peak_ra)?;
        fraction("gen.timeline.sav_reduction", t.sav_reduction)?;
        fraction("gen.timeline.takedown_dip", t.takedown_dip)?;
        positive("gen.timeline.takedown_recovery_weeks", t.takedown_recovery_weeks)?;
        non_negative("gen.timeline.seasonal_amplitude", t.seasonal_amplitude)?;
        non_negative("gen.timeline.ra_2023_recovery", t.ra_2023_recovery)?;
        non_negative("gen.timeline.noise_sigma", t.noise_sigma)?;
        fraction("gen.timeline.dp_spoofed_fraction_start", t.dp_spoofed_fraction_start)?;
        fraction("gen.timeline.dp_spoofed_fraction_end", t.dp_spoofed_fraction_end)?;

        // Attack shapes (stage: attacks).
        let s = &self.gen.shape;
        positive("gen.shape.duration_median_secs", s.duration_median_secs)?;
        non_negative("gen.shape.duration_sigma", s.duration_sigma)?;
        if s.duration_min_secs == 0 {
            return Err(Error::config("gen.shape.duration_min_secs", "must be at least 1"));
        }
        if s.duration_min_secs > s.duration_max_secs {
            return Err(Error::config(
                "gen.shape.duration_min_secs",
                format!(
                    "window inverted: min {} > max {}",
                    s.duration_min_secs, s.duration_max_secs
                ),
            ));
        }
        positive("gen.shape.pps_min", s.pps_min)?;
        positive("gen.shape.pps_alpha", s.pps_alpha)?;
        positive("gen.shape.pps_max", s.pps_max)?;
        if s.pps_max < s.pps_min {
            return Err(Error::config(
                "gen.shape.pps_max",
                format!("window inverted: max {} < min {}", s.pps_max, s.pps_min),
            ));
        }
        positive("gen.shape.bytes_per_packet", s.bytes_per_packet)?;
        fraction("gen.shape.carpet_probability", s.carpet_probability)?;
        if s.carpet_min_targets == 0 {
            return Err(Error::config("gen.shape.carpet_min_targets", "must be at least 1"));
        }
        if s.carpet_min_targets > s.carpet_max_targets {
            return Err(Error::config(
                "gen.shape.carpet_min_targets",
                format!(
                    "window inverted: min {} > max {}",
                    s.carpet_min_targets, s.carpet_max_targets
                ),
            ));
        }
        positive("gen.shape.reflector_median", s.reflector_median)?;
        non_negative("gen.shape.reflector_sigma", s.reflector_sigma)?;
        fraction("gen.shape.multi_class_probability", s.multi_class_probability)?;
        fraction("gen.shape.partial_spoof_probability", s.partial_spoof_probability)?;
        fraction("gen.shape.partial_spoof_min", s.partial_spoof_min)?;
        fraction("gen.shape.partial_spoof_max", s.partial_spoof_max)?;
        if s.partial_spoof_min > s.partial_spoof_max {
            return Err(Error::config(
                "gen.shape.partial_spoof_min",
                format!(
                    "window inverted: min {} > max {}",
                    s.partial_spoof_min, s.partial_spoof_max
                ),
            ));
        }

        // Campaign layering (stage: attacks).
        non_negative("gen.campaign_rate_scale", self.gen.campaign_rate_scale)?;
        fraction("gen.akamai_dp_accept_start", self.gen.akamai_dp_accept_start)?;
        fraction("gen.akamai_dp_accept_end", self.gen.akamai_dp_accept_end)?;

        // Observation stage.
        if self.obs.carpet_gap_secs == 0 {
            return Err(Error::config("obs.carpet_gap_secs", "must be at least 1"));
        }

        // Fault injection (stage: observations / execution).
        self.faults.validate()?;
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
        }

        Ok(())
    }

    /// Consuming variant of [`StudyConfig::validate`]: returns the
    /// config itself when every invariant holds, for builder-style
    /// call chains.
    pub fn validated(self) -> Result<StudyConfig> {
        self.validate()?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = StudyConfig::quick();
        let p = StudyConfig::paper();
        assert!(q.gen.timeline.dp_base_per_week < p.gen.timeline.dp_base_per_week);
        assert!(q.net.tail_as_count < p.net.tail_as_count);
        assert_eq!(q.seed, p.seed);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = StudyConfig::quick();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: StudyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(
            back.gen.timeline.ra_base_per_week,
            cfg.gen.timeline.ra_base_per_week
        );
        assert_eq!(back.obs.carpet_gap_secs, cfg.obs.carpet_gap_secs);
        assert_eq!(back.stage_cache, cfg.stage_cache);
        assert_eq!(back.disk_store, cfg.disk_store);
        assert_eq!(back.faults, cfg.faults);
        assert_eq!(back.chaos, cfg.chaos);
    }

    #[test]
    fn serde_roundtrips_a_populated_fault_plan() {
        let mut cfg = StudyConfig::quick();
        cfg.faults.outages.push(crate::faults::OutageSpec {
            source: "orion".into(),
            start_week: 3,
            end_week: 11,
        });
        cfg.faults.honeypot_churn =
            Some(crate::faults::ChurnSpec { decline_per_year: 0.2, offline_weekly: 0.1 });
        cfg.chaos = Some(ChaosPlan::recoverable(0.25, 99));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: StudyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, cfg.faults);
        assert_eq!(back.chaos, cfg.chaos);
    }

    #[test]
    fn presets_self_validate() {
        assert!(StudyConfig::paper().validate().is_ok());
        assert!(StudyConfig::quick().validate().is_ok());
        assert!(StudyConfig::quick_complete().validate().is_ok());
        assert!(StudyConfig::quick().validated().is_ok());
    }

    /// Every corruption the fuzz harness applies must surface with the
    /// exact dotted field path it expects.
    #[test]
    fn validate_names_the_poisoned_field() {
        let cases: Vec<(&'static str, Box<dyn Fn(&mut StudyConfig)>)> = vec![
            ("workers", Box::new(|c| c.workers = Some(0))),
            ("net.tail_as_count", Box::new(|c| c.net.tail_as_count = 0)),
            (
                "net.ixp_member_fraction",
                Box::new(|c| c.net.ixp_member_fraction = -0.1),
            ),
            (
                "gen.timeline.dp_base_per_week",
                Box::new(|c| c.gen.timeline.dp_base_per_week = f64::NAN),
            ),
            (
                "gen.timeline.ra_base_per_week",
                Box::new(|c| c.gen.timeline.ra_base_per_week = -3.0),
            ),
            (
                "gen.timeline.sav_reduction",
                Box::new(|c| c.gen.timeline.sav_reduction = 1.5),
            ),
            (
                "gen.timeline.noise_sigma",
                Box::new(|c| c.gen.timeline.noise_sigma = f64::INFINITY),
            ),
            (
                "gen.shape.duration_min_secs",
                Box::new(|c| {
                    c.gen.shape.duration_min_secs = 100;
                    c.gen.shape.duration_max_secs = 10;
                }),
            ),
            (
                "gen.shape.pps_min",
                Box::new(|c| c.gen.shape.pps_min = f64::NEG_INFINITY),
            ),
            ("obs.carpet_gap_secs", Box::new(|c| c.obs.carpet_gap_secs = 0)),
            (
                "faults.outages",
                Box::new(|c| {
                    c.faults.outages.push(crate::faults::OutageSpec {
                        source: "atlantis".into(),
                        start_week: 0,
                        end_week: 4,
                    })
                }),
            ),
            (
                "faults.honeypot_churn.offline_weekly",
                Box::new(|c| {
                    c.faults.honeypot_churn = Some(crate::faults::ChurnSpec {
                        decline_per_year: 0.1,
                        offline_weekly: f64::NAN,
                    })
                }),
            ),
            (
                "chaos.probability",
                Box::new(|c| {
                    c.chaos = Some(ChaosPlan { probability: -0.5, failures_per_site: 1, seed: 0 })
                }),
            ),
        ];
        for (field, poison) in cases {
            let mut cfg = StudyConfig::quick();
            poison(&mut cfg);
            match cfg.validate() {
                Err(Error::Config { field: named, .. }) => {
                    assert_eq!(named, field, "wrong field named for {field}")
                }
                other => panic!("{field}: expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn validated_passes_through_valid_configs() {
        let cfg = StudyConfig::quick().validated().expect("quick is valid");
        assert_eq!(cfg.seed, StudyConfig::quick().seed);
        let mut bad = StudyConfig::quick();
        bad.workers = Some(0);
        assert!(bad.validated().is_err());
    }
}
