//! Detector validation: cross-check the event-level observatory models
//! against the packet-level detectors on a sample of real generated
//! attacks (not a paper figure — the fidelity argument of DESIGN.md §1).

use super::ExperimentResult;
use crate::pipeline::StudyRun;
use crate::render::text_table;
use attackgen::packets::{backscatter_packets, sensor_request_packets};
use attackgen::AttackClass;
use honeypot::{HoneypotConfig, HoneypotDetector};
use simcore::SimRng;
use telescope::{RsdosConfig, RsdosDetector, Telescope};

/// How many attacks of each class to validate per run.
const SAMPLE: usize = 120;

pub fn detval(run: &StudyRun) -> ExperimentResult {
    let root = SimRng::new(run.config.seed).fork_named("observatories");
    let ucsd = Telescope::ucsd(&run.plan);

    // --- Telescope: event verdict vs Corsaro over synthesized
    // backscatter.
    // This cold validation path materializes its ~120-row samples from
    // the columnar population (the packet synthesizers take &Attack).
    let rsdos: Vec<attackgen::Attack> = run
        .attacks
        .iter()
        .filter(|a| a.class == AttackClass::DirectPathSpoofed)
        .step_by((run.attacks.len() / (SAMPLE * 4)).max(1))
        .take(SAMPLE)
        .map(|a| a.to_attack())
        .collect();
    let mut tel_agree = 0usize;
    let mut tel_total = 0usize;
    for a in &rsdos {
        let event = ucsd.observe(a, &root).is_some();
        let mut pkt_rng = root.fork(a.id.0).fork_named("detval-packets");
        let pkts = backscatter_packets(a, &ucsd.spec, &mut pkt_rng);
        let mut det = RsdosDetector::new(RsdosConfig::default());
        for p in &pkts {
            det.ingest(p);
        }
        let packet = !det.finish().is_empty();
        tel_total += 1;
        tel_agree += (event == packet) as usize;
    }

    // --- Honeypot: event verdict vs the flow detector over synthesized
    // requests at one Hopscotch sensor. To compare like with like we
    // force the "sensor selected" case: the packet stream *is* the
    // requests at a selected sensor, so the packet verdict conditions on
    // selection while the event verdict also includes the selection
    // draw. We therefore compare only threshold behaviour: event model
    // with selection forced (m = 1) vs the detector.
    let hp_cfg = HoneypotConfig::hopscotch(&run.plan);
    let sensor = hp_cfg.sensors[0];
    let ra: Vec<attackgen::Attack> = run
        .attacks
        .iter()
        .filter(|a| {
            a.class == AttackClass::ReflectionAmplification
                && a.reflectors.map(|r| hp_cfg.supports(r.vector)) == Some(true)
                && !a.is_carpet_bombing()
        })
        .step_by((run.attacks.len() / (SAMPLE * 4)).max(1))
        .take(SAMPLE)
        .map(|a| a.to_attack())
        .collect();
    let mut hp_agree = 0usize;
    let mut hp_total = 0usize;
    for a in &ra {
        let mut pkt_rng = root.fork(a.id.0).fork_named("detval-hp-packets");
        let pkts = sensor_request_packets(a, sensor, &mut pkt_rng);
        let mut det = HoneypotDetector::new(hp_cfg.clone());
        for p in &pkts {
            det.ingest(p);
        }
        let packet = !det.finish().is_empty();
        // Event-side threshold check, selection forced: per-sensor
        // request volume vs the platform threshold.
        let Some(refl) = a.reflectors else {
            continue; // RA sample filter guarantees reflectors; stay panic-free
        };
        let expected = a.pps / refl.reflector_count.max(1) as f64 * a.duration_secs as f64;
        let event = expected >= hp_cfg.min_packets as f64;
        hp_total += 1;
        hp_agree += (event == packet) as usize;
    }

    let rows = vec![
        vec![
            "UCSD Corsaro vs event model".into(),
            format!("{tel_total}"),
            format!("{:.1}%", 100.0 * tel_agree as f64 / tel_total.max(1) as f64),
        ],
        vec![
            "Hopscotch detector vs threshold".into(),
            format!("{hp_total}"),
            format!("{:.1}%", 100.0 * hp_agree as f64 / hp_total.max(1) as f64),
        ],
    ];
    let body = text_table(&["Validation", "Attacks", "Agreement"], &rows);
    let csv = format!(
        "validation,attacks,agreement\ntelescope,{},{:.6}\nhoneypot,{},{:.6}\n",
        tel_total,
        tel_agree as f64 / tel_total.max(1) as f64,
        hp_total,
        hp_agree as f64 / hp_total.max(1) as f64,
    );
    ExperimentResult {
        id: "detval",
        title: "Detector validation: packet-level vs event-level fidelity".into(),
        body,
        csv: vec![("detval.csv".into(), csv)],
    }
}
