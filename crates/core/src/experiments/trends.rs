//! Trend-figure experiments: Fig. 2 (DP series), Fig. 3 (RA series with
//! takedown markers), Fig. 4 (heatmap), Fig. 5 (Netscout share),
//! Fig. 12 (NewKid).

use super::ExperimentResult;
use crate::pipeline::{ObsId, StudyRun};
use crate::render::{series_csv, sparkline, text_table};
use analytics::{Heatmap, WeeklySeries};
use simcore::time::{takedown_dates, week_start_date};

/// Per-series summary block used by Fig. 2 / Fig. 3: normalized series,
/// EWMA, and the paper's per-start-year regression slopes.
fn trend_block(series: &[WeeklySeries]) -> (String, Vec<(String, String)>) {
    let mut rows = Vec::new();
    for s in series {
        let ewma = s.ewma(12);
        let mut slopes = Vec::new();
        for start_year in 2019..=2022 {
            let lo = simcore::Date::new(start_year, 1, 1)
                .to_sim_time()
                .week_index()
                .max(0) as usize;
            let slope = s
                .regression_in(lo, s.len())
                .map(|r| format!("{:+.4}", r.slope))
                .unwrap_or_else(|| "--".into());
            slopes.push(slope);
        }
        rows.push(vec![
            s.name.clone(),
            s.trend().symbol().to_string(),
            sparkline(&ewma.values, 47),
            slopes.join(" / "),
        ]);
    }
    let body = text_table(
        &["Series", "Trend", "EWMA (sparkline, ~5wk/char)", "slopes from 2019/20/21/22"],
        &rows,
    );
    let mut csvs = Vec::new();
    csvs.push(("normalized.csv".to_string(), series_csv(series)));
    let ewmas: Vec<WeeklySeries> = series.iter().map(|s| s.ewma(12)).collect();
    csvs.push(("ewma.csv".to_string(), series_csv(&ewmas)));
    (body, csvs)
}

/// Fig. 2: normalized weekly direct-path attack counts at the five DP
/// observatories.
pub fn fig2(run: &StudyRun) -> ExperimentResult {
    let ids = [
        ObsId::Orion,
        ObsId::Ucsd,
        ObsId::NetscoutDp,
        ObsId::AkamaiDp,
        ObsId::IxpDp,
    ];
    let series: Vec<WeeklySeries> = ids.iter().map(|&id| run.normalized_series(id).clone()).collect();
    let (body, csvs) = trend_block(&series);
    ExperimentResult {
        id: "fig2",
        title: "Figure 2: normalized weekly direct-path attack counts".into(),
        body,
        csv: csvs
            .into_iter()
            .map(|(n, c)| (format!("fig2_{n}"), c))
            .collect(),
    }
}

/// Fig. 3: normalized weekly reflection-amplification attack counts,
/// with the law-enforcement takedown dates marked.
pub fn fig3(run: &StudyRun) -> ExperimentResult {
    let ids = [
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NetscoutRa,
        ObsId::AkamaiRa,
        ObsId::IxpRa,
    ];
    let series: Vec<WeeklySeries> = ids.iter().map(|&id| run.normalized_series(id).clone()).collect();
    let (mut body, csvs) = trend_block(&series);
    body.push_str("\nTakedown markers (red dashed lines in the paper):\n");
    for d in takedown_dates() {
        body.push_str(&format!("  {} (week {})\n", d, d.to_sim_time().week_index()));
    }
    ExperimentResult {
        id: "fig3",
        title: "Figure 3: normalized weekly reflection-amplification attack counts".into(),
        body,
        csv: csvs
            .into_iter()
            .map(|(n, c)| (format!("fig3_{n}"), c))
            .collect(),
    }
}

/// Fig. 4: all ten series as a heatmap (DP block on top).
pub fn fig4(run: &StudyRun) -> ExperimentResult {
    let series = run.all_ten_normalized();
    let heat = Heatmap::from_series(&series, 4.0);
    let body = heat.render(5);
    ExperimentResult {
        id: "fig4",
        title: "Figure 4: normalized weekly attack counts, all ten vantage points".into(),
        body,
        csv: vec![("fig4_heatmap.csv".into(), series_csv(&series))],
    }
}

/// Fig. 5: weekly RA vs DP share at Netscout, with the latest crossing
/// of the 50 % mark (the paper's dotted line: 2021Q2).
pub fn fig5(run: &StudyRun) -> ExperimentResult {
    let ra = run.weekly_series(ObsId::NetscoutRa);
    let dp = run.weekly_series(ObsId::NetscoutDp);
    let share = analytics::share_series(&dp, &ra);
    // Crossing detection on a centered moving average: smoothing is
    // needed (weekly counts are noisy) but an EWMA's phase lag would
    // shift the crossing date by half its span.
    let smoothed = share.centered_ma(6);
    let last_cross = analytics::durable_crossing(&smoothed.values, 0.5);
    let mut body = format!(
        "DP share of Netscout attack counts (smoothed): {}\n",
        sparkline(&smoothed.values, 47)
    );
    match last_cross {
        Some(w) => {
            let date = week_start_date(w as i64);
            body.push_str(&format!(
                "Latest crossing of the 50% mark: week {w} ({date}, {})\n",
                date.quarter_label()
            ));
        }
        None => body.push_str("DP share never durably crossed 50%\n"),
    }
    // Yearly shares for the summary.
    for year in 2019..=2023 {
        let lo = simcore::Date::new(year, 1, 1).to_sim_time().week_index().max(0) as usize;
        let hi = (simcore::Date::new(year + 1, 1, 1).to_sim_time().week_index() as usize)
            .min(ra.len());
        let r: f64 = ra.values[lo..hi].iter().filter(|v| v.is_finite()).sum();
        let d: f64 = dp.values[lo..hi].iter().filter(|v| v.is_finite()).sum();
        if r + d > 0.0 {
            body.push_str(&format!(
                "  {year}: RA {:.1}% / DP {:.1}%\n",
                100.0 * r / (r + d),
                100.0 * d / (r + d)
            ));
        }
    }
    let csv = series_csv(&[ra.clone(), dp.clone(), share, smoothed]);
    ExperimentResult {
        id: "fig5",
        title: "Figure 5: Netscout RA/DP attack share and 50% crossing".into(),
        body,
        csv: vec![("fig5_netscout_share.csv".into(), csv)],
    }
}

/// Fig. 12 (Appendix D): the NewKid single-sensor series.
pub fn fig12(run: &StudyRun) -> ExperimentResult {
    let s = run.normalized_series(ObsId::NewKid);
    let peak = s
        .present()
        .map(|(_, v)| v)
        .fold(0.0f64, f64::max);
    let body = format!(
        "NewKid normalized weekly attacks: {}\npeak {:.1}x baseline; single-sensor series — erratic by construction (excluded from §6 trends)\n",
        sparkline(&s.values, 47),
        peak
    );
    ExperimentResult {
        id: "fig12",
        title: "Figure 12 (App. D): NewKid honeypot trends".into(),
        body,
        csv: vec![("fig12_newkid.csv".into(), series_csv(&[s.clone()]))],
    }
}
