//! The experiment registry: one entry per table and figure of the
//! paper, each regenerating its artifact from a [`StudyRun`].
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `table1`  | Table 1 — trend matrix + industry claim counts |
//! | `table2`  | Table 2 — observatory parameters (from live configs) |
//! | `table3`  | Table 3 — industry report corpus |
//! | `table4`  | Table 4 — top-10 ASes by highly-visible targets |
//! | `fig2`    | Fig. 2 — normalized weekly direct-path counts |
//! | `fig3`    | Fig. 3 — normalized weekly RA counts + takedowns |
//! | `fig4`    | Fig. 4 — ten-series heatmap |
//! | `fig5`    | Fig. 5 — Netscout RA/DP share and 50 % crossing |
//! | `fig6`    | Fig. 6 — Spearman matrices (raw + EWMA) with p-values |
//! | `fig7`    | Fig. 7 — UpSet of academic target sets |
//! | `fig8`    | Fig. 8 — highly-visible targets over time + CDF |
//! | `fig9`    | Fig. 9 — Netscout confirmation of academic targets |
//! | `fig10`   | Fig. 10 — telescope / honeypot target overlap series |
//! | `fig12`   | Fig. 12 (App. D) — NewKid trends |
//! | `fig13`   | Fig. 13 (App. G) — Akamai confirmation shares |
//! | `fig14`   | Fig. 14 (App. F) — quarterly correlation boxes |
//! | `stats7`  | §7 scalar statistics |
//! | `detval`  | packet-level vs event-level detector agreement |
//! | `lags`    | extension: lead/lag structure between observatories |
//! | `vendor_reports` | extension: synthetic vendor claims vs the corpus |
//! | `protocols` | extension (§7.3): per-protocol honeypot composition |
//! | `interference` | extension (§5): mitigation vs telescope visibility |
//! | `rtbh`    | extension (§2.3): blackholing mechanics and collateral |
//! | `seasonality` | extension (§6.1): first-half-of-year peaks |
//! | `l7`      | extension (§3): application-layer attack growth |
//! | `population` | extension (§3 metrics): ground-truth population summary |

mod correlations;
mod extensions;
mod detval;
mod tables;
mod targets;
mod trends;

use crate::pipeline::StudyRun;

/// Output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub id: &'static str,
    pub title: String,
    /// Human-readable rendering (tables / series summaries).
    pub body: String,
    /// Machine-readable artifacts: (file name, CSV contents).
    pub csv: Vec<(String, String)>,
}

/// All experiment ids, in paper order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "table1", "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig8", "fig9", "fig10", "fig12", "fig13", "fig14", "stats7", "detval", "lags",
        "vendor_reports", "protocols", "interference", "rtbh", "seasonality", "l7",
        "population",
    ]
}

/// Run a single experiment by id.
pub fn run_experiment(run: &StudyRun, id: &str) -> Option<ExperimentResult> {
    Some(match id {
        "table1" => tables::table1(run),
        "table2" => tables::table2(run),
        "table3" => tables::table3(run),
        "table4" => tables::table4(run),
        "fig2" => trends::fig2(run),
        "fig3" => trends::fig3(run),
        "fig4" => trends::fig4(run),
        "fig5" => trends::fig5(run),
        "fig6" => correlations::fig6(run),
        "fig7" => targets::fig7(run),
        "fig8" => targets::fig8(run),
        "fig9" => targets::fig9(run),
        "fig10" => targets::fig10(run),
        "fig12" => trends::fig12(run),
        "fig13" => targets::fig13(run),
        "fig14" => correlations::fig14(run),
        "stats7" => targets::stats7(run),
        "detval" => detval::detval(run),
        "lags" => extensions::lags(run),
        "vendor_reports" => extensions::vendor_reports(run),
        "protocols" => extensions::protocols(run),
        "interference" => extensions::interference(run),
        "rtbh" => extensions::rtbh(run),
        "seasonality" => extensions::seasonality(run),
        "l7" => extensions::l7_growth(run),
        "population" => extensions::population(run),
        _ => return None,
    })
}

/// Run every experiment.
pub fn run_all(run: &StudyRun) -> Vec<ExperimentResult> {
    all_ids()
        .iter()
        .map(|id| run_experiment(run, id).expect("registered id"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StudyConfig;
    use std::sync::OnceLock;

    fn quick_run() -> &'static StudyRun {
        static RUN: OnceLock<StudyRun> = OnceLock::new();
        RUN.get_or_init(|| StudyRun::execute(&StudyConfig::quick()))
    }

    #[test]
    fn all_ids_resolve() {
        let run = quick_run();
        for id in all_ids() {
            let r = run_experiment(run, id).unwrap_or_else(|| panic!("{id} missing"));
            assert_eq!(&r.id, id);
            assert!(!r.title.is_empty());
            assert!(!r.body.is_empty(), "{id} has empty body");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment(quick_run(), "fig99").is_none());
    }

    #[test]
    fn run_all_covers_registry() {
        let results = run_all(quick_run());
        assert_eq!(results.len(), all_ids().len());
    }
}
