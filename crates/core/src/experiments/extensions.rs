//! Extension experiments beyond the paper's figures:
//!
//! * `lags` — lead/lag structure between observatory series (which
//!   vantage point sees trends first), quantifying the phase offsets
//!   the paper describes narratively (§6.2: Hopscotch peaked early in
//!   2020 while AmpPot peaked late).
//! * `vendor_reports` — closes the §3 loop: synthesize vendor-style
//!   year-over-year claims from each simulated vantage point and
//!   compare them against the surveyed corpus' claim distribution,
//!   including the §3 cherry-picking (quarter-vs-year) sensitivity.

use super::ExperimentResult;
use crate::pipeline::{ObsId, StudyRun};
use crate::render::text_table;
use analytics::best_lag;
use flowmon::{MitigationModel, MitigationParams};
use reports::{period_sensitivity, synthesize, table1_industry_counts, TrendClaim};
use simcore::SimRng;
use std::collections::{HashMap, HashSet};
use telescope::Telescope;

/// Lead/lag matrix over the ten main series.
pub fn lags(run: &StudyRun) -> ExperimentResult {
    let series = run.all_ten_normalized();
    let smoothed: Vec<analytics::WeeklySeries> = series.iter().map(|s| s.ewma(12)).collect();
    let max_lag = 16;
    let mut rows = Vec::new();
    let mut csv = String::from("leader,follower,lag_weeks,rho,p_value\n");
    for i in 0..smoothed.len() {
        for j in (i + 1)..smoothed.len() {
            let Some(best) = best_lag(&smoothed[i], &smoothed[j], max_lag) else {
                continue;
            };
            // Only report informative pairs: significant and meaningfully
            // lagged.
            if !best.correlation.significant() {
                continue;
            }
            let (leader, follower, lag) = if best.lag >= 0 {
                (&series[i].name, &series[j].name, best.lag)
            } else {
                (&series[j].name, &series[i].name, -best.lag)
            };
            csv.push_str(&format!(
                "{},{},{},{:.4},{:.6}\n",
                leader, follower, lag, best.correlation.rho, best.correlation.p_value
            ));
            if lag >= 2 {
                rows.push(vec![
                    leader.clone(),
                    follower.clone(),
                    format!("{lag} wk"),
                    format!("{:+.2}", best.correlation.rho),
                ]);
            }
        }
    }
    rows.sort_by(|a, b| b[3].cmp(&a[3]));
    let mut body = String::from(
        "Pairs where one observatory leads another by >= 2 weeks (EWMA, best lag in +-16 wk):\n",
    );
    if rows.is_empty() {
        body.push_str("  none — all significant pairs are in phase\n");
    } else {
        body.push_str(&text_table(&["Leader", "Follower", "Lag", "rho"], &rows));
    }
    ExperimentResult {
        id: "lags",
        title: "Extension: lead/lag structure between observatories".into(),
        body,
        csv: vec![("lags.csv".into(), csv)],
    }
}

/// Synthetic vendor reports from each vantage point vs the surveyed
/// corpus.
pub fn vendor_reports(run: &StudyRun) -> ExperimentResult {
    // Vantage points that observe both classes.
    let vantages: [(&str, ObsId, ObsId); 3] = [
        ("Netscout-like", ObsId::NetscoutDp, ObsId::NetscoutRa),
        ("Akamai-like", ObsId::AkamaiDp, ObsId::AkamaiRa),
        ("IXP-like", ObsId::IxpDp, ObsId::IxpRa),
    ];
    let fmt_claim = |c: TrendClaim| -> String {
        match c {
            TrendClaim::Increase(Some(v)) => format!("increase ({:+.0}%)", 100.0 * v),
            TrendClaim::Increase(None) => "increase".into(),
            TrendClaim::Decrease(Some(v)) => format!("decrease ({:+.0}%)", 100.0 * v),
            TrendClaim::Decrease(None) => "decrease".into(),
            TrendClaim::Mixed => "mixed".into(),
            TrendClaim::NotReported => "n/a".into(),
        }
    };
    let mut rows = Vec::new();
    let mut csv = String::from("vantage,dp_yoy,ra_yoy,dp_claim,ra_claim\n");
    let mut dp_inc = 0usize;
    let mut ra_dec = 0usize;
    for (name, dp_id, ra_id) in vantages {
        let dp = run.weekly_series(dp_id);
        let ra = run.weekly_series(ra_id);
        let report = synthesize(name, &dp, &ra);
        dp_inc += report.dp_claim.is_increase() as usize;
        ra_dec += report.ra_claim.is_decrease() as usize;
        csv.push_str(&format!(
            "{},{},{},{:?},{:?}\n",
            name,
            report.dp_yoy.map(|v| format!("{v:.4}")).unwrap_or_default(),
            report.ra_yoy.map(|v| format!("{v:.4}")).unwrap_or_default(),
            report.dp_claim,
            report.ra_claim
        ));
        rows.push(vec![
            name.to_string(),
            fmt_claim(report.dp_claim),
            fmt_claim(report.ra_claim),
        ]);
    }
    let mut body = String::from("Synthetic 2022-vs-2021 vendor claims from simulated vantages:\n");
    body.push_str(&text_table(&["Vantage", "DP claim", "RA claim"], &rows));
    let ((c_dp_inc, c_dp_dec), (c_ra_inc, c_ra_dec)) = table1_industry_counts();
    body.push_str(&format!(
        "\nSimulated vantages: DP increase {dp_inc}/3, RA decrease {ra_dec}/3\n\
         Surveyed corpus (§3): DP ▲({c_dp_inc}) ▼({c_dp_dec}), RA ▲({c_ra_inc}) ▼({c_ra_dec})\n"
    ));
    // Cherry-picking sensitivity (§3 "Comparing short periods may be
    // misleading"): quarterly spread for the Netscout-like RA series.
    let ra = run.weekly_series(ObsId::NetscoutRa);
    let quarters = period_sensitivity(&ra, 2022);
    let qvals: Vec<String> = quarters
        .iter()
        .enumerate()
        .map(|(i, q)| match q {
            Some(v) => format!("Q{}: {:+.0}%", i + 1, 100.0 * v),
            None => format!("Q{}: n/a", i + 1),
        })
        .collect();
    body.push_str(&format!(
        "\nCherry-picking check — Netscout-like RA, 2022 quarters vs 2021: {}\n\
         (a vendor quoting its best quarter would tell a different story than the annual number)\n",
        qvals.join(", ")
    ));
    ExperimentResult {
        id: "vendor_reports",
        title: "Extension: synthetic vendor reports vs the surveyed corpus".into(),
        body,
        csv: vec![("vendor_reports.csv".into(), csv)],
    }
}

/// §7.3 per-protocol honeypot composition: which amplification vectors
/// each platform's targets arrive over, and the per-vector target
/// overlap ("AmpPot observed more targets attacked via CHARGEN while
/// Hopscotch saw more targets attacked via CLDAP ... for QOTD, RPC and
/// NTP both had largely overlapping target sets").
pub fn protocols(run: &StudyRun) -> ExperimentResult {
    // Join observations back to ground-truth vectors.
    let vector_of: HashMap<u64, netmodel::AmpVector> = run
        .attacks
        .iter()
        .filter_map(|a| a.vector.amp_vector().map(|v| (a.id.0, v)))
        .collect();
    let per_vector_targets = |id: ObsId| -> HashMap<netmodel::AmpVector, HashSet<(i64, netmodel::Ipv4)>> {
        let mut out: HashMap<netmodel::AmpVector, HashSet<(i64, netmodel::Ipv4)>> = HashMap::new();
        for o in run.observations(id).iter() {
            let Some(&v) = vector_of.get(&o.attack_id.0) else {
                continue;
            };
            let day = o.start.day_index();
            let set = out.entry(v).or_default();
            for &t in o.targets {
                set.insert((day, t));
            }
        }
        out
    };
    let hop = per_vector_targets(ObsId::Hopscotch);
    let amp = per_vector_targets(ObsId::AmpPot);
    let mut rows = Vec::new();
    let mut csv = String::from("vector,amppot_targets,hopscotch_targets,shared,shared_of_smaller\n");
    for v in netmodel::AmpVector::ALL {
        let a = amp.get(&v).map(|s| s.len()).unwrap_or(0);
        let h = hop.get(&v).map(|s| s.len()).unwrap_or(0);
        let shared = match (amp.get(&v), hop.get(&v)) {
            (Some(sa), Some(sh)) => sa.intersection(sh).count(),
            _ => 0,
        };
        let denom = a.min(h);
        let share = if denom > 0 {
            shared as f64 / denom as f64
        } else {
            0.0
        };
        csv.push_str(&format!("{},{},{},{},{:.4}\n", v.label(), a, h, shared, share));
        rows.push(vec![
            v.label().to_string(),
            format!("{a}"),
            format!("{h}"),
            format!("{shared}"),
            if denom > 0 { format!("{:.0}%", 100.0 * share) } else { "-".into() },
        ]);
    }
    let mut body = String::from(
        "Per-vector (date, IP) targets at the two honeypots (§7.3):\n",
    );
    body.push_str(&text_table(
        &["Vector", "AmpPot", "Hopscotch", "Shared", "Shared/smaller"],
        &rows,
    ));
    body.push_str(
        "\nExpected pattern: CHARGEN/WS-Discovery/SNMP AmpPot-only, CLDAP/Memcached\n\
         Hopscotch-only, large shared sets on the common vectors (DNS, NTP, QOTD, RPC).\n",
    );
    ExperimentResult {
        id: "protocols",
        title: "Extension (§7.3): per-protocol honeypot target composition".into(),
        body,
        csv: vec![("protocols.csv".into(), csv)],
    }
}

/// §5 interference ablation: how much telescope visibility does fast
/// industry mitigation remove? Re-observes the spoofed direct-path
/// stream with mitigation-truncated durations and compares detection
/// counts.
pub fn interference(run: &StudyRun) -> ExperimentResult {
    let root = SimRng::new(run.config.seed).fork_named("observatories");
    // Today's landscape vs a counterfactual where every alerting
    // provider's customer also filters within the first minute.
    let scenarios: [(&str, MitigationParams); 2] = [
        ("today (DPS < 1 min)", MitigationParams::default()),
        (
            "universal fast mitigation",
            MitigationParams {
                dps_delay_secs: 45,
                alerting_delay_secs: 45,
                suppression_probability: 0.9,
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut csv = String::from("scenario,telescope,baseline,with_mitigation,lost_share\n");
    for (scenario, params) in scenarios {
        let model = MitigationModel::new(params);
        for (name, tele) in [
            ("UCSD", Telescope::ucsd(&run.plan)),
            ("ORION", Telescope::orion(&run.plan)),
        ] {
            let mut baseline = 0usize;
            let mut mitigated = 0usize;
            for a in run.attacks.iter() {
                if a.class != attackgen::AttackClass::DirectPathSpoofed {
                    continue;
                }
                // The mitigation model rewrites attack fields, so this
                // cold path materializes the row once per DPS attack.
                let a = a.to_attack();
                baseline += tele.observe(&a, &root).is_some() as usize;
                let truncated = model.apply(&a, &run.plan, &root);
                mitigated += tele.observe(&truncated, &root).is_some() as usize;
            }
            let lost = 1.0 - mitigated as f64 / baseline.max(1) as f64;
            csv.push_str(&format!(
                "{scenario},{name},{baseline},{mitigated},{lost:.4}\n"
            ));
            rows.push(vec![
                scenario.to_string(),
                name.to_string(),
                format!("{baseline}"),
                format!("{mitigated}"),
                format!("{:.1}%", 100.0 * lost),
            ]);
        }
    }
    let mut body = String::from(
        "Telescope RSDoS detections with and without industry mitigation truncating\n\
         attack traffic (the §5 interference concern):\n",
    );
    body.push_str(&text_table(
        &["Scenario", "Telescope", "Baseline", "Mitigated", "Visibility lost"],
        &rows,
    ));
    body.push_str(
        "\nProtected targets mitigated inside the first minute stop backscattering\n\
         before Corsaro's 60 s flow minimum — they vanish from telescope view. Today\n\
         only DPS-protected prefixes react that fast (small loss); if every provider\n\
         did, a large share of the telescope's RSDoS picture would silently disappear —\n\
         exactly the §5 worry that better mitigation degrades independent measurement.\n",
    );
    ExperimentResult {
        id: "interference",
        title: "Extension (§5): mitigation interference with telescope visibility".into(),
        body,
        csv: vec![("interference.csv".into(), csv)],
    }
}

/// §2.3 RTBH mechanics: the blackhole announcements behind the IXP's
/// counts, with their self-inflicted costs — reaction latency, late
/// withdrawal (overshoot) and collateral (whole prefixes dropped to
/// protect single addresses).
pub fn rtbh(run: &StudyRun) -> ExperimentResult {
    use flowmon::{blackhole_events, rtbh_stats, RtbhParams};
    // The blackholed population: attacks the IXP actually observed.
    let observed_ids: HashSet<u64> = run
        .observations(ObsId::IxpDp)
        .iter()
        .chain(run.observations(ObsId::IxpRa).iter())
        .map(|o| o.attack_id.0)
        .collect();
    let blackholed_rows: Vec<attackgen::Attack> = run
        .attacks
        .iter()
        .filter(|a| observed_ids.contains(&a.id.0))
        .map(|a| a.to_attack())
        .collect();
    let blackholed: Vec<&attackgen::Attack> = blackholed_rows.iter().collect();
    let root = SimRng::new(run.config.seed).fork_named("observatories");
    let events = blackhole_events(&blackholed, &RtbhParams::default(), &root);
    let accepted = events
        .iter()
        .filter(|e| flowmon::accepted_by_ixp(e, &run.plan))
        .count();
    let mut body;
    let csv;
    // Every event's attack id is in the blackholed subset, so the
    // stats join needs only those rows (missing ids are skipped).
    match rtbh_stats(&events, &blackholed_rows) {
        Some(s) => {
            body = format!(
                "Blackhole events derived from the {} IXP-observed attacks: {}\n\
                 accepted by the IXP (within customer allocations): {}\n\
                 mean blackhole duration: {:.0} s\n\
                 overshoot (blackholed time after the attack ended): {:.1}%\n\
                 mean addresses dropped per event: {:.0} (vs {:.1} actually attacked)\n",
                blackholed.len(),
                s.events,
                accepted,
                s.blackholed_secs as f64 / s.events as f64,
                100.0 * s.overshoot_share,
                s.mean_addresses_dropped,
                s.mean_addresses_attacked,
            );
            body.push_str(
                "\nReading: most blackholed time is self-inflicted post-attack unavailability,\n\
                 and each announcement drops orders of magnitude more addresses than were\n\
                 attacked — the collateral-damage concern of refs [77]/[113] (§2.3).\n",
            );
            csv = format!(
                "metric,value\nevents,{}\naccepted,{}\nblackholed_secs,{}\nattack_overlap_secs,{}\novershoot_share,{:.6}\nmean_addresses_dropped,{:.2}\nmean_addresses_attacked,{:.2}\n",
                s.events,
                accepted,
                s.blackholed_secs,
                s.attack_overlap_secs,
                s.overshoot_share,
                s.mean_addresses_dropped,
                s.mean_addresses_attacked,
            );
        }
        None => {
            body = "no blackhole events (no IXP-observed attacks in this run)\n".into();
            csv = "metric,value\nevents,0\n".into();
        }
    }
    ExperimentResult {
        id: "rtbh",
        title: "Extension (§2.3): RTBH blackholing mechanics and collateral".into(),
        body,
        csv: vec![("rtbh.csv".into(), csv)],
    }
}

/// §6.1 seasonality: H1-vs-H2 asymmetry of every series (the paper's
/// "relative attack counts reached a peak during the first half of the
/// year followed by a valley" for the two-way-traffic observatories).
pub fn seasonality(run: &StudyRun) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut csv = String::from("observatory,h1_mean,h2_mean,h1_over_h2,peak_month\n");
    for id in ObsId::MAIN_TEN {
        let s = run.normalized_series(id);
        let Some(sum) = analytics::seasonal_summary(&s) else {
            continue;
        };
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{}\n",
            id.name(),
            sum.h1_mean,
            sum.h2_mean,
            sum.h1_over_h2,
            sum.peak_month
        ));
        rows.push(vec![
            id.name().to_string(),
            format!("{:.2}", sum.h1_mean),
            format!("{:.2}", sum.h2_mean),
            format!("{:.2}", sum.h1_over_h2),
            format!("{}", sum.peak_month),
        ]);
    }
    let mut body = String::from("Half-year asymmetry of the normalized series (§6.1):\n");
    body.push_str(&text_table(
        &["Observatory", "H1 mean", "H2 mean", "H1/H2", "Peak month"],
        &rows,
    ));
    body.push_str(
        "\nH1/H2 > 1 reproduces the paper's first-half-of-year peaks at the\n\
         two-way-traffic observatories (IXP, Netscout).\n",
    );
    ExperimentResult {
        id: "seasonality",
        title: "Extension (§6.1): first-half-of-year seasonality".into(),
        body,
        csv: vec![("seasonality.csv".into(), csv)],
    }
}

/// §3 L7 growth: several vendors (Cloudflare, F5, Imperva, NBIP,
/// Netscout, NexusGuard, Radware) "reported substantial increases in
/// application-layer (L7) attacks". Measures the HTTP-flood share of
/// Netscout's direct-path alerts over the study.
pub fn l7_growth(run: &StudyRun) -> ExperimentResult {
    use attackgen::attack::AttackVector;
    let is_l7: HashMap<u64, bool> = run
        .attacks
        .iter()
        .map(|a| (a.id.0, a.vector == AttackVector::HttpFlood))
        .collect();
    let mut l7 = vec![0.0; simcore::STUDY_WEEKS];
    let mut other = vec![0.0; simcore::STUDY_WEEKS];
    for o in run.observations(ObsId::NetscoutDp).iter() {
        let w = o.start.week_index();
        if !(0..simcore::STUDY_WEEKS as i64).contains(&w) {
            continue;
        }
        if is_l7.get(&o.attack_id.0).copied().unwrap_or(false) {
            l7[w as usize] += 1.0;
        } else {
            other[w as usize] += 1.0;
        }
    }
    let l7_series = analytics::WeeklySeries::new("L7", l7);
    let other_series = analytics::WeeklySeries::new("other DP", other);
    let share = analytics::share_series(&l7_series, &other_series).ewma(12);
    let mut body = format!(
        "L7 (HTTP-flood) share of Netscout direct-path alerts (smoothed):\n  {}\n",
        crate::render::sparkline(&share.values, 47)
    );
    for year in [2019, 2021, 2022] {
        let lo = simcore::Date::new(year, 1, 1).to_sim_time().week_index().max(0) as usize;
        let hi = (simcore::Date::new(year + 1, 1, 1).to_sim_time().week_index() as usize)
            .min(l7_series.values.len());
        let a: f64 = l7_series.values[lo..hi].iter().sum();
        let b: f64 = other_series.values[lo..hi].iter().sum();
        if a + b > 0.0 {
            body.push_str(&format!("  {year}: L7 {:.1}% of DP alerts\n", 100.0 * a / (a + b)));
        }
    }
    body.push_str(
        "\nThe rising share reproduces the §3 vendor consensus on growing\n\
         application-layer attacks (and §2.1's note that L7 floods are never\n\
         spoofed — they are invisible to telescopes and honeypots alike).\n",
    );
    let csv = crate::render::series_csv(&[l7_series, other_series, share]);
    ExperimentResult {
        id: "l7",
        title: "Extension (§3): application-layer attack growth".into(),
        body,
        csv: vec![("l7_growth.csv".into(), csv)],
    }
}

/// Ground-truth population summary in the §3 metrics taxonomy (count,
/// size, duration, vectors, methods): what an omniscient industry
/// report would have published about the simulated 4.5 years.
pub fn population(run: &StudyRun) -> ExperimentResult {
    use attackgen::AttackClass;
    let percentile = |sorted: &[f64], p: f64| -> f64 {
        if sorted.is_empty() {
            return f64::NAN;
        }
        sorted[((sorted.len() - 1) as f64 * p).round() as usize]
    };
    let mut body = String::new();
    let mut csv = String::from(
        "year,class,count,duration_p50_s,duration_p90_s,pps_p50,pps_p99,carpet_share\n",
    );
    let mut rows = Vec::new();
    for year in 2019..=2023 {
        let lo = simcore::Date::new(year, 1, 1).to_sim_time();
        let hi = simcore::Date::new(year + 1, 1, 1).to_sim_time();
        for (label, pred) in [
            ("DP", AttackClass::is_direct_path as fn(AttackClass) -> bool),
            ("RA", AttackClass::is_reflection as fn(AttackClass) -> bool),
        ] {
            let subset: Vec<attackgen::AttackRef<'_>> = run
                .attacks
                .iter()
                .filter(|a| a.start >= lo && a.start < hi && pred(a.class))
                .collect();
            if subset.is_empty() {
                continue;
            }
            let mut durations: Vec<f64> =
                subset.iter().map(|a| a.duration_secs as f64).collect();
            durations.sort_by(|a, b| a.total_cmp(b));
            let mut pps: Vec<f64> = subset.iter().map(|a| a.pps).collect();
            pps.sort_by(|a, b| a.total_cmp(b));
            let carpet = subset.iter().filter(|a| a.is_carpet_bombing()).count();
            let carpet_share = carpet as f64 / subset.len() as f64;
            csv.push_str(&format!(
                "{year},{label},{},{:.0},{:.0},{:.0},{:.0},{:.4}\n",
                subset.len(),
                percentile(&durations, 0.5),
                percentile(&durations, 0.9),
                percentile(&pps, 0.5),
                percentile(&pps, 0.99),
                carpet_share,
            ));
            rows.push(vec![
                format!("{year}"),
                label.to_string(),
                format!("{}", subset.len()),
                format!("{:.0}s / {:.0}s", percentile(&durations, 0.5), percentile(&durations, 0.9)),
                format!("{:.0} / {:.0}", percentile(&pps, 0.5), percentile(&pps, 0.99)),
                format!("{:.1}%", 100.0 * carpet_share),
            ]);
        }
    }
    body.push_str(&text_table(
        &["Year", "Class", "Count", "Duration p50/p90", "pps p50/p99", "Carpet"],
        &rows,
    ));
    // "Most attacks under 10 min" (§3): verify against the population.
    let short = run
        .attacks
        .iter()
        .filter(|a| a.duration_secs < 600)
        .count();
    body.push_str(&format!(
        "\nAttacks under 10 minutes: {:.1}% (the §3 \"most attacks under 10 min\" claim)\n",
        100.0 * short as f64 / run.attacks.len().max(1) as f64
    ));
    ExperimentResult {
        id: "population",
        title: "Extension (§3 metrics): ground-truth attack population summary".into(),
        body,
        csv: vec![("population.csv".into(), csv)],
    }
}
