//! Table experiments: Table 1 (trend matrix), Table 2 (observatory
//! parameters), Table 3 (report corpus), Table 4 (top targeted ASes).

use super::ExperimentResult;
use crate::pipeline::{ObsId, StudyRun};
use crate::render::text_table;
use analytics::upset;
use flowmon::{IxpConfig, NetscoutConfig};
use honeypot::HoneypotConfig;
use netmodel::Asn;
use reports::table1_industry_counts;
use std::collections::HashMap;
use telescope::RsdosConfig;

/// Table 1: trend symbols per observatory per attack type, plus the
/// industry-report claim counts.
pub fn table1(run: &StudyRun) -> ExperimentResult {
    let dp_ids = [
        ObsId::Ucsd,
        ObsId::Orion,
        ObsId::NetscoutDp,
        ObsId::AkamaiDp,
        ObsId::IxpDp,
    ];
    let ra_ids = [
        ObsId::NetscoutRa,
        ObsId::AkamaiRa,
        ObsId::IxpRa,
        ObsId::Hopscotch,
        ObsId::AmpPot,
        ObsId::NewKid,
    ];
    let trend_row = |ids: &[ObsId]| -> Vec<String> {
        ids.iter()
            .map(|&id| {
                format!(
                    "{} {}",
                    id.name(),
                    run.normalized_series(id).trend().symbol()
                )
            })
            .collect()
    };
    let ((dp_inc, dp_dec), (ra_inc, ra_dec)) = table1_industry_counts();
    let mut body = String::from("Trends 2019-2023 (▲ > +5 % / 4 y, ▼ < -5 %, ◆ steady)\n\n");
    body.push_str("Direct-path observatories:\n  ");
    body.push_str(&trend_row(&dp_ids).join("  "));
    body.push_str(&format!(
        "\n  Industry reports (~2022): ▲({dp_inc}) ▼({dp_dec})\n"
    ));
    body.push_str("Reflection-amplification observatories:\n  ");
    body.push_str(&trend_row(&ra_ids).join("  "));
    body.push_str(&format!(
        "\n  Industry reports (~2022): ▲({ra_inc}) ▼({ra_dec})\n"
    ));
    // Block-bootstrap 95 % intervals on the 4-year change (the paper's
    // regressions come without uncertainty; serial dependence is
    // respected via moving blocks).
    let mut boot_rng = simcore::SimRng::new(run.config.seed).fork_named("table1-bootstrap");
    let mut significant = 0usize;
    let csv_rows: Vec<Vec<String>> = ObsId::MAIN_TEN
        .iter()
        .map(|&id| {
            let s = run.normalized_series(id);
            let reg = s.linear_regression();
            let iv = analytics::trend_interval(&s, 8, 400, &mut boot_rng);
            if iv.map(|i| i.sign_significant()).unwrap_or(false) {
                significant += 1;
            }
            vec![
                id.name().to_string(),
                if id.is_direct_path() { "DP" } else { "RA" }.into(),
                s.trend().symbol().to_string(),
                reg.map(|r| format!("{:.5}", r.slope)).unwrap_or_default(),
                iv.map(|i| format!("{:.4}", i.change_4y)).unwrap_or_default(),
                iv.map(|i| format!("{:.4}", i.lo)).unwrap_or_default(),
                iv.map(|i| format!("{:.4}", i.hi)).unwrap_or_default(),
            ]
        })
        .collect();
    body.push_str(&format!(
        "\nBootstrap check: {significant}/10 trend signs are unambiguous at the 95% level\n(moving-block bootstrap, 400 replicates; intervals in the CSV).\n"
    ));
    let mut csv = String::from(
        "observatory,attack_type,trend,slope_per_week,change_4y,ci_lo,ci_hi\n",
    );
    for row in &csv_rows {
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    ExperimentResult {
        id: "table1",
        title: "Table 1: trend comparison across observatories and industry reports".into(),
        body,
        csv: vec![("table1_trends.csv".into(), csv)],
    }
}

/// Table 2: the observatory parameter table, emitted from the live
/// detector configurations (so the table can never drift from the
/// code).
pub fn table2(run: &StudyRun) -> ExperimentResult {
    let rsdos = RsdosConfig::default();
    let amppot = HoneypotConfig::amppot(&run.plan);
    let hopscotch = HoneypotConfig::hopscotch(&run.plan);
    let newkid = HoneypotConfig::newkid(&run.plan);
    let ixp = IxpConfig::default();
    let netscout = NetscoutConfig::default();

    let rows = vec![
        vec![
            "UCSD NT".into(),
            "telescope".into(),
            "RSDoS".into(),
            format!("{} IPs", run.plan.ucsd.address_count()),
            "protocol, src IP".into(),
            format!("{}s", rsdos.interval_secs),
            format!(
                ">={} pkts, >={}s, >={}/{}s window",
                rsdos.min_packets, rsdos.min_duration_secs, rsdos.rate_threshold, rsdos.rate_window_secs
            ),
        ],
        vec![
            "ORION NT".into(),
            "telescope".into(),
            "RSDoS".into(),
            format!("{} IPs", run.plan.orion.address_count()),
            "protocol, src IP".into(),
            format!("{}s", rsdos.interval_secs),
            format!(
                ">={} pkts, >={}s, >={}/{}s window",
                rsdos.min_packets, rsdos.min_duration_secs, rsdos.rate_threshold, rsdos.rate_window_secs
            ),
        ],
        vec![
            "Netscout Atlas".into(),
            "flow".into(),
            "DP+RA".into(),
            format!("{} customer ASes", run.plan.netscout_customers.len()),
            "per-victim alerts".into(),
            "-".into(),
            format!(">= medium severity ({} pps/target)", netscout.medium_pps),
        ],
        vec![
            "Akamai Prolexic".into(),
            "flow".into(),
            "DP+RA".into(),
            format!("{} protected prefixes", run.plan.akamai_prefix_list.len()),
            "rerouted prefixes".into(),
            "-".into(),
            "attacks on protected space".into(),
        ],
        vec![
            "IXP BH (RA)".into(),
            "flow".into(),
            "RA".into(),
            format!("{} member ASes", run.plan.ixp_members.len()),
            "UDP, ampl. src port".into(),
            "-".into(),
            format!(">={} IPs, >{} Gbps", ixp.min_src_ips, ixp.ra_min_bps / 1e9),
        ],
        vec![
            "IXP BH (DP)".into(),
            "flow".into(),
            "DP".into(),
            format!("{} member ASes", run.plan.ixp_members.len()),
            "TCP".into(),
            "-".into(),
            format!(">={} IPs, >{} Mbps", ixp.min_src_ips, ixp.dp_min_bps / 1e6),
        ],
        vec![
            amppot.name.clone(),
            "honeypot".into(),
            "RA".into(),
            format!("{} of {} IPs", amppot.sensor_count(), amppot.allocated_total),
            "src IP, src port, dst IP, dst port".into(),
            format!("{} min", amppot.timeout_secs / 60),
            format!(">={} pkts", amppot.min_packets),
        ],
        vec![
            hopscotch.name.clone(),
            "honeypot".into(),
            "RA".into(),
            format!("{} IPs", hopscotch.sensor_count()),
            "src IP, dst IP, dst port".into(),
            format!("{} min", hopscotch.timeout_secs / 60),
            format!(">={} pkts", hopscotch.min_packets),
        ],
        vec![
            newkid.name.clone(),
            "honeypot".into(),
            "RA".into(),
            format!("{} IP", newkid.sensor_count()),
            "src prefix, dst IP, [dst port]".into(),
            format!("{} min", newkid.timeout_secs / 60),
            format!(
                ">={} pkts, [>={} ports]",
                newkid.min_packets,
                newkid.multi_port_min.unwrap_or(0)
            ),
        ],
    ];
    let body = text_table(
        &["Platform", "Type", "Attack", "Coverage", "Flow identifier", "Timeout", "Threshold"],
        &rows,
    );
    let mut csv = String::from("platform,type,attack,coverage,flow_identifier,timeout,threshold\n");
    for row in &rows {
        csv.push_str(
            &row.iter()
                .map(|c| c.replace(',', ";"))
                .collect::<Vec<_>>()
                .join(","),
        );
        csv.push('\n');
    }
    ExperimentResult {
        id: "table2",
        title: "Table 2: observatory configurations (from live detector configs)".into(),
        body,
        csv: vec![("table2_observatories.csv".into(), csv)],
    }
}

/// Table 3: the industry report corpus.
pub fn table3(_run: &StudyRun) -> ExperimentResult {
    let corpus = reports::corpus();
    let rows: Vec<Vec<String>> = corpus
        .iter()
        .map(|r| {
            vec![
                r.vendor.name().to_string(),
                format!("{:?}", r.format),
                format!("{} mo", r.period_months),
                if r.ddos_only { "DDoS-only" } else { "broad" }.into(),
                format!("{:?}", r.overall),
                format!("{:?}", r.direct_path),
                format!("{:?}", r.reflection_amplification),
                format!("{:?}", r.application_layer),
            ]
        })
        .collect();
    let body = text_table(
        &["Vendor", "Format", "Period", "Scope", "Overall", "DP", "RA", "L7"],
        &rows,
    );
    let mut csv = String::from("vendor,format,period_months,ddos_only,overall,dp,ra,l7\n");
    for r in &corpus {
        csv.push_str(&format!(
            "{},{:?},{},{},{:?},{:?},{:?},{:?}\n",
            r.vendor.name(),
            r.format,
            r.period_months,
            r.ddos_only,
            r.overall,
            r.direct_path,
            r.reflection_amplification,
            r.application_layer
        ));
    }
    ExperimentResult {
        id: "table3",
        title: format!("Table 3: {} surveyed industry reports", corpus.len()),
        body,
        csv: vec![
            ("table3_reports.csv".into(), csv),
            // The community-extendable knowledge-base artifact (ref [13]).
            ("knowledge_base.md".into(), reports::knowledge_base_markdown()),
            // The Appendix-C related-work taxonomy (the paper's second
            // published artifact).
            ("related_work_taxonomy.txt".into(), reports::render_mindmap()),
        ],
    }
}

/// Table 4: top-10 ASes by number of highly-visible targets (tuples
/// seen by all four academic observatories).
pub fn table4(run: &StudyRun) -> ExperimentResult {
    let sets: Vec<(String, Vec<analytics::TargetTuple>)> = ObsId::ACADEMIC
        .iter()
        .map(|&id| (id.name().to_string(), run.target_tuples(id).to_vec()))
        .collect();
    let analysis = upset(&sets);
    // Recover the all-four tuples and attribute them to ASes.
    let mut membership: HashMap<analytics::TargetTuple, u16> = HashMap::new();
    for (i, (_, tuples)) in sets.iter().enumerate() {
        for &t in tuples {
            *membership.entry(t).or_insert(0) |= 1 << i;
        }
    }
    let full = analysis.full_mask();
    let mut per_asn: HashMap<Asn, usize> = HashMap::new();
    let mut total = 0usize;
    for (&(_, ip), &mask) in &membership {
        if mask == full {
            if let Some(asn) = run.plan.asn_of(ip) {
                *per_asn.entry(asn).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    let mut ranked: Vec<(Asn, usize)> = per_asn.into_iter().collect();
    ranked.sort_by_key(|&(asn, n)| (std::cmp::Reverse(n), asn));
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(10)
        .enumerate()
        .map(|(i, &(asn, n))| {
            let rec = run.plan.registry.get(asn);
            vec![
                format!("{}", i + 1),
                rec.map(|r| r.name.clone()).unwrap_or_else(|| "?".into()),
                asn.to_string(),
                format!("{n}"),
                format!("{:.2}%", 100.0 * n as f64 / total.max(1) as f64),
            ]
        })
        .collect();
    let mut body = text_table(&["Rank", "Provider", "ASN", "Tuples", "Share"], &rows);
    // §7.1 concentration: how unevenly the highly-visible targets
    // distribute over ASes (hosters dominate).
    let counts: Vec<u64> = ranked.iter().map(|&(_, n)| n as u64).collect();
    if let Some(c) = analytics::concentration(&counts) {
        let hosters = ranked
            .iter()
            .take(10)
            .filter(|&&(asn, _)| {
                run.plan.registry.get(asn).map(|r| r.kind) == Some(netmodel::AsKind::Hoster)
            })
            .count();
        body.push_str(&format!(
            "\nConcentration across {} targeted ASes: Gini {:.2}, top-1 {:.1}%, top-10 {:.1}%; {} of the top 10 are hosters\n",
            c.n,
            c.gini,
            100.0 * c.top1_share,
            100.0 * c.top10_share,
            hosters
        ));
    }
    let mut csv = String::from("rank,provider,asn,tuples,share\n");
    for row in &rows {
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    ExperimentResult {
        id: "table4",
        title: format!("Table 4: top ASes among {total} highly-visible targets"),
        body,
        csv: vec![("table4_top_ases.csv".into(), csv)],
    }
}
