//! Target-analysis experiments (§7): Fig. 7 (UpSet), Fig. 8
//! (highly-visible targets over time), Fig. 9/13 (industry confirmation
//! joins), Fig. 10 (overlap time series), and the §7 scalar statistics.

use super::ExperimentResult;
use crate::pipeline::{ObsId, StudyRun};
use crate::render::{series_csv, sparkline, text_table};
use analytics::{
    confirmation_shares, ip_overlap_share, new_vs_recurring, upset, weekly_overlap,
    TargetTuple, UpsetAnalysis, WeeklySeries,
};
use std::collections::HashMap;

fn academic_sets(run: &StudyRun) -> Vec<(String, Vec<TargetTuple>)> {
    ObsId::ACADEMIC
        .iter()
        .map(|&id| (id.name().to_string(), run.target_tuples(id).to_vec()))
        .collect()
}

/// Fig. 7: UpSet decomposition of (date, IP) targets across the four
/// academic observatories.
pub fn fig7(run: &StudyRun) -> ExperimentResult {
    let sets = academic_sets(run);
    let u = upset(&sets);
    let mut body = format!(
        "Distinct targets: {} tuples over {} IP addresses\n\nSet sizes (non-exclusive):\n",
        u.total_distinct, u.distinct_ips
    );
    for (i, name) in u.names.iter().enumerate() {
        body.push_str(&format!(
            "  {:10} {:8} ({:.1}% of all targets)\n",
            name,
            u.set_sizes[i],
            100.0 * u.set_sizes[i] as f64 / u.total_distinct.max(1) as f64
        ));
    }
    body.push_str("\nExclusive intersections (UpSet bars):\n");
    let mut masks: Vec<(u16, usize)> = u.exclusive.iter().map(|(&m, &c)| (m, c)).collect();
    masks.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let mut csv = String::from("combination,mask,count,share\n");
    for (mask, count) in masks {
        let label = u.mask_label(mask);
        body.push_str(&format!(
            "  {:30} {:8} ({:.2}%)\n",
            label,
            count,
            100.0 * u.share(mask)
        ));
        csv.push_str(&format!(
            "{},{:04b},{},{:.6}\n",
            label,
            mask,
            count,
            u.share(mask)
        ));
    }
    body.push_str(&format!(
        "\nSeen by all four observatories: {:.2}% | ORION targets also in UCSD: {:.1}% | AmpPot targets shared with Hopscotch: {:.1}%\n",
        100.0 * u.at_least(u.full_mask()) as f64 / u.total_distinct.max(1) as f64,
        100.0 * u.overlap_share(orion_idx(&u), ucsd_idx(&u)),
        100.0 * u.overlap_share(amppot_idx(&u), hopscotch_idx(&u)),
    ));
    ExperimentResult {
        id: "fig7",
        title: "Figure 7: UpSet of academic target sets".into(),
        body,
        csv: vec![("fig7_upset.csv".into(), csv)],
    }
}

fn idx_of(u: &UpsetAnalysis, name: &str) -> usize {
    u.names.iter().position(|n| n == name).expect("set present")
}
fn orion_idx(u: &UpsetAnalysis) -> usize {
    idx_of(u, "ORION")
}
fn ucsd_idx(u: &UpsetAnalysis) -> usize {
    idx_of(u, "UCSD")
}
fn amppot_idx(u: &UpsetAnalysis) -> usize {
    idx_of(u, "AmpPot")
}
fn hopscotch_idx(u: &UpsetAnalysis) -> usize {
    idx_of(u, "Hopscotch")
}

/// The (day, ip) tuples seen by every academic observatory.
fn all_four_tuples(run: &StudyRun) -> Vec<TargetTuple> {
    let sets = academic_sets(run);
    let mut membership: HashMap<TargetTuple, u16> = HashMap::new();
    for (i, (_, tuples)) in sets.iter().enumerate() {
        for &t in tuples {
            *membership.entry(t).or_insert(0) |= 1 << i;
        }
    }
    let full = (1u16 << sets.len()) - 1;
    membership
        .into_iter()
        .filter(|&(_, m)| m == full)
        .map(|(t, _)| t)
        .collect()
}

/// Fig. 8: weekly highly-visible targets split into new vs recurring
/// IPs, plus the cumulative-new-target CDF.
pub fn fig8(run: &StudyRun) -> ExperimentResult {
    let tuples = all_four_tuples(run);
    let nr = new_vs_recurring(&tuples);
    let new_s = WeeklySeries::new("new targets", nr.new_targets.clone());
    let rec_s = WeeklySeries::new("recurring targets", nr.recurring_targets.clone());
    let cdf_s = WeeklySeries::new("CDF", nr.cdf.clone());
    let body = format!(
        "Highly-visible targets (seen at all four academic observatories): {} tuples\n\nnew:       {}\nrecurring: {}\nCDF:       {}\n",
        tuples.len(),
        sparkline(&nr.new_targets, 47),
        sparkline(&nr.recurring_targets, 47),
        sparkline(&nr.cdf, 47),
    );
    ExperimentResult {
        id: "fig8",
        title: "Figure 8: highly-visible targets over time".into(),
        body,
        csv: vec![(
            "fig8_highly_visible.csv".into(),
            series_csv(&[new_s, rec_s, cdf_s]),
        )],
    }
}

fn confirmation_body(
    sets: &[(String, Vec<TargetTuple>)],
    industry: &[TargetTuple],
    industry_name: &str,
) -> (String, String) {
    let c = confirmation_shares(sets, industry);
    let mut rows = Vec::new();
    let mut csv = String::from("subset,size,confirmed_share\n");
    let label = |mask: u16| -> String {
        sets.iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, (n, _))| n.as_str())
            .collect::<Vec<_>>()
            .join("+")
    };
    let mut sorted = c.rows.clone();
    sorted.sort_by_key(|&(mask, _, _)| (mask.count_ones(), mask));
    for (mask, size, share) in sorted {
        rows.push(vec![
            label(mask),
            format!("{size}"),
            format!("{:.2}%", 100.0 * share),
        ]);
        csv.push_str(&format!("{},{},{:.6}\n", label(mask), size, share));
    }
    let mut body = format!("Share of academic targets confirmed by {industry_name}:\n");
    body.push_str(&text_table(&["Subset (exclusive)", "Targets", "Confirmed"], &rows));
    body.push_str(&format!(
        "\nReverse view — {industry_name} targets seen by academia:\n"
    ));
    for (i, (name, _)) in sets.iter().enumerate() {
        body.push_str(&format!(
            "  {:10} {:.1}%\n",
            name,
            100.0 * c.industry_seen_by[i]
        ));
    }
    body.push_str(&format!(
        "  union      {:.1}%\n",
        100.0 * c.industry_seen_by_union
    ));
    (body, csv)
}

/// Fig. 9: Netscout baseline confirmation of academic target subsets.
pub fn fig9(run: &StudyRun) -> ExperimentResult {
    let sets = academic_sets(run);
    let baseline = run.netscout_baseline_tuples();
    let (body, csv) = confirmation_body(&sets, &baseline, "Netscout (baseline sample)");
    ExperimentResult {
        id: "fig9",
        title: "Figure 9: Netscout confirmation of academic targets".into(),
        body,
        csv: vec![("fig9_netscout_confirmation.csv".into(), csv)],
    }
}

/// Fig. 13 (Appendix G): the same join against the Akamai target set.
pub fn fig13(run: &StudyRun) -> ExperimentResult {
    let sets = academic_sets(run);
    let akamai = run.akamai_tuples();
    let (body, csv) = confirmation_body(&sets, &akamai, "Akamai");
    ExperimentResult {
        id: "fig13",
        title: "Figure 13 (App. G): Akamai confirmation of academic targets".into(),
        body,
        csv: vec![("fig13_akamai_confirmation.csv".into(), csv)],
    }
}

/// Fig. 10: weekly target overlap within observatory types.
pub fn fig10(run: &StudyRun) -> ExperimentResult {
    let orion = run.target_tuples(ObsId::Orion);
    let ucsd = run.target_tuples(ObsId::Ucsd);
    let hops = run.target_tuples(ObsId::Hopscotch);
    let amppot = run.target_tuples(ObsId::AmpPot);
    let tel = weekly_overlap(&ucsd, &orion);
    let hp = weekly_overlap(&hops, &amppot);
    let body = format!(
        "(a) Telescopes — weekly targets\n  UCSD:    {}\n  ORION:   {}\n  shared:  {}\n\n(b) Honeypots — weekly targets\n  Hopscotch: {}\n  AmpPot:    {}\n  shared:    {}\n",
        sparkline(&tel.a, 47),
        sparkline(&tel.b, 47),
        sparkline(&tel.shared, 47),
        sparkline(&hp.a, 47),
        sparkline(&hp.b, 47),
        sparkline(&hp.shared, 47),
    );
    let tel_csv = series_csv(&[
        WeeklySeries::new("UCSD", tel.a),
        WeeklySeries::new("ORION", tel.b),
        WeeklySeries::new("shared", tel.shared),
    ]);
    let hp_csv = series_csv(&[
        WeeklySeries::new("Hopscotch", hp.a),
        WeeklySeries::new("AmpPot", hp.b),
        WeeklySeries::new("shared", hp.shared),
    ]);
    ExperimentResult {
        id: "fig10",
        title: "Figure 10: weekly target overlap (telescopes / honeypots)".into(),
        body,
        csv: vec![
            ("fig10a_telescopes.csv".into(), tel_csv),
            ("fig10b_honeypots.csv".into(), hp_csv),
        ],
    }
}

/// §7 scalar statistics: distinct targets / IPs, multi-type share,
/// all-four share, and the Jonker-style AmpPot↔UCSD IP overlap.
pub fn stats7(run: &StudyRun) -> ExperimentResult {
    let sets = academic_sets(run);
    let u = upset(&sets);
    // Multi-type targets: tuples seen by at least one telescope AND at
    // least one honeypot (the two attack classes).
    let mut membership: HashMap<TargetTuple, u16> = HashMap::new();
    for (i, (_, tuples)) in sets.iter().enumerate() {
        for &t in tuples {
            *membership.entry(t).or_insert(0) |= 1 << i;
        }
    }
    let tel_mask: u16 = (1 << orion_idx(&u)) | (1 << ucsd_idx(&u));
    let hp_mask: u16 = (1 << hopscotch_idx(&u)) | (1 << amppot_idx(&u));
    let multi_type = membership
        .values()
        .filter(|&&m| m & tel_mask != 0 && m & hp_mask != 0)
        .count();
    let all_four = u.at_least(u.full_mask());
    let amppot_tuples = &sets[amppot_idx(&u)].1;
    let ucsd_tuples = &sets[ucsd_idx(&u)].1;
    let jonker = ip_overlap_share(amppot_tuples, ucsd_tuples);

    let total = u.total_distinct.max(1);
    let body = format!(
        "Distinct (date, IP) targets: {}\nDistinct IP addresses: {}\nMulti-type targets (telescope AND honeypot): {} ({:.2}%)\nSeen at all four observatories: {} ({:.2}%)\nAmpPot/UCSD distinct-IP overlap (Jonker-style, §7.1): {:.2}%\n",
        u.total_distinct,
        u.distinct_ips,
        multi_type,
        100.0 * multi_type as f64 / total as f64,
        all_four,
        100.0 * all_four as f64 / total as f64,
        100.0 * jonker,
    );
    let csv = format!(
        "metric,value\ndistinct_tuples,{}\ndistinct_ips,{}\nmulti_type,{}\nmulti_type_share,{:.6}\nall_four,{}\nall_four_share,{:.6}\njonker_ip_overlap,{:.6}\n",
        u.total_distinct,
        u.distinct_ips,
        multi_type,
        multi_type as f64 / total as f64,
        all_four,
        all_four as f64 / total as f64,
        jonker,
    );
    ExperimentResult {
        id: "stats7",
        title: "Section 7 scalar statistics".into(),
        body,
        csv: vec![("stats7.csv".into(), csv)],
    }
}
