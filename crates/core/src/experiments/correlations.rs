//! Correlation experiments: Fig. 6 (Spearman matrices with p-values,
//! Pearson cross-check) and Fig. 14 (quarterly pairwise boxes).

use super::ExperimentResult;
use crate::pipeline::{ObsId, StudyRun};
use crate::render::{fmt_corr, text_table};
use analytics::{
    box_stats, correlation_matrix, quarterly_correlations, CorrelationMatrix, Method,
    WeeklySeries,
};

fn matrix_block(m: &CorrelationMatrix) -> String {
    let short: Vec<String> = m
        .names
        .iter()
        .map(|n| {
            n.replace("Netscout", "NS")
                .replace("Akamai", "AK")
                .replace("Hopscotch", "Hops")
        })
        .collect();
    let mut headers: Vec<&str> = vec![""];
    headers.extend(short.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = (0..m.names.len())
        .map(|i| {
            let mut row = vec![short[i].clone()];
            for j in 0..m.names.len() {
                row.push(fmt_corr(m.get(i, j)));
            }
            row
        })
        .collect();
    text_table(&headers, &rows)
}

fn matrix_csv(m: &CorrelationMatrix) -> String {
    let mut out = String::from("a,b,rho,p_value,n\n");
    for i in 0..m.names.len() {
        for j in 0..m.names.len() {
            if let Some(c) = m.get(i, j) {
                out.push_str(&format!(
                    "{},{},{:.4},{:.6},{}\n",
                    m.names[i], m.names[j], c.rho, c.p_value, c.n
                ));
            }
        }
    }
    out
}

/// Fig. 6: Spearman correlation matrices over the ten series, raw and
/// EWMA-smoothed, with insignificant (p > 0.05) coefficients bracketed;
/// plus the Pearson cross-check (§6.3).
pub fn fig6(run: &StudyRun) -> ExperimentResult {
    let raw = run.all_ten_normalized();
    let smoothed: Vec<WeeklySeries> = raw.iter().map(|s| s.ewma(12)).collect();
    let spearman_raw = correlation_matrix(&raw, Method::Spearman);
    let spearman_ewma = correlation_matrix(&smoothed, Method::Spearman);
    let pearson_raw = correlation_matrix(&raw, Method::Pearson);

    let mut body = String::from("Spearman (normalized weekly counts), [x] = p > 0.05:\n");
    body.push_str(&matrix_block(&spearman_raw));
    body.push_str("\nSpearman (EWMA):\n");
    body.push_str(&matrix_block(&spearman_ewma));
    body.push_str("\nPearson cross-check (normalized):\n");
    body.push_str(&matrix_block(&pearson_raw));

    // Same-type vs cross-type summary (the paper's headline reading).
    let mean_group = |m: &CorrelationMatrix, same: bool| -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for i in 0..10 {
            for j in (i + 1)..10 {
                let same_type =
                    ObsId::MAIN_TEN[i].is_direct_path() == ObsId::MAIN_TEN[j].is_direct_path();
                if same_type == same {
                    if let Some(c) = m.get(i, j) {
                        acc += c.rho;
                        n += 1;
                    }
                }
            }
        }
        acc / n.max(1) as f64
    };
    let same = mean_group(&spearman_raw, true);
    let cross = mean_group(&spearman_raw, false);
    body.push_str(&format!(
        "\nMean pairwise Spearman: same attack type {same:+.2}, cross-type {cross:+.2}\n"
    ));

    ExperimentResult {
        id: "fig6",
        title: "Figure 6: Spearman correlation matrices with p-values".into(),
        body,
        csv: vec![
            ("fig6_spearman_raw.csv".into(), matrix_csv(&spearman_raw)),
            ("fig6_spearman_ewma.csv".into(), matrix_csv(&spearman_ewma)),
            ("fig6_pearson_raw.csv".into(), matrix_csv(&pearson_raw)),
        ],
    }
}

/// Fig. 14 (Appendix F): quarterly pairwise Spearman correlations as
/// box statistics over the study's 18 quarters.
pub fn fig14(run: &StudyRun) -> ExperimentResult {
    let series = run.all_ten_normalized();
    let mut rows = Vec::new();
    let mut csv = String::from("a,b,min,q1,median,mean,q3,max,quarters\n");
    for i in 0..series.len() {
        for j in (i + 1)..series.len() {
            let qs = quarterly_correlations(&series[i], &series[j]);
            if let Some(b) = box_stats(&qs) {
                rows.push(vec![
                    format!("{} & {}", series[i].name, series[j].name),
                    format!("{:+.2}", b.min),
                    format!("{:+.2}", b.q1),
                    format!("{:+.2}", b.median),
                    format!("{:+.2}", b.mean),
                    format!("{:+.2}", b.q3),
                    format!("{:+.2}", b.max),
                    format!("{}", b.n),
                ]);
                csv.push_str(&format!(
                    "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
                    series[i].name, series[j].name, b.min, b.q1, b.median, b.mean, b.q3, b.max, b.n
                ));
            }
        }
    }
    let body = text_table(
        &["Pair", "min", "q1", "med", "mean", "q3", "max", "#q"],
        &rows,
    );
    ExperimentResult {
        id: "fig14",
        title: "Figure 14 (App. F): quarterly pairwise Spearman correlation boxes".into(),
        body,
        csv: vec![("fig14_quarterly_boxes.csv".into(), csv)],
    }
}
