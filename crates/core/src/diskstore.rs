//! Persistent content-addressed stage store (DESIGN.md §11).
//!
//! A disk tier under the in-memory [`crate::StageCache`]: each stage
//! output — the Internet plan, the columnar attack stream, the eleven
//! observation streams, and the raw Netscout alert stream — is
//! serialized through the hand-rolled wire codecs (`netmodel::wire`,
//! `attackgen::wire`) into one *cell* file at
//! `<dir>/<stage>/<fingerprint>`, keyed by the same chained
//! fingerprints the memory cache uses. Repeated CLI invocations and
//! cross-process sweeps therefore share warm stages: a second process
//! loads the plan and attack stream from disk instead of recomputing
//! them.
//!
//! **Integrity contract:** a load is served only if the cell passes
//! every header check (magic, version, payload kind, length) *and* its
//! word-folded FNV-1a payload checksum *and* wire decoding. Any failure —
//! truncation, byte flip, version skew, a structurally lying payload —
//! is rejected with a `warn!`, counted as `stage.<name>.disk_reject`,
//! and answered with `None`: the caller recomputes and rewrites the
//! cell. Corruption can cost time, never correctness.
//!
//! **Crash consistency:** cells are written to a same-directory
//! temporary sibling and atomically renamed into place, so a reader
//! never observes a torn cell — it sees the old bytes, the new bytes,
//! or no file. The same discipline covers the run-history store
//! (`obs::store`).
//!
//! Telemetry lands in the global `obs` registry as
//! `stage.<plan|attacks|observations>.disk_{hit,miss,write,reject}`
//! and therefore in every run manifest. Loads deliberately do *not*
//! advance `stage.<name>.computed` — that counter means "stage
//! executions", and a disk load is precisely the absence of one.

use crate::scenario::StudyConfig;
use crate::stagecache::Stage;
use attackgen::{AttackColumns, ObservationColumns};
use flowmon::AlertColumns;
use netmodel::InternetPlan;
use obs::metrics::Counter;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Environment variable enabling the disk store when
/// [`StudyConfig::disk_store`] is `None`: a directory path enables it
/// there; empty or `off` disables.
pub const STORE_ENV: &str = "DDOSCOVERY_STORE";

/// Default store directory the CLI's bare `--store` flag resolves to,
/// relative to the working directory.
pub const DEFAULT_STORE_DIR: &str = ".ddoscovery/store";

/// Magic bytes opening every cell file.
pub const CELL_MAGIC: [u8; 4] = *b"DDSC";

/// Cell format version. Bumped on any wire-codec change; cells of
/// another version are rejected (recompute-and-rewrite), never
/// migrated in place.
pub const CELL_VERSION: u16 = 1;

/// Fixed header: magic (4) + version u16 + payload kind u8 +
/// payload length u64 + word-folded FNV-1a payload checksum u64 (see
/// [`cell_checksum`]), all little-endian.
pub const CELL_HEADER_LEN: usize = 4 + 2 + 1 + 8 + 8;

/// Payload checksum: FNV-1a folded over little-endian u64 words —
/// the standard offset basis is first bound to the payload length,
/// then each 8-byte word (tail zero-padded) goes through the usual
/// xor-then-multiply round. Identical mixing to byte-wise FNV-1a with
/// one round per word instead of eight, which matters on multi-MB
/// attack cells: the checksum runs on every load, and verifying a
/// cell must stay far cheaper than recomputing the stage. Binding the
/// length first keeps zero-padded tails of different lengths distinct.
fn cell_checksum(payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let round = |h: u64, word: u64| (h ^ word).wrapping_mul(PRIME);
    let mut h = round(OFFSET, payload.len() as u64);
    let mut words = payload.chunks_exact(8);
    for w in &mut words {
        h = round(h, u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = round(h, u64::from_le_bytes(tail));
    }
    h
}

/// Payload kind tags (header byte 6). Observation streams and the
/// Netscout alert stream share a stage directory but carry distinct
/// kinds, so a key collision across kinds can never type-confuse a
/// load.
const TAG_PLAN: u8 = 0;
const TAG_ATTACKS: u8 = 1;
const TAG_OBSERVATIONS: u8 = 2;
const TAG_ALERTS: u8 = 3;

/// Resolve the effective store directory for a config: the config
/// knob wins, then [`STORE_ENV`], then off. An empty or `off` value
/// disables the store at either level (so a config can force the
/// store off in a process whose environment enables it).
pub fn resolve_dir(config: &StudyConfig) -> Option<PathBuf> {
    if let Some(dir) = &config.disk_store {
        return enabled_dir(dir);
    }
    if let Ok(dir) = std::env::var(STORE_ENV) {
        return enabled_dir(&dir);
    }
    None
}

/// The disk store a run should use, if any. See [`resolve_dir`] for
/// the precedence.
pub fn resolve(config: &StudyConfig) -> Option<DiskStore> {
    resolve_dir(config).map(DiskStore::open)
}

fn enabled_dir(dir: &str) -> Option<PathBuf> {
    let dir = dir.trim();
    if dir.is_empty() || dir.eq_ignore_ascii_case("off") {
        None
    } else {
        Some(PathBuf::from(dir))
    }
}

const STAGES: [Stage; 3] = [Stage::Plan, Stage::Attacks, Stage::Observations];

const fn idx(stage: Stage) -> usize {
    match stage {
        Stage::Plan => 0,
        Stage::Attacks => 1,
        Stage::Observations => 2,
    }
}

/// Frame a payload into cell bytes: header (see [`CELL_HEADER_LEN`])
/// followed by the payload verbatim.
fn encode_cell(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CELL_HEADER_LEN + payload.len());
    out.extend_from_slice(&CELL_MAGIC);
    out.extend_from_slice(&CELL_VERSION.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&cell_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate cell bytes against the expected payload kind. Returns the
/// payload slice, or a description of the first violated check.
fn check_cell(bytes: &[u8], tag: u8) -> Result<&[u8], String> {
    if bytes.len() < CELL_HEADER_LEN {
        return Err(format!(
            "truncated header: {} bytes, need {CELL_HEADER_LEN}",
            bytes.len()
        ));
    }
    if bytes[..4] != CELL_MAGIC {
        return Err(format!("bad magic {:02x?}", &bytes[..4]));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != CELL_VERSION {
        return Err(format!("version {version}, expected {CELL_VERSION}"));
    }
    if bytes[6] != tag {
        return Err(format!("payload kind {}, expected {tag}", bytes[6]));
    }
    let len = u64::from_le_bytes(
        bytes[7..15].try_into().expect("8-byte slice of a checked header"),
    );
    let payload = &bytes[CELL_HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(format!(
            "payload length {} does not match header {len}",
            payload.len()
        ));
    }
    let checksum = u64::from_le_bytes(
        bytes[15..23].try_into().expect("8-byte slice of a checked header"),
    );
    let actual = cell_checksum(payload);
    if checksum != actual {
        return Err(format!("checksum {actual:016x}, header says {checksum:016x}"));
    }
    Ok(payload)
}

/// Handle on one store directory, with per-stage telemetry counters.
/// Opening never touches the filesystem — directories are created
/// lazily on the first write, and a missing directory just means every
/// load misses.
pub struct DiskStore {
    dir: PathBuf,
    hit: [Arc<Counter>; 3],
    miss: [Arc<Counter>; 3],
    write: [Arc<Counter>; 3],
    reject: [Arc<Counter>; 3],
}

/// One cell on disk, as surfaced by [`DiskStore::list`].
#[derive(Debug, Clone)]
pub struct CellInfo {
    /// Stage directory name (`plan` / `attacks` / `observations`).
    pub stage: String,
    /// Cell file name: the stage fingerprint as 16 hex digits.
    pub key: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Modification time in whole seconds since the Unix epoch (0 when
    /// the filesystem cannot say) — the LRU axis of [`DiskStore::gc`].
    pub mtime_secs: u64,
    /// Full path, for removal.
    pub path: PathBuf,
}

/// What [`DiskStore::gc`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Cells removed (oldest first).
    pub removed: usize,
    /// Bytes those cells occupied.
    pub freed_bytes: u64,
    /// Cells surviving.
    pub kept: usize,
    /// Bytes they occupy.
    pub kept_bytes: u64,
}

impl DiskStore {
    /// A store rooted at `dir`. Registers the twelve
    /// `stage.<name>.disk_*` counters so they appear (as zeros) in
    /// every manifest of a store-enabled run.
    pub fn open(dir: PathBuf) -> DiskStore {
        let handle = |kind: &str| {
            STAGES.map(|s| obs::metrics::counter(&format!("stage.{}.disk_{kind}", s.name())))
        };
        DiskStore {
            dir,
            hit: handle("hit"),
            miss: handle("miss"),
            write: handle("write"),
            reject: handle("reject"),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cell_path(&self, stage: Stage, key: u64) -> PathBuf {
        self.dir.join(stage.name()).join(format!("{key:016x}"))
    }

    /// Read and header-validate one cell. `None` is either a clean
    /// miss (no file, counted `disk_miss`) or a rejection (anything
    /// else, counted `disk_reject` and warned).
    fn load_cell(&self, stage: Stage, tag: u8, key: u64) -> Option<Vec<u8>> {
        let path = self.cell_path(stage, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.miss[idx(stage)].inc();
                return None;
            }
            Err(e) => {
                obs::warn!("disk store: reading {} failed: {e}; recomputing", path.display());
                self.reject[idx(stage)].inc();
                return None;
            }
        };
        match check_cell(&bytes, tag) {
            Ok(_) => Some(bytes),
            Err(why) => {
                obs::warn!("disk store: rejecting {}: {why}; recomputing", path.display());
                self.reject[idx(stage)].inc();
                None
            }
        }
    }

    /// A checksum-valid cell whose payload fails wire decoding is a
    /// rejection too (codec skew within one format version).
    fn reject_payload(&self, stage: Stage, key: u64, why: &str) {
        let path = self.cell_path(stage, key);
        obs::warn!("disk store: rejecting {}: payload: {why}; recomputing", path.display());
        self.reject[idx(stage)].inc();
    }

    /// Frame `payload` and write it as the cell for (`stage`, `key`):
    /// to a same-directory temporary sibling first, then atomically
    /// renamed into place, so concurrent readers and crashes never see
    /// a torn cell. IO errors warn and drop the write — the store is a
    /// cache, not a system of record.
    fn store_cell(&self, stage: Stage, tag: u8, key: u64, payload: &[u8]) {
        let path = self.cell_path(stage, key);
        let Some(parent) = path.parent() else { return };
        if let Err(e) = fs::create_dir_all(parent) {
            obs::warn!("disk store: creating {} failed: {e}", parent.display());
            return;
        }
        let bytes = encode_cell(tag, payload);
        let tmp = parent.join(format!(".{key:016x}.tmp.{}", std::process::id()));
        // Transient faults (EINTR and friends) get a bounded retry; a
        // persistent error still only warns and drops the write.
        let wrote = obs::retry::with_backoff("disk-store write", 3, obs::retry::is_transient, |_| {
            fs::write(&tmp, &bytes)
        });
        if let Err(e) = wrote {
            obs::warn!("disk store: writing {} failed: {e}", tmp.display());
            let _ = fs::remove_file(&tmp);
            return;
        }
        let published =
            obs::retry::with_backoff("disk-store publish", 3, obs::retry::is_transient, |_| {
                fs::rename(&tmp, &path)
            });
        match published {
            Ok(()) => self.write[idx(stage)].inc(),
            Err(e) => {
                obs::warn!("disk store: publishing {} failed: {e}", path.display());
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// The stored Internet plan for `key`, if present and intact.
    pub fn load_plan(&self, key: u64) -> Option<Arc<InternetPlan>> {
        let bytes = self.load_cell(Stage::Plan, TAG_PLAN, key)?;
        match InternetPlan::from_wire_bytes(&bytes[CELL_HEADER_LEN..]) {
            Ok(p) => {
                self.hit[idx(Stage::Plan)].inc();
                Some(Arc::new(p))
            }
            Err(why) => {
                self.reject_payload(Stage::Plan, key, &why);
                None
            }
        }
    }

    /// Persist a freshly built Internet plan.
    pub fn store_plan(&self, key: u64, plan: &InternetPlan) {
        self.store_cell(Stage::Plan, TAG_PLAN, key, &plan.to_wire_bytes());
    }

    /// The stored attack stream for `key`, if present and intact.
    pub fn load_attacks(&self, key: u64) -> Option<Arc<AttackColumns>> {
        let bytes = self.load_cell(Stage::Attacks, TAG_ATTACKS, key)?;
        match AttackColumns::from_wire_bytes(&bytes[CELL_HEADER_LEN..]) {
            Ok(a) => {
                self.hit[idx(Stage::Attacks)].inc();
                Some(Arc::new(a))
            }
            Err(why) => {
                self.reject_payload(Stage::Attacks, key, &why);
                None
            }
        }
    }

    /// Persist a freshly generated attack stream.
    pub fn store_attacks(&self, key: u64, attacks: &AttackColumns) {
        self.store_cell(Stage::Attacks, TAG_ATTACKS, key, &attacks.to_wire_bytes());
    }

    /// The stored observation stream for `key`, if present and intact.
    pub fn load_observations(&self, key: u64) -> Option<Arc<ObservationColumns>> {
        let bytes = self.load_cell(Stage::Observations, TAG_OBSERVATIONS, key)?;
        match ObservationColumns::from_wire_bytes(&bytes[CELL_HEADER_LEN..]) {
            Ok(v) => {
                self.hit[idx(Stage::Observations)].inc();
                Some(Arc::new(v))
            }
            Err(why) => {
                self.reject_payload(Stage::Observations, key, &why);
                None
            }
        }
    }

    /// Persist a freshly observed stream.
    pub fn store_observations(&self, key: u64, v: &ObservationColumns) {
        self.store_cell(Stage::Observations, TAG_OBSERVATIONS, key, &v.to_wire_bytes());
    }

    /// The stored Netscout alert stream for `key`, if present and
    /// intact.
    pub fn load_alerts(&self, key: u64) -> Option<Arc<AlertColumns>> {
        let bytes = self.load_cell(Stage::Observations, TAG_ALERTS, key)?;
        match AlertColumns::from_wire_bytes(&bytes[CELL_HEADER_LEN..]) {
            Ok(v) => {
                self.hit[idx(Stage::Observations)].inc();
                Some(Arc::new(v))
            }
            Err(why) => {
                self.reject_payload(Stage::Observations, key, &why);
                None
            }
        }
    }

    /// Persist a freshly computed Netscout alert stream.
    pub fn store_alerts(&self, key: u64, v: &AlertColumns) {
        self.store_cell(Stage::Observations, TAG_ALERTS, key, &v.to_wire_bytes());
    }

    /// Every cell currently on disk, sorted by stage then key.
    /// In-flight temporaries (dotfiles) are skipped; unreadable
    /// entries are silently dropped — `gc` and `list` must work on a
    /// store another process is writing to.
    pub fn list(&self) -> Vec<CellInfo> {
        let mut cells = Vec::new();
        for stage in STAGES {
            let dir = self.dir.join(stage.name());
            let Ok(entries) = fs::read_dir(&dir) else { continue };
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(key) = name.to_str() else { continue };
                if key.starts_with('.') {
                    continue;
                }
                let Ok(meta) = entry.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                let mtime_secs = meta
                    .modified()
                    .ok()
                    .and_then(|m| m.duration_since(std::time::UNIX_EPOCH).ok())
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                cells.push(CellInfo {
                    stage: stage.name().to_string(),
                    key: key.to_string(),
                    bytes: meta.len(),
                    mtime_secs,
                    path: entry.path(),
                });
            }
        }
        cells.sort_by(|a, b| (&a.stage, &a.key).cmp(&(&b.stage, &b.key)));
        cells
    }

    /// Shrink the store to at most `max_bytes` by removing
    /// least-recently-modified cells first (path order breaks mtime
    /// ties so the victim sequence is deterministic).
    pub fn gc(&self, max_bytes: u64) -> GcReport {
        let mut cells = self.list();
        cells.sort_by(|a, b| (a.mtime_secs, &a.path).cmp(&(b.mtime_secs, &b.path)));
        let mut remaining: u64 = cells.iter().map(|c| c.bytes).sum();
        let mut report = GcReport { removed: 0, freed_bytes: 0, kept: cells.len(), kept_bytes: remaining };
        for cell in &cells {
            if remaining <= max_bytes {
                break;
            }
            match fs::remove_file(&cell.path) {
                Ok(()) => {
                    remaining -= cell.bytes;
                    report.removed += 1;
                    report.freed_bytes += cell.bytes;
                    report.kept -= 1;
                    report.kept_bytes -= cell.bytes;
                }
                Err(e) => {
                    obs::warn!("disk store: gc removing {} failed: {e}", cell.path.display());
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ddoscovery-diskstore-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_obs() -> ObservationColumns {
        use attackgen::AttackId;
        use simcore::SimTime;
        let mut v = ObservationColumns::new();
        v.push_row(AttackId(1), SimTime(100), &[netmodel::Ipv4::new(10, 0, 0, 1)]);
        v.push_row(
            AttackId(2),
            SimTime(200),
            &[netmodel::Ipv4::new(10, 0, 0, 2), netmodel::Ipv4::new(10, 0, 0, 3)],
        );
        v
    }

    #[test]
    fn cell_round_trips_and_is_framed() {
        let payload = b"hello stage store".to_vec();
        let bytes = encode_cell(TAG_PLAN, &payload);
        assert_eq!(bytes.len(), CELL_HEADER_LEN + payload.len());
        assert_eq!(check_cell(&bytes, TAG_PLAN).unwrap(), &payload[..]);
        // Wrong expected kind is a type confusion, rejected.
        assert!(check_cell(&bytes, TAG_ATTACKS).is_err());
    }

    #[test]
    fn cell_checksum_distinguishes_padded_tails() {
        // The word fold zero-pads the tail; binding the length keeps
        // payloads that differ only by trailing zero bytes distinct.
        assert_ne!(cell_checksum(b"ab"), cell_checksum(b"ab\0"));
        assert_ne!(cell_checksum(b""), cell_checksum(b"\0\0\0\0\0\0\0\0"));
        // Word-aligned single-bit differences are caught too.
        assert_ne!(cell_checksum(&[0u8; 16]), cell_checksum(&[1u8; 16]));
        assert_eq!(cell_checksum(b"stage"), cell_checksum(b"stage"));
    }

    #[test]
    fn every_truncation_and_flip_is_rejected() {
        let bytes = encode_cell(TAG_OBSERVATIONS, &sample_obs().to_wire_bytes());
        for cut in 0..bytes.len() {
            assert!(
                check_cell(&bytes[..cut], TAG_OBSERVATIONS).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                check_cell(&bad, TAG_OBSERVATIONS).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
    }

    #[test]
    fn store_and_load_round_trip_on_disk() {
        let dir = scratch_dir("roundtrip");
        let store = DiskStore::open(dir.clone());
        let v = sample_obs();

        // Cold: clean miss.
        assert!(store.load_observations(0xAB).is_none());

        store.store_observations(0xAB, &v);
        let back = store.load_observations(0xAB).expect("stored cell loads");
        assert_eq!(back.to_wire_bytes(), v.to_wire_bytes());

        // The alert kind does not alias the observation kind even
        // under an (artificial) identical key.
        assert!(store.load_alerts(0xAB).is_none());

        // Corrupt the cell body: rejected, then rewritable.
        let path = store.cell_path(Stage::Observations, 0xAB);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_observations(0xAB).is_none());
        store.store_observations(0xAB, &v);
        assert!(store.load_observations(0xAB).is_some());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_and_gc_evict_oldest_first() {
        let dir = scratch_dir("gc");
        let store = DiskStore::open(dir.clone());
        let v = sample_obs();
        store.store_observations(1, &v);
        store.store_observations(2, &v);
        store.store_observations(3, &v);
        let cells = store.list();
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.stage == "observations" && c.bytes > 0));
        let total: u64 = cells.iter().map(|c| c.bytes).sum();

        // Keep roughly one cell's worth: two oldest go. Equal mtimes
        // (coarse clocks) fall back to path order, so the survivor set
        // is still deterministic: exactly one cell remains.
        let keep = total / 3;
        let report = store.gc(keep);
        assert_eq!(report.removed, 2);
        assert_eq!(report.kept, 1);
        assert_eq!(report.kept_bytes + report.freed_bytes, total);
        assert!(report.kept_bytes <= keep);
        assert_eq!(store.list().len(), 1);

        // gc to zero empties the store.
        let report = store.gc(0);
        assert_eq!(report.kept, 0);
        assert!(store.list().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolution_prefers_config_and_honors_off() {
        // Config set: wins outright (this test never touches the
        // process environment, so it is parallel-safe; env fallback is
        // covered by the CLI subprocess tests).
        let mut cfg = StudyConfig::quick();
        cfg.disk_store = Some("/tmp/somewhere".into());
        assert_eq!(resolve_dir(&cfg), Some(PathBuf::from("/tmp/somewhere")));
        cfg.disk_store = Some("off".into());
        assert_eq!(resolve_dir(&cfg), None);
        cfg.disk_store = Some("  ".into());
        assert_eq!(resolve_dir(&cfg), None);
        cfg.disk_store = None;
        if std::env::var(STORE_ENV).is_err() {
            assert_eq!(resolve_dir(&cfg), None);
        }
    }
}
