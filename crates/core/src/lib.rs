//! `ddoscovery` — orchestration layer of the reproduction: study
//! configuration, the end-to-end pipeline, and the experiment registry
//! that regenerates every table and figure of the paper.

pub mod diskstore;
pub mod error;
pub mod experiments;
pub mod faults;
pub mod pipeline;
pub mod render;
pub mod scenario;
pub mod service;
pub mod stagecache;
pub mod sweep;

pub use diskstore::DiskStore;
pub use error::{Error, Result};
pub use experiments::{all_ids, run_all, run_experiment, ExperimentResult};
pub use faults::{ChaosPlan, ChurnSpec, DegradationSpec, FaultPlan, OutageSpec};
pub use pipeline::{ObsId, StudyRun};
pub use scenario::StudyConfig;
pub use service::StudyService;
pub use stagecache::{StageCache, StageFingerprints};
pub use sweep::{SweepOutcome, SweepReport, SweepSkip};
