//! Study-level fault configuration: the [`FaultPlan`] (data plane) and
//! [`ChaosPlan`] (control plane) knobs on [`crate::StudyConfig`].
//!
//! A `FaultPlan` names faults by **source** — the eight observatory
//! platforms that produce raw observation streams — and is resolved into
//! the per-observatory [`simcore::ObsFaults`] the observe stage consults.
//! It is validated like every other knob and classified `observations`
//! in the stage-cache field inventory: changing it re-keys (only) the
//! observation stage, so cached plans and attack streams are reused.
//!
//! A `ChaosPlan` seeds control-plane failure injection (panicking pool
//! shards and stage computes). It is classified `execution`: under the
//! bounded deterministic retry in `simcore::recover` it must never
//! change a single output byte, and the stage-cache inventory test
//! machine-checks that it does not re-key any stage.

use crate::error::{Error, Result};
use crate::pipeline::ObsId;
use serde::{Deserialize, Serialize};
use simcore::chaos::ChaosSchedule;
use simcore::faults::{FlowDegradation, ObsFaults, OutageWindow, SensorChurn};
use simcore::rng::fnv1a64;
use simcore::STUDY_WEEKS;

/// The raw observation sources a [`FaultPlan`] can name. The flow
/// platforms (`ixp`, `akamai`, `netscout`) each feed two `ObsId` streams
/// (DP and RA splits), so an outage on one source masks both.
pub const FAULT_SOURCES: [&str; 8] = [
    "ucsd", "orion", "hopscotch", "amppot", "newkid", "ixp", "akamai", "netscout",
];

const HONEYPOT_SOURCES: [&str; 3] = ["hopscotch", "amppot", "newkid"];
const FLOW_SOURCES: [&str; 3] = ["ixp", "akamai", "netscout"];

/// One per-source outage window, `[start_week, end_week)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageSpec {
    /// A source slug from [`FAULT_SOURCES`].
    pub source: String,
    pub start_week: u32,
    pub end_week: u32,
}

/// Honeypot sensor-fleet decline and weekly churn, applied to every
/// honeypot source (Hopscotch, AmpPot, NewKid).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Fraction of the fleet lost per study year (linear, clamped ≥ 0).
    pub decline_per_year: f64,
    /// Upper bound on the fraction of sensors offline in any week.
    pub offline_weekly: f64,
}

/// Flow-platform sampling degradation, applied to every flow source
/// (IXP, Akamai, Netscout): from `start_week` on, each would-be
/// observation is independently lost with `drop_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationSpec {
    pub drop_fraction: f64,
    pub start_week: u32,
}

/// Deterministic data-plane fault injection for one study.
///
/// The default plan is empty and bit-for-bit invisible: no RNG is
/// consumed and no float path is taken anywhere in the observe stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-source outage windows; the affected weekly series are masked
    /// as *missing* (NaN), never as zero counts.
    pub outages: Vec<OutageSpec>,
    /// Sensor-fleet decline/churn for the honeypot sources.
    pub honeypot_churn: Option<ChurnSpec>,
    /// Sampling degradation for the flow sources.
    pub flow_degradation: Option<DegradationSpec>,
    /// Seed for the fault-local draws (churn, sampling); independent of
    /// the study seed so the same gaps can be replayed across seeds.
    pub seed: u64,
}

impl FaultPlan {
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.honeypot_churn.is_none()
            && self.flow_degradation.is_none()
    }

    /// Check every fault invariant; called from `StudyConfig::validate`.
    pub fn validate(&self) -> Result<()> {
        for (i, o) in self.outages.iter().enumerate() {
            if !FAULT_SOURCES.contains(&o.source.as_str()) {
                return Err(Error::config(
                    "faults.outages",
                    format!(
                        "entry {i}: unknown source {:?} (expected one of {})",
                        o.source,
                        FAULT_SOURCES.join(", ")
                    ),
                ));
            }
            if o.start_week >= o.end_week {
                return Err(Error::config(
                    "faults.outages",
                    format!("entry {i}: window inverted: [{}, {})", o.start_week, o.end_week),
                ));
            }
            if o.end_week > STUDY_WEEKS as u32 {
                return Err(Error::config(
                    "faults.outages",
                    format!(
                        "entry {i}: end_week {} past the study ({STUDY_WEEKS} weeks)",
                        o.end_week
                    ),
                ));
            }
        }
        if let Some(c) = &self.honeypot_churn {
            crate::scenario::fraction("faults.honeypot_churn.decline_per_year", c.decline_per_year)?;
            crate::scenario::fraction("faults.honeypot_churn.offline_weekly", c.offline_weekly)?;
        }
        if let Some(d) = &self.flow_degradation {
            crate::scenario::fraction("faults.flow_degradation.drop_fraction", d.drop_fraction)?;
            if d.start_week >= STUDY_WEEKS as u32 {
                return Err(Error::config(
                    "faults.flow_degradation.start_week",
                    format!("must be before week {STUDY_WEEKS}, got {}", d.start_week),
                ));
            }
        }
        Ok(())
    }

    /// Resolve the faults one source consults while observing.
    pub fn for_source(&self, source: &str) -> ObsFaults {
        let outages = self
            .outages
            .iter()
            .filter(|o| o.source == source)
            .map(|o| OutageWindow { start_week: o.start_week, end_week: o.end_week })
            .collect();
        let churn = if HONEYPOT_SOURCES.contains(&source) {
            self.honeypot_churn.map(|c| SensorChurn {
                decline_per_year: c.decline_per_year,
                offline_weekly: c.offline_weekly,
                seed: self.seed ^ fnv1a64(source.as_bytes()),
            })
        } else {
            None
        };
        let degradation = if FLOW_SOURCES.contains(&source) {
            self.flow_degradation.map(|d| FlowDegradation {
                drop_fraction: d.drop_fraction,
                start_week: d.start_week,
            })
        } else {
            None
        };
        ObsFaults { outages, churn, degradation }
    }

    /// The source slug whose outages mask `id`'s weekly series.
    pub fn source_of(id: ObsId) -> &'static str {
        match id {
            ObsId::Ucsd => "ucsd",
            ObsId::Orion => "orion",
            ObsId::Hopscotch => "hopscotch",
            ObsId::AmpPot => "amppot",
            ObsId::NewKid => "newkid",
            ObsId::IxpDp | ObsId::IxpRa => "ixp",
            ObsId::AkamaiDp | ObsId::AkamaiRa => "akamai",
            ObsId::NetscoutDp | ObsId::NetscoutRa => "netscout",
        }
    }

    /// Half-open week ranges masked out of `id`'s weekly series.
    pub fn outage_ranges(&self, id: ObsId) -> Vec<(usize, usize)> {
        let source = Self::source_of(id);
        self.outages
            .iter()
            .filter(|o| o.source == source)
            .map(|o| (o.start_week as usize, (o.end_week as usize).min(STUDY_WEEKS)))
            .collect()
    }

    /// Degraded (outage-masked) week indices per source, for the run
    /// manifest. Sources without outages are omitted; order follows
    /// [`FAULT_SOURCES`].
    pub fn degraded_weeks(&self) -> Vec<(String, Vec<u64>)> {
        FAULT_SOURCES
            .iter()
            .filter_map(|source| {
                let weeks = self.for_source(source).masked_weeks();
                (!weeks.is_empty()).then(|| (source.to_string(), weeks))
            })
            .collect()
    }
}

/// Deterministic control-plane fault injection for one study: panics
/// scheduled into pool shards and stage computes by a pure hash of
/// `(seed, site, unit)`. Output bytes are invariant to this knob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Probability that a given work unit is scheduled to fail.
    pub probability: f64,
    /// Consecutive failing attempts per scheduled unit; values `>=`
    /// [`simcore::recover::MAX_ATTEMPTS`] make failures permanent.
    pub failures_per_site: u32,
    /// Schedule seed, independent of the study seed.
    pub seed: u64,
}

impl ChaosPlan {
    /// A recoverable schedule: every scheduled site fails
    /// `MAX_ATTEMPTS - 1` times and succeeds on the final attempt.
    pub fn recoverable(probability: f64, seed: u64) -> ChaosPlan {
        ChaosPlan {
            probability,
            failures_per_site: simcore::recover::MAX_ATTEMPTS - 1,
            seed,
        }
    }

    pub fn validate(&self) -> Result<()> {
        crate::scenario::fraction("chaos.probability", self.probability)?;
        Ok(())
    }

    pub fn schedule(&self) -> ChaosSchedule {
        ChaosSchedule {
            seed: self.seed,
            probability: self.probability,
            failures_per_site: self.failures_per_site,
        }
    }
}

/// Run `f` under the chaos schedule (if any) with bounded deterministic
/// retry, keyed by a stable `(site, unit)` identity such as a stage
/// fingerprint. With no schedule this is a direct call — no
/// unwind-capture frame, no behaviour change.
pub fn with_chaos<T>(
    chaos: Option<&ChaosSchedule>,
    site: &'static str,
    unit: u64,
    f: impl Fn() -> T,
) -> T {
    match chaos {
        None => f(),
        Some(cs) => simcore::recover::run_with_retry(site, |attempt| {
            cs.maybe_fail(site, unit, attempt);
            f()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            outages: vec![
                OutageSpec { source: "ucsd".into(), start_week: 5, end_week: 9 },
                OutageSpec { source: "ixp".into(), start_week: 100, end_week: 104 },
            ],
            honeypot_churn: Some(ChurnSpec { decline_per_year: 0.1, offline_weekly: 0.05 }),
            flow_degradation: Some(DegradationSpec { drop_fraction: 0.2, start_week: 120 }),
            seed: 7,
        }
    }

    #[test]
    fn resolution_routes_faults_to_the_right_sources() {
        let p = plan();
        let ucsd = p.for_source("ucsd");
        assert_eq!(ucsd.outages.len(), 1);
        assert!(ucsd.churn.is_none() && ucsd.degradation.is_none());
        let amppot = p.for_source("amppot");
        assert!(amppot.outages.is_empty());
        assert!(amppot.churn.is_some() && amppot.degradation.is_none());
        let ixp = p.for_source("ixp");
        assert_eq!(ixp.outages.len(), 1);
        assert!(ixp.churn.is_none() && ixp.degradation.is_some());
        // Churn seeds differ per source so fleets do not churn in
        // lockstep.
        let a = p.for_source("hopscotch").churn.expect("churn").seed;
        let b = p.for_source("newkid").churn.expect("churn").seed;
        assert_ne!(a, b);
    }

    #[test]
    fn outage_ranges_follow_the_stream_to_source_mapping() {
        let p = plan();
        assert_eq!(p.outage_ranges(ObsId::Ucsd), vec![(5, 9)]);
        assert_eq!(p.outage_ranges(ObsId::IxpDp), vec![(100, 104)]);
        assert_eq!(p.outage_ranges(ObsId::IxpRa), vec![(100, 104)]);
        assert!(p.outage_ranges(ObsId::Orion).is_empty());
        let degraded = p.degraded_weeks();
        assert_eq!(degraded.len(), 2);
        assert_eq!(degraded[0].0, "ucsd");
        assert_eq!(degraded[0].1, vec![5, 6, 7, 8]);
        assert_eq!(degraded[1].0, "ixp");
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = plan();
        p.outages[0].source = "nonesuch".into();
        assert!(p.validate().is_err());

        let mut p = plan();
        p.outages[1].end_week = p.outages[1].start_week;
        assert!(p.validate().is_err());

        let mut p = plan();
        p.outages[0].end_week = STUDY_WEEKS as u32 + 1;
        assert!(p.validate().is_err());

        let mut p = plan();
        p.honeypot_churn = Some(ChurnSpec { decline_per_year: 1.5, offline_weekly: 0.0 });
        assert!(p.validate().is_err());

        let mut p = plan();
        p.flow_degradation = Some(DegradationSpec { drop_fraction: 0.5, start_week: 9999 });
        assert!(p.validate().is_err());

        assert!(plan().validate().is_ok());
        assert!(FaultPlan::default().validate().is_ok());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn chaos_plan_validates_and_builds_a_schedule() {
        let c = ChaosPlan::recoverable(0.5, 9);
        assert!(c.validate().is_ok());
        assert!(!c.schedule().is_permanent());
        let bad = ChaosPlan { probability: 1.5, ..c };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn with_chaos_retries_to_the_same_value() {
        let cs = ChaosPlan::recoverable(1.0, 3).schedule();
        let plain = with_chaos(None, "stage.plan", 42, || 7 * 6);
        let chaotic = with_chaos(Some(&cs), "stage.plan", 42, || 7 * 6);
        assert_eq!(plain, chaotic);
    }
}
