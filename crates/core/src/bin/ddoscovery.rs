//! `ddoscovery` — command-line front end for the reproduction.
//!
//! ```text
//! ddoscovery list                         # experiment ids + titles
//! ddoscovery run [--quick] [--seed N] [--out DIR] [IDS...]
//! ddoscovery config                       # dump the study config JSON
//! ddoscovery trends [--quick] [--seed N]  # one-screen Table-1 summary
//! ddoscovery runs list|show R|diff A B    # persistent run history
//! ddoscovery store list|gc --max-bytes N  # persistent stage store
//! ```
//!
//! Stream discipline: stdout carries machine-readable experiment
//! output only; every status line goes to stderr through the `obs`
//! logger (`DDOSCOVERY_LOG=error|warn|info|debug`). `--telemetry PATH`
//! (or `DDOSCOVERY_TELEMETRY=PATH`) additionally writes a JSON run
//! manifest, prints its summary table on stderr, and appends the
//! manifest to the persistent run store (`.ddoscovery/runs/`, override
//! with `--runs-dir`/`DDOSCOVERY_RUNS_DIR`) for later `runs diff`.
//! `--trace PATH` (or `DDOSCOVERY_TRACE=PATH`) arms the flight
//! recorder and writes a Chrome trace-event timeline of the run.
//!
//! Exit codes: 0 on success, 1 for runtime failures (I/O, analytics),
//! 2 for usage and config errors — mirroring
//! [`ddoscovery::Error::exit_code`].

use ddoscovery::{all_ids, run_experiment, ChaosPlan, Error, FaultPlan, StudyConfig, StudyRun};
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    obs::log::raw_stderr(
        "usage: ddoscovery <command> [options]\n\n\
         commands:\n\
         \u{20}  list                         list experiment ids\n\
         \u{20}  run [opts] [IDS...]          run experiments (default: all)\n\
         \u{20}  trends [opts]                print the Table-1 trend summary\n\
         \u{20}  config                       print the default study config as JSON\n\
         \u{20}  runs list                    list stored run manifests\n\
         \u{20}  runs show RUN                print one stored manifest (stem,\n\
         \u{20}                               unambiguous prefix, or path)\n\
         \u{20}  runs diff A B [--gate PCT]   compare two stored runs; with\n\
         \u{20}                               --gate, exit 1 when any\n\
         \u{20}                               deterministic metric moves more\n\
         \u{20}                               than PCT percent\n\
         \u{20}  store list                   list persistent stage-store cells\n\
         \u{20}  store gc --max-bytes N       shrink the stage store to at most\n\
         \u{20}                               N bytes (oldest cells first)\n\
         \u{20}  serve [opts] [--addr A]      warm the study (through --store,\n\
         \u{20}                               if set) and serve it over HTTP\n\
         \u{20}                               until /admin/drain; prints the\n\
         \u{20}                               bound address on stdout\n\n\
         options:\n\
         \u{20}  --quick            scaled-down study (~1/8 volume)\n\
         \u{20}  --seed N           master seed: decimal, or hex with an\n\
         \u{20}                     explicit 0x prefix (default 0xDD05C0DE)\n\
         \u{20}  --out DIR          CSV output directory (default: results)\n\
         \u{20}  --workers N        execution-pool worker count (wins over\n\
         \u{20}                     DDOSCOVERY_WORKERS; output is identical\n\
         \u{20}                     for every setting)\n\
         \u{20}  --telemetry PATH   write a JSON run manifest to PATH and\n\
         \u{20}                     print a summary table on stderr (env:\n\
         \u{20}                     DDOSCOVERY_TELEMETRY)\n\
         \u{20}  --stage-cache V    cross-run stage cache: `off` to bypass,\n\
         \u{20}                     or an entry bound N (wins over\n\
         \u{20}                     DDOSCOVERY_STAGE_CACHE; output is\n\
         \u{20}                     identical for every setting)\n\
         \u{20}  --faults PATH      JSON fault plan: per-source outage\n\
         \u{20}                     windows, honeypot fleet churn, flow\n\
         \u{20}                     sampling degradation (validated like\n\
         \u{20}                     any config; degraded weeks land in the\n\
         \u{20}                     telemetry manifest)\n\
         \u{20}  --chaos P          inject recoverable control-plane faults\n\
         \u{20}                     with probability P per site; output is\n\
         \u{20}                     identical with or without the flag\n\
         \u{20}  --trace PATH       arm the flight recorder and write a\n\
         \u{20}                     Chrome trace-event timeline (Perfetto-\n\
         \u{20}                     loadable) to PATH (env: DDOSCOVERY_TRACE;\n\
         \u{20}                     output is identical with or without it)\n\
         \u{20}  --runs-dir DIR     run-history store for --telemetry and\n\
         \u{20}                     the runs subcommands (default\n\
         \u{20}                     .ddoscovery/runs; env: DDOSCOVERY_RUNS_DIR)\n\
         \u{20}  --store [DIR]      persistent stage store: warm stages are\n\
         \u{20}                     loaded from DIR (integrity-checked) and\n\
         \u{20}                     fresh stages written back, sharing work\n\
         \u{20}                     across processes (default DIR\n\
         \u{20}                     .ddoscovery/store; env: DDOSCOVERY_STORE;\n\
         \u{20}                     `--store off` forces it off; output is\n\
         \u{20}                     identical with or without it)\n\
         \u{20}  --addr A           with serve: numeric listen address\n\
         \u{20}                     IP:PORT (default 127.0.0.1:8080; port 0\n\
         \u{20}                     picks a free port)\n\
         \u{20}  --max-bytes N      with store gc: the size to shrink to\n\
         \u{20}  --gate PCT         with runs diff: fail (exit 1) when a\n\
         \u{20}                     counter or gauge moves more than PCT%\n\n\
         exit codes:\n\
         \u{20}  0  success\n\
         \u{20}  1  runtime failure (I/O, analytics)\n\
         \u{20}  2  usage or config error",
    );
    ExitCode::from(2)
}

/// Parse a `--seed` value. Decimal by default; hexadecimal only with an
/// explicit `0x`/`0X` prefix. (An earlier version tried hex *first*, so
/// `--seed 100` silently became 256 — every digit string is valid hex.)
fn parse_seed(v: &str) -> Result<u64, String> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
            .map_err(|_| format!("bad hex seed {v:?} (expected 0x followed by hex digits)"))
    } else {
        v.parse()
            .map_err(|_| format!("bad seed {v:?} (decimal, or 0x-prefixed hex)"))
    }
}

#[derive(Debug, PartialEq)]
struct Options {
    quick: bool,
    seed: Option<u64>,
    out: String,
    workers: Option<usize>,
    telemetry: Option<String>,
    stage_cache: Option<usize>,
    faults: Option<String>,
    chaos: Option<f64>,
    trace: Option<String>,
    runs_dir: Option<String>,
    gate: Option<f64>,
    store: Option<String>,
    max_bytes: Option<u64>,
    addr: Option<String>,
    ids: Vec<String>,
}

/// Parse a `--stage-cache` value: `off` (any case) or `0` bypasses the
/// cache, an integer bounds it.
fn parse_stage_cache(v: &str) -> Result<usize, String> {
    if v.eq_ignore_ascii_case("off") {
        return Ok(0);
    }
    v.parse()
        .map_err(|_| format!("bad stage-cache value {v:?} (expected `off` or an entry count)"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        seed: None,
        out: "results".into(),
        workers: None,
        telemetry: None,
        stage_cache: None,
        faults: None,
        chaos: None,
        trace: None,
        runs_dir: None,
        gate: None,
        store: None,
        max_bytes: None,
        addr: None,
        ids: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = Some(parse_seed(v)?);
            }
            "--out" => opts.out = it.next().ok_or("--out needs a value")?.clone(),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                opts.workers = Some(n);
            }
            "--telemetry" => {
                opts.telemetry = Some(it.next().ok_or("--telemetry needs a value")?.clone());
            }
            "--stage-cache" => {
                let v = it.next().ok_or("--stage-cache needs a value")?;
                opts.stage_cache = Some(parse_stage_cache(v)?);
            }
            "--faults" => {
                opts.faults = Some(it.next().ok_or("--faults needs a value")?.clone());
            }
            "--chaos" => {
                let v = it.next().ok_or("--chaos needs a value")?;
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("bad chaos probability {v:?}"))?;
                opts.chaos = Some(p);
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            "--runs-dir" => {
                opts.runs_dir = Some(it.next().ok_or("--runs-dir needs a value")?.clone());
            }
            // The store directory is optional: a bare `--store` means
            // the default dir, `--store DIR` (or `--store=DIR`) pins
            // one, `--store off` forces the store off. The next token
            // is taken as the directory unless it looks like a flag.
            "--store" => {
                let dir = match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        it.next().expect("peeked value exists").clone()
                    }
                    _ => ddoscovery::diskstore::DEFAULT_STORE_DIR.to_string(),
                };
                opts.store = Some(dir);
            }
            "--addr" => {
                opts.addr = Some(it.next().ok_or("--addr needs a value")?.clone());
            }
            "--max-bytes" => {
                let v = it.next().ok_or("--max-bytes needs a value")?;
                opts.max_bytes =
                    Some(v.parse().map_err(|_| format!("bad byte count {v:?}"))?);
            }
            "--gate" => {
                let v = it.next().ok_or("--gate needs a value")?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| format!("bad gate percentage {v:?}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("--gate must be a non-negative percentage, got {v}"));
                }
                opts.gate = Some(pct);
            }
            other if other.starts_with("--store=") => {
                opts.store = Some(other["--store=".len()..].to_string());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            id => opts.ids.push(id.to_string()),
        }
    }
    // The flag wins over the environment; the env var still applies
    // when the flag is absent.
    if opts.telemetry.is_none() {
        if let Ok(path) = std::env::var(obs::manifest::TELEMETRY_ENV) {
            if !path.trim().is_empty() {
                opts.telemetry = Some(path);
            }
        }
    }
    if opts.trace.is_none() {
        if let Ok(path) = std::env::var(obs::trace::TRACE_ENV) {
            if !path.trim().is_empty() {
                opts.trace = Some(path);
            }
        }
    }
    Ok(opts)
}

/// The run-history store: `--runs-dir` wins over `DDOSCOVERY_RUNS_DIR`,
/// which wins over `.ddoscovery/runs`.
fn runs_store(opts: &Options) -> obs::store::RunStore {
    match &opts.runs_dir {
        Some(dir) => obs::store::RunStore::new(dir),
        None => obs::store::RunStore::open_default(),
    }
}

/// Arm the flight recorder when a trace path was requested.
fn arm_trace(opts: &Options) {
    if opts.trace.is_some() {
        obs::trace::enable(obs::trace::DEFAULT_LANE_CAPACITY);
    }
}

/// Export the armed flight recorder to the requested path.
fn export_trace(opts: &Options) -> Result<(), Error> {
    let Some(path) = &opts.trace else {
        return Ok(());
    };
    obs::trace::disable();
    obs::trace::export_to_file(path).map_err(|e| Error::io(path.clone(), &e))?;
    obs::info!(
        "trace timeline written to {path} ({} events dropped)",
        obs::trace::dropped()
    );
    Ok(())
}

fn build_config(opts: &Options) -> Result<StudyConfig, Error> {
    let mut cfg = if opts.quick {
        StudyConfig::quick()
    } else {
        StudyConfig::paper()
    };
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    // A pinned worker count bypasses the DDOSCOVERY_WORKERS default in
    // `ExecPool::global`, so the flag wins over the env var.
    if opts.workers.is_some() {
        cfg.workers = opts.workers;
    }
    // Same precedence story as --workers: a pinned bound bypasses the
    // DDOSCOVERY_STAGE_CACHE fallback in `stagecache::resolve_bound`.
    if opts.stage_cache.is_some() {
        cfg.stage_cache = opts.stage_cache;
    } else if let Ok(v) = std::env::var(ddoscovery::stagecache::STAGE_CACHE_ENV) {
        // The library only *warns* on a malformed env bound (it cannot
        // abort a caller's run); the CLI is the place to be strict and
        // turn it into a typed config error up front.
        if let Err(message) = ddoscovery::stagecache::parse_env_bound(&v) {
            return Err(Error::config("stage_cache", message));
        }
    }
    // The flag wins over DDOSCOVERY_STORE, which `diskstore::resolve`
    // consults when the config knob is None.
    if opts.store.is_some() {
        cfg.disk_store = opts.store.clone();
    }
    if let Some(path) = &opts.faults {
        let text = fs::read_to_string(path).map_err(|e| Error::io(path.clone(), &e))?;
        let plan: FaultPlan = serde_json::from_str(&text)
            .map_err(|e| Error::config("faults", format!("cannot parse {path}: {e}")))?;
        cfg.faults = plan;
    }
    if let Some(p) = opts.chaos {
        // The CLI flag injects *recoverable* chaos (failures below the
        // retry budget) so a flagged run still produces byte-identical
        // output — the point is exercising the recovery path.
        cfg.chaos = Some(ChaosPlan::recoverable(p, cfg.seed));
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Scenario label recorded in run manifests.
fn scenario_label(opts: &Options) -> &'static str {
    match (opts.quick, opts.seed.is_some()) {
        (true, false) => "quick",
        (false, false) => "paper",
        (true, true) => "quick-reseeded",
        (false, true) => "paper-reseeded",
    }
}

/// Write the run manifest (if requested), print its summary table, and
/// append the manifest to the persistent run store for `runs diff`. A
/// store failure only warns: history is a convenience, the run's own
/// output must not fail because `.ddoscovery/` is unwritable.
fn emit_telemetry(opts: &Options, cfg: &StudyConfig) -> Result<(), String> {
    let Some(path) = &opts.telemetry else {
        return Ok(());
    };
    let config_json = serde_json::to_string(cfg).map_err(|e| e.to_string())?;
    let manifest = obs::manifest::RunManifest::capture(obs::manifest::RunInfo {
        scenario: scenario_label(opts).to_string(),
        seed: cfg.seed,
        workers: cfg.workers,
        config_hash: obs::manifest::fnv1a(config_json.as_bytes()),
        stages: ddoscovery::StageFingerprints::of(cfg).manifest_entries(),
        degraded_weeks: cfg.faults.degraded_weeks(),
    });
    fs::write(path, manifest.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    obs::log::raw_stderr(manifest.summary_table().trim_end());
    obs::info!("telemetry manifest written to {path}");
    match runs_store(opts).append(&manifest) {
        Ok(stored) => obs::info!("run recorded in store: {}", stored.display()),
        Err(e) => obs::warn!("{e}"),
    }
    Ok(())
}

fn cmd_list() -> ExitCode {
    // Titles need a run for some experiments; print ids with the static
    // descriptions from the registry docs instead.
    for id in all_ids() {
        println!("{id}");
    }
    ExitCode::SUCCESS
}

fn cmd_config() -> ExitCode {
    match serde_json::to_string_pretty(&StudyConfig::paper()) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            obs::error!("serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(opts: &Options) -> ExitCode {
    let wanted: Vec<&str> = if opts.ids.is_empty() {
        all_ids().to_vec()
    } else {
        opts.ids.iter().map(|s| s.as_str()).collect()
    };
    for id in &wanted {
        if !all_ids().contains(id) {
            obs::error!("unknown experiment {id:?}; known: {:?}", all_ids());
            return ExitCode::from(2);
        }
    }
    let cfg = match build_config(opts) {
        Ok(cfg) => cfg,
        Err(e) => return fail(&e),
    };
    arm_trace(opts);
    obs::info!(
        "running {} study (seed {:#x}, workers {}) ...",
        scenario_label(opts),
        cfg.seed,
        cfg.workers.map(|w| w.to_string()).unwrap_or_else(|| "default".into()),
    );
    let run_span = obs::span!("run");
    let watch = obs::Stopwatch::start();
    let run = match StudyRun::try_execute(&cfg) {
        Ok(run) => run,
        Err(e) => return fail(&e),
    };
    obs::info!(
        "{} attacks observed in {:.1}s",
        run.attacks.len(),
        watch.elapsed_ns() as f64 / 1e9
    );
    let out_dir = Path::new(&opts.out);
    if let Err(e) = fs::create_dir_all(out_dir) {
        return fail(&Error::io(out_dir.display().to_string(), &e));
    }
    let analyze_span = obs::span!("analyze");
    for id in wanted {
        // `wanted` is pre-checked against `all_ids`, but a registry
        // mismatch should surface as a diagnostic, not a panic.
        let Some(result) = run_experiment(&run, id) else {
            return fail(&Error::analytics(id, "experiment id not in the registry"));
        };
        println!("== [{}] {} ==\n{}", result.id, result.title, result.body);
        for (name, contents) in &result.csv {
            let path = out_dir.join(name);
            if let Err(e) = fs::write(&path, contents) {
                return fail(&Error::io(path.display().to_string(), &e));
            }
            obs::info!("wrote {}", path.display());
        }
    }
    drop(analyze_span);
    drop(run_span);
    // Projections all ran inside the analyze stage above.
    ddoscovery::pipeline::record_peak_rss("project");
    if let Err(e) = emit_telemetry(opts, &cfg) {
        obs::error!("{e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = export_trace(opts) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// Log a typed error and map it to its process exit code.
fn fail(e: &Error) -> ExitCode {
    obs::error!("{e}");
    ExitCode::from(e.exit_code())
}

fn cmd_trends(opts: &Options) -> ExitCode {
    let cfg = match build_config(opts) {
        Ok(cfg) => cfg,
        Err(e) => return fail(&e),
    };
    arm_trace(opts);
    let run_span = obs::span!("run");
    let run = match StudyRun::try_execute(&cfg) {
        Ok(run) => run,
        Err(e) => return fail(&e),
    };
    let project_span = obs::span!("project");
    // Shared with the HTTP service's /v1/trends so the two renderings
    // stay byte-identical (crates/core/tests/http_service.rs).
    print!("{}", ddoscovery::render::trends_table(&run));
    drop(project_span);
    drop(run_span);
    ddoscovery::pipeline::record_peak_rss("project");
    if let Err(e) = emit_telemetry(opts, &cfg) {
        obs::error!("{e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = export_trace(opts) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// Map a socket-layer error onto the workspace error taxonomy: invalid
/// operator input (a bad `--addr`, a zero worker count) is usage-class
/// `Error::Config` (exit 2); an OS refusal (`EADDRINUSE`, permission)
/// is `Error::Io` (exit 1). Never a panic.
fn serve_error(e: serve::ServeError) -> Error {
    match e {
        serve::ServeError::Config { field, message } => {
            Error::config("serve", format!("{field}: {message}"))
        }
        serve::ServeError::Io { addr, message } => Error::Io { path: addr, message },
    }
}

fn cmd_serve(opts: &Options) -> ExitCode {
    let cfg = match build_config(opts) {
        Ok(cfg) => cfg,
        Err(e) => return fail(&e),
    };
    arm_trace(opts);
    // Warm boot: with --store set, intact stages load from the
    // persistent store (integrity-rejected cells recompute and are
    // rewritten), so a fresh service answers its first query without
    // redoing the study.
    let run_span = obs::span!("run");
    let run = match StudyRun::try_execute(&cfg) {
        Ok(run) => run,
        Err(e) => return fail(&e),
    };
    drop(run_span);
    ddoscovery::pipeline::record_peak_rss("serve.warm");
    let service = Arc::new(ddoscovery::StudyService::new(run, &cfg, scenario_label(opts)));
    let serve_cfg = serve::ServeConfig {
        addr: opts
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        ..serve::ServeConfig::default()
    };
    let server = match serve::Server::bind(serve_cfg, service.clone()) {
        Ok(server) => server,
        Err(e) => return fail(&serve_error(e)),
    };
    service.attach_shutdown(server.shutdown_handle());
    // The bound address is this command's one machine-readable stdout
    // line (it resolves a requested port 0); logs go to stderr.
    println!("http://{}", server.local_addr());
    let _ = std::io::stdout().flush();
    let report = server.run();
    obs::info!(
        "serve: drained={} accepted={} served={} shed={}",
        report.drained,
        report.accepted,
        report.served,
        report.shed
    );
    if let Err(e) = emit_telemetry(opts, &cfg) {
        obs::error!("{e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = export_trace(opts) {
        return fail(&e);
    }
    if report.drained {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// Run history: `ddoscovery runs list|show|diff`
// ---------------------------------------------------------------------

/// List the store: one line per run on stdout, corrupt entries skipped
/// with a warning on stderr (never a panic, never a failure).
fn cmd_runs_list(store: &obs::store::RunStore) -> ExitCode {
    let entries = store.entries();
    if entries.is_empty() {
        obs::info!("run store {} is empty", store.dir().display());
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<24} {:<16} {:>12} {:>8} {:>8}",
        "run", "scenario", "seed", "workers", "metrics"
    );
    for entry in entries {
        match &entry.manifest {
            Ok(m) => println!(
                "{:<24} {:<16} {:>#12x} {:>8} {:>8}",
                entry.stem,
                m.run.scenario,
                m.run.seed,
                m.run
                    .workers
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "-".into()),
                m.metrics.counters.len() + m.metrics.gauges.len() + m.metrics.histograms.len(),
            ),
            Err(e) => obs::warn!("skipping corrupt run {}: {e}", entry.stem),
        }
    }
    ExitCode::SUCCESS
}

/// Print one stored manifest: JSON on stdout, summary table on stderr.
fn cmd_runs_show(store: &obs::store::RunStore, name: &str) -> ExitCode {
    match store.load(name) {
        Ok((stem, manifest)) => {
            obs::info!("run {stem} from {}", store.dir().display());
            obs::log::raw_stderr(manifest.summary_table().trim_end());
            println!("{}", manifest.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => fail(&Error::io(name.to_string(), &std::io::Error::other(e))),
    }
}

/// Diff two stored runs; with `--gate PCT`, exit 1 when any counter or
/// gauge moved more than PCT percent.
fn cmd_runs_diff(store: &obs::store::RunStore, a: &str, b: &str, gate: Option<f64>) -> ExitCode {
    let load = |name: &str| match store.load(name) {
        Ok(loaded) => Ok(loaded),
        Err(e) => {
            obs::error!("{e}");
            Err(())
        }
    };
    let (Ok((a_stem, a_run)), Ok((b_stem, b_run))) = (load(a), load(b)) else {
        return ExitCode::FAILURE;
    };
    let d = obs::store::diff(&a_stem, &a_run, &b_stem, &b_run);
    println!("{}", d.render().trim_end());
    if let Some(pct) = gate {
        let breaches = d.breaches(pct);
        if !breaches.is_empty() {
            for breach in &breaches {
                obs::error!(
                    "gate breach: {} moved {} (> {pct}%)",
                    breach.name,
                    breach
                        .rel_change()
                        .map(|rel| format!("{:+.2}%", rel * 100.0))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            obs::error!("{} metric(s) beyond the {pct}% gate", breaches.len());
            return ExitCode::FAILURE;
        }
        obs::info!("gate ok: no counter or gauge moved more than {pct}%");
    }
    ExitCode::SUCCESS
}

fn cmd_runs(opts: &Options) -> ExitCode {
    let store = runs_store(opts);
    let ids: Vec<&str> = opts.ids.iter().map(String::as_str).collect();
    match ids.as_slice() {
        [] | ["list"] => cmd_runs_list(&store),
        ["show", name] => cmd_runs_show(&store, name),
        ["diff", a, b] => cmd_runs_diff(&store, a, b, opts.gate),
        other => {
            obs::error!(
                "usage: ddoscovery runs list | show RUN | diff A B [--gate PCT] (got {other:?})"
            );
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------
// Persistent stage store: `ddoscovery store list|gc`
// ---------------------------------------------------------------------

/// The stage store the `store` subcommand operates on: `--store [DIR]`
/// wins over `DDOSCOVERY_STORE`, which wins over the default
/// directory. (Unlike a run, the subcommand needs *some* directory to
/// inspect, so "unset" falls through to the default instead of off.)
fn stage_store(opts: &Options) -> Result<ddoscovery::DiskStore, String> {
    let dir = opts
        .store
        .clone()
        .or_else(|| {
            std::env::var(ddoscovery::diskstore::STORE_ENV)
                .ok()
                .filter(|v| !v.trim().is_empty())
        })
        .unwrap_or_else(|| ddoscovery::diskstore::DEFAULT_STORE_DIR.to_string());
    if dir.trim().eq_ignore_ascii_case("off") {
        return Err("stage store is off (give --store DIR to pick one)".into());
    }
    Ok(ddoscovery::DiskStore::open(dir.into()))
}

/// One line per cell on stdout, plus a totals line.
fn cmd_store_list(store: &ddoscovery::DiskStore) -> ExitCode {
    let cells = store.list();
    if cells.is_empty() {
        obs::info!("stage store {} is empty", store.dir().display());
        return ExitCode::SUCCESS;
    }
    println!("{:<13} {:<16} {:>12} {:>12}", "stage", "key", "bytes", "mtime");
    let mut total = 0u64;
    for cell in &cells {
        total += cell.bytes;
        println!(
            "{:<13} {:<16} {:>12} {:>12}",
            cell.stage, cell.key, cell.bytes, cell.mtime_secs
        );
    }
    println!("total {} cell(s), {total} bytes in {}", cells.len(), store.dir().display());
    ExitCode::SUCCESS
}

/// Shrink the store to `--max-bytes`, oldest cells first.
fn cmd_store_gc(store: &ddoscovery::DiskStore, opts: &Options) -> ExitCode {
    let Some(max_bytes) = opts.max_bytes else {
        obs::error!("store gc needs --max-bytes N");
        return ExitCode::from(2);
    };
    let report = store.gc(max_bytes);
    println!(
        "removed {} cell(s) ({} bytes); {} cell(s) ({} bytes) remain in {}",
        report.removed,
        report.freed_bytes,
        report.kept,
        report.kept_bytes,
        store.dir().display()
    );
    ExitCode::SUCCESS
}

fn cmd_store(opts: &Options) -> ExitCode {
    let store = match stage_store(opts) {
        Ok(store) => store,
        Err(e) => {
            obs::error!("{e}");
            return ExitCode::from(2);
        }
    };
    let ids: Vec<&str> = opts.ids.iter().map(String::as_str).collect();
    match ids.as_slice() {
        [] | ["list"] => cmd_store_list(&store),
        ["gc"] => cmd_store_gc(&store, opts),
        other => {
            obs::error!(
                "usage: ddoscovery store list | gc --max-bytes N (got {other:?})"
            );
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("{e}");
            return usage();
        }
    };
    match command.as_str() {
        "list" => cmd_list(),
        "config" => cmd_config(),
        "run" => cmd_run(&opts),
        "trends" => cmd_trends(&opts),
        "runs" => cmd_runs(&opts),
        "store" => cmd_store(&opts),
        "serve" => cmd_serve(&opts),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_options(&owned)
    }

    #[test]
    fn seed_is_decimal_by_default() {
        // Regression: hex used to be tried first, so `--seed 100`
        // silently became 0x100 = 256.
        let opts = parse(&["--seed", "100"]).unwrap();
        assert_eq!(opts.seed, Some(100));
    }

    #[test]
    fn seed_hex_needs_explicit_prefix() {
        assert_eq!(parse(&["--seed", "0x64"]).unwrap().seed, Some(100));
        assert_eq!(parse(&["--seed", "0X64"]).unwrap().seed, Some(100));
        assert_eq!(
            parse(&["--seed", "0xDD05C0DE"]).unwrap().seed,
            Some(0xDD05_C0DE)
        );
        // Bare hex digits are not a decimal number: reject rather than
        // guess a radix.
        assert!(parse(&["--seed", "beef"]).is_err());
    }

    #[test]
    fn seed_rejects_garbage() {
        assert!(parse(&["--seed", "0x"]).is_err());
        assert!(parse(&["--seed", "0xZZ"]).is_err());
        assert!(parse(&["--seed", "12.5"]).is_err());
        assert!(parse(&["--seed", "-1"]).is_err());
        assert!(parse(&["--seed", ""]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn workers_flag_parses_and_rejects_zero() {
        let opts = parse(&["--quick", "--workers", "3"]).unwrap();
        assert_eq!(opts.workers, Some(3));
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--workers", "lots"]).is_err());
        assert!(parse(&["--workers"]).is_err());
    }

    #[test]
    fn workers_flag_wins_over_env_default() {
        // The config only consults DDOSCOVERY_WORKERS when `workers`
        // is None, so a parsed flag short-circuits the env var.
        let opts = parse(&["--workers", "2"]).unwrap();
        let cfg = build_config(&opts).unwrap();
        assert_eq!(cfg.workers, Some(2));
        let opts = parse(&[]).unwrap();
        let cfg = build_config(&opts).unwrap();
        assert_eq!(cfg.workers, None);
    }

    #[test]
    fn stage_cache_flag_parses() {
        assert_eq!(parse(&["--stage-cache", "off"]).unwrap().stage_cache, Some(0));
        assert_eq!(parse(&["--stage-cache", "OFF"]).unwrap().stage_cache, Some(0));
        assert_eq!(parse(&["--stage-cache", "64"]).unwrap().stage_cache, Some(64));
        assert!(parse(&["--stage-cache", "some"]).is_err());
        assert!(parse(&["--stage-cache"]).is_err());
        // The flag lands in the config, where it wins over the env var.
        let cfg = build_config(&parse(&["--quick", "--stage-cache", "off"]).unwrap()).unwrap();
        assert_eq!(cfg.stage_cache, Some(0));
        assert_eq!(ddoscovery::stagecache::resolve_bound(&cfg), 0);
    }

    #[test]
    fn faults_flag_loads_and_validates_a_plan() {
        let dir = std::env::temp_dir();
        let good = dir.join("ddoscovery-faults-good.json");
        fs::write(
            &good,
            r#"{"outages":[{"source":"ucsd","start_week":10,"end_week":20}],
                "honeypot_churn":null,"flow_degradation":null,"seed":9}"#,
        )
        .unwrap();
        let opts = parse(&["--quick", "--faults", good.to_str().unwrap()]).unwrap();
        let cfg = build_config(&opts).unwrap();
        assert_eq!(cfg.faults.outages.len(), 1);
        assert_eq!(cfg.faults.outages[0].source, "ucsd");

        // A plan naming an unknown source fails validation with the
        // typed config error, not a panic deep in the pipeline.
        let bad = dir.join("ddoscovery-faults-bad.json");
        fs::write(
            &bad,
            r#"{"outages":[{"source":"atlantis","start_week":10,"end_week":20}],
                "honeypot_churn":null,"flow_degradation":null,"seed":9}"#,
        )
        .unwrap();
        let opts = parse(&["--quick", "--faults", bad.to_str().unwrap()]).unwrap();
        let err = build_config(&opts).unwrap_err();
        assert_eq!(err.exit_code(), 2);

        // A missing file is an I/O error, exit code 1.
        let opts = parse(&["--quick", "--faults", "/nonexistent/plan.json"]).unwrap();
        assert_eq!(build_config(&opts).unwrap_err().exit_code(), 1);
        assert!(parse(&["--faults"]).is_err());
    }

    #[test]
    fn chaos_flag_builds_a_recoverable_plan() {
        let opts = parse(&["--quick", "--chaos", "0.2"]).unwrap();
        let cfg = build_config(&opts).unwrap();
        let plan = cfg.chaos.unwrap();
        assert_eq!(plan.probability, 0.2);
        assert!(plan.failures_per_site < simcore::recover::MAX_ATTEMPTS);
        // An out-of-range probability is a typed config error.
        let opts = parse(&["--quick", "--chaos", "1.5"]).unwrap();
        assert_eq!(build_config(&opts).unwrap_err().exit_code(), 2);
        assert!(parse(&["--chaos", "plenty"]).is_err());
        assert!(parse(&["--chaos"]).is_err());
    }

    #[test]
    fn telemetry_flag_parses() {
        let opts = parse(&["--telemetry", "m.json", "t1"]).unwrap();
        assert_eq!(opts.telemetry.as_deref(), Some("m.json"));
        assert_eq!(opts.ids, ["t1"]);
        assert!(parse(&["--telemetry"]).is_err());
    }

    #[test]
    fn store_flag_takes_an_optional_directory() {
        // Bare flag → default directory.
        let opts = parse(&["--store"]).unwrap();
        assert_eq!(
            opts.store.as_deref(),
            Some(ddoscovery::diskstore::DEFAULT_STORE_DIR)
        );
        // Explicit directory, both spellings.
        assert_eq!(parse(&["--store", "warm"]).unwrap().store.as_deref(), Some("warm"));
        assert_eq!(parse(&["--store=warm"]).unwrap().store.as_deref(), Some("warm"));
        // A following flag is not swallowed as the directory.
        let opts = parse(&["--store", "--quick"]).unwrap();
        assert_eq!(
            opts.store.as_deref(),
            Some(ddoscovery::diskstore::DEFAULT_STORE_DIR)
        );
        assert!(opts.quick);
        // `off` lands in the config and resolves to no store.
        let cfg = build_config(&parse(&["--quick", "--store", "off"]).unwrap()).unwrap();
        assert_eq!(cfg.disk_store.as_deref(), Some("off"));
        assert!(ddoscovery::diskstore::resolve_dir(&cfg).is_none());
        // A real directory resolves to it.
        let cfg = build_config(&parse(&["--quick", "--store", "warm"]).unwrap()).unwrap();
        assert_eq!(
            ddoscovery::diskstore::resolve_dir(&cfg),
            Some(std::path::PathBuf::from("warm"))
        );
    }

    #[test]
    fn max_bytes_flag_parses() {
        assert_eq!(parse(&["--max-bytes", "4096"]).unwrap().max_bytes, Some(4096));
        assert!(parse(&["--max-bytes", "much"]).is_err());
        assert!(parse(&["--max-bytes"]).is_err());
    }

    #[test]
    fn scenario_labels() {
        let mut opts = parse(&["--quick"]).unwrap();
        assert_eq!(scenario_label(&opts), "quick");
        opts.seed = Some(7);
        assert_eq!(scenario_label(&opts), "quick-reseeded");
        opts.quick = false;
        assert_eq!(scenario_label(&opts), "paper-reseeded");
    }
}
