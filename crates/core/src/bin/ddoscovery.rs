//! `ddoscovery` — command-line front end for the reproduction.
//!
//! ```text
//! ddoscovery list                         # experiment ids + titles
//! ddoscovery run [--quick] [--seed N] [--out DIR] [IDS...]
//! ddoscovery config                       # dump the study config JSON
//! ddoscovery trends [--quick] [--seed N]  # one-screen Table-1 summary
//! ```

use ddoscovery::{all_ids, run_experiment, ObsId, StudyConfig, StudyRun};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ddoscovery <command> [options]\n\n\
         commands:\n\
         \u{20}  list                         list experiment ids\n\
         \u{20}  run [opts] [IDS...]          run experiments (default: all)\n\
         \u{20}  trends [opts]                print the Table-1 trend summary\n\
         \u{20}  config                       print the default study config as JSON\n\n\
         options:\n\
         \u{20}  --quick        scaled-down study (~1/8 volume)\n\
         \u{20}  --seed N       master seed (default 0xDD05C0DE)\n\
         \u{20}  --out DIR      CSV output directory (default: results)"
    );
    ExitCode::from(2)
}

struct Options {
    quick: bool,
    seed: Option<u64>,
    out: String,
    ids: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        seed: None,
        out: "results".into(),
        ids: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                let v = v.trim_start_matches("0x");
                opts.seed = Some(
                    u64::from_str_radix(v, 16)
                        .or_else(|_| v.parse())
                        .map_err(|_| format!("bad seed {v:?}"))?,
                );
            }
            "--out" => opts.out = it.next().ok_or("--out needs a value")?.clone(),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            id => opts.ids.push(id.to_string()),
        }
    }
    Ok(opts)
}

fn build_config(opts: &Options) -> StudyConfig {
    let mut cfg = if opts.quick {
        StudyConfig::quick()
    } else {
        StudyConfig::paper()
    };
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    cfg
}

fn cmd_list() -> ExitCode {
    // Titles need a run for some experiments; print ids with the static
    // descriptions from the registry docs instead.
    for id in all_ids() {
        println!("{id}");
    }
    ExitCode::SUCCESS
}

fn cmd_config() -> ExitCode {
    match serde_json::to_string_pretty(&StudyConfig::paper()) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(opts: &Options) -> ExitCode {
    let wanted: Vec<&str> = if opts.ids.is_empty() {
        all_ids().to_vec()
    } else {
        opts.ids.iter().map(|s| s.as_str()).collect()
    };
    for id in &wanted {
        if !all_ids().contains(id) {
            eprintln!("unknown experiment {id:?}; known: {:?}", all_ids());
            return ExitCode::from(2);
        }
    }
    let cfg = build_config(opts);
    eprintln!(
        "running {} study (seed {:#x}) ...",
        if opts.quick { "quick" } else { "paper-scale" },
        cfg.seed
    );
    let started = std::time::Instant::now();
    let run = StudyRun::execute(&cfg);
    eprintln!(
        "{} attacks observed in {:.1?}",
        run.attacks.len(),
        started.elapsed()
    );
    let out_dir = Path::new(&opts.out);
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for id in wanted {
        let result = run_experiment(&run, id).expect("validated id");
        println!("== [{}] {} ==\n{}", result.id, result.title, result.body);
        for (name, contents) in &result.csv {
            let path = out_dir.join(name);
            if let Err(e) = fs::write(&path, contents) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("  -> {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trends(opts: &Options) -> ExitCode {
    let cfg = build_config(opts);
    let run = StudyRun::execute(&cfg);
    println!("{:16} {:>8}  type  trend", "observatory", "attacks");
    for id in ObsId::MAIN_TEN {
        let s = run.normalized_series(id);
        println!(
            "{:16} {:>8}  {:4}  {}",
            id.name(),
            run.observations(id).len(),
            if id.is_direct_path() { "DP" } else { "RA" },
            s.trend().symbol()
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    match command.as_str() {
        "list" => cmd_list(),
        "config" => cmd_config(),
        "run" => cmd_run(&opts),
        "trends" => cmd_trends(&opts),
        _ => usage(),
    }
}
