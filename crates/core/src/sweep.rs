//! Parameter sweeps: run the study across a grid of one generator
//! parameter and collect per-observatory outcomes — the harness behind
//! "what would the observatories have reported if X had been
//! different?" questions (SAV strength, takedown depth, growth rates).
//!
//! Grid points run concurrently on the shared execution pool (each
//! study is independent and internally deterministic); nested study
//! fan-outs reuse the same pool handle, which is reentrant.
//!
//! Every mutated grid point is re-validated before execution: `apply`
//! is an arbitrary closure, so it can push a copy of the base config
//! outside its invariants (e.g. sweeping `sav_reduction` past 1.0).
//! Such points are skipped — recorded in [`SweepReport::skipped`] with
//! their typed error and warned about on stderr — instead of panicking
//! deep inside the generator and killing the whole grid. Runtime
//! failures (a grid point whose execution panics, including exhausted
//! chaos-injected faults) degrade the same way: the panic is caught at
//! the point boundary and becomes a skip entry, counted by the
//! `sweep.skipped` metric.

use crate::error::Error;
use crate::pipeline::{ObsId, StudyRun};
use crate::scenario::StudyConfig;
use analytics::Trend;
use serde::{Deserialize, Serialize};
use simcore::ExecPool;

/// Outcome of one sweep point for one observatory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The swept parameter's value at this point.
    pub value: f64,
    pub observatory: String,
    pub observations: usize,
    pub trend: Trend,
    /// Fitted relative change over four years (the Table-1 statistic).
    /// NaN when the fit has no positive baseline to divide by (see
    /// [`analytics::relative_change_4y`]).
    pub change_4y: f64,
}

/// A grid point whose mutated config failed validation.
#[derive(Debug, Clone)]
pub struct SweepSkip {
    /// The swept parameter's value at the rejected point.
    pub value: f64,
    pub error: Error,
}

/// Outcomes of a full sweep: executed grid points in grid order, plus
/// the points skipped because `apply` produced an invalid config.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Per-(value, observatory) outcomes, ordered by grid value then
    /// by the caller's observatory order. Skipped values are absent.
    pub outcomes: Vec<SweepOutcome>,
    /// Grid points rejected by [`StudyConfig::validate`], in grid order.
    pub skipped: Vec<SweepSkip>,
}

/// Run the study once per parameter value and collect outcomes for the
/// requested observatories. `apply` mutates a copy of the base config
/// for each grid value.
///
/// Returns `Err` only when the *base* config is already invalid;
/// individual invalid grid points degrade into [`SweepReport::skipped`]
/// entries so one bad value cannot abort the rest of the grid.
pub fn sweep(
    base: &StudyConfig,
    values: &[f64],
    observatories: &[ObsId],
    apply: impl Fn(&mut StudyConfig, f64) + Sync,
) -> Result<SweepReport, Error> {
    base.validate()?;
    let pool = base.workers.map(ExecPool::new).unwrap_or_default();
    let results = pool.run_indexed(values.len(), |i| {
        let value = values[i];
        let mut cfg = base.clone();
        apply(&mut cfg, value);
        if let Err(error) = cfg.validate() {
            return Err(SweepSkip { value, error });
        }
        let run = match simcore::recover::capture(simcore::chaos::sites::SWEEP_POINT, || {
            StudyRun::execute_on(&cfg, &pool)
        }) {
            Ok(run) => run,
            Err(caught) => {
                return Err(SweepSkip {
                    value,
                    error: Error::analytics(format!("sweep point {value}"), caught.to_string()),
                })
            }
        };
        Ok(observatories
            .iter()
            .map(|&id| {
                let series = run.normalized_series(id);
                let change = series
                    .linear_regression()
                    .as_ref()
                    .and_then(analytics::relative_change_4y)
                    .unwrap_or(f64::NAN);
                SweepOutcome {
                    value,
                    observatory: id.name().to_string(),
                    observations: run.observations(id).len(),
                    trend: series.trend(),
                    change_4y: change,
                }
            })
            .collect::<Vec<SweepOutcome>>())
    });
    let mut report = SweepReport::default();
    for point in results {
        match point {
            Ok(outcomes) => report.outcomes.extend(outcomes),
            Err(skip) => {
                obs::metrics::counter("sweep.skipped").inc();
                obs::warn!(
                    "sweep: skipping grid value {}: {}",
                    skip.value,
                    skip.error
                );
                report.skipped.push(skip);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> StudyConfig {
        let mut cfg = StudyConfig::quick();
        cfg.gen.timeline.dp_base_per_week = 25.0;
        cfg.gen.timeline.ra_base_per_week = 40.0;
        cfg.gen.random_campaign_count = 0;
        cfg.gen.campaign_rate_scale = 0.0;
        cfg.missing_data = false;
        cfg
    }

    #[test]
    fn sweep_shape_and_order() {
        let values = [0.0, 0.4];
        let report = sweep(
            &tiny_base(),
            &values,
            &[ObsId::Hopscotch, ObsId::AmpPot],
            |cfg, v| cfg.gen.timeline.sav_reduction = v,
        )
        .unwrap();
        let out = &report.outcomes;
        assert!(report.skipped.is_empty());
        assert_eq!(out.len(), 4);
        // Ordered by grid value then observatory.
        assert_eq!(out[0].value, 0.0);
        assert_eq!(out[0].observatory, "Hopscotch");
        assert_eq!(out[3].value, 0.4);
        assert_eq!(out[3].observatory, "AmpPot");
    }

    #[test]
    fn sav_strength_flips_ra_trend() {
        // No SAV push ⇒ RA keeps its growth + recovery; a deep SAV push
        // drives the 4-year change down. The sweep must show the
        // monotone response.
        let values = [0.0, 0.6];
        let report = sweep(&tiny_base(), &values, &[ObsId::AmpPot], |cfg, v| {
            cfg.gen.timeline.sav_reduction = v;
        })
        .unwrap();
        let out = &report.outcomes;
        let change_at = |v: f64| {
            out.iter()
                .find(|o| o.value == v)
                .map(|o| o.change_4y)
                .unwrap()
        };
        assert!(
            change_at(0.0) > change_at(0.6) + 0.1,
            "no-SAV {:.2} vs deep-SAV {:.2}",
            change_at(0.0),
            change_at(0.6)
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let values = [0.2];
        let run_once = || {
            sweep(&tiny_base(), &values, &[ObsId::Ucsd], |cfg, v| {
                cfg.gen.timeline.sav_reduction = v;
            })
            .unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.outcomes[0].observations, b.outcomes[0].observations);
        assert_eq!(a.outcomes[0].change_4y, b.outcomes[0].change_4y);
    }

    #[test]
    fn invalid_grid_point_is_skipped_not_fatal() {
        // sav_reduction = 1.5 violates the [0, 1] invariant; the sweep
        // must keep the valid point and record the bad one.
        let values = [0.2, 1.5];
        let report = sweep(&tiny_base(), &values, &[ObsId::AmpPot], |cfg, v| {
            cfg.gen.timeline.sav_reduction = v;
        })
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].value, 0.2);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].value, 1.5);
        assert!(matches!(
            report.skipped[0].error,
            Error::Config { field: "gen.timeline.sav_reduction", .. }
        ));
    }

    #[test]
    fn runtime_panic_degrades_into_a_skip() {
        // A grid point whose execution dies (here: permanent injected
        // chaos, which exhausts every retry) must become a skip entry,
        // not kill the whole grid.
        use crate::faults::ChaosPlan;
        let values = [0.1, 0.3];
        let before = obs::metrics::counter("sweep.skipped").get();
        let report = sweep(&tiny_base(), &values, &[ObsId::AmpPot], |cfg, v| {
            cfg.gen.timeline.sav_reduction = v;
            if v == 0.3 {
                cfg.chaos = Some(ChaosPlan {
                    probability: 1.0,
                    failures_per_site: simcore::recover::MAX_ATTEMPTS,
                    seed: 7,
                });
            }
        })
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].value, 0.1);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].value, 0.3);
        assert!(
            report.skipped[0].error.to_string().contains("panic at"),
            "error should carry the captured panic: {}",
            report.skipped[0].error
        );
        assert!(obs::metrics::counter("sweep.skipped").get() > before);
    }

    #[test]
    fn invalid_base_is_an_error() {
        let mut base = tiny_base();
        base.gen.timeline.noise_sigma = f64::NAN;
        let err = sweep(&base, &[0.0], &[ObsId::Ucsd], |_, _| {}).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(matches!(
            err,
            Error::Config { field: "gen.timeline.noise_sigma", .. }
        ));
    }
}
