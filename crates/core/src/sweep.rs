//! Parameter sweeps: run the study across a grid of one generator
//! parameter and collect per-observatory outcomes — the harness behind
//! "what would the observatories have reported if X had been
//! different?" questions (SAV strength, takedown depth, growth rates).
//!
//! Grid points run concurrently on the shared execution pool (each
//! study is independent and internally deterministic); nested study
//! fan-outs reuse the same pool handle, which is reentrant.

use crate::pipeline::{ObsId, StudyRun};
use crate::scenario::StudyConfig;
use analytics::Trend;
use serde::{Deserialize, Serialize};
use simcore::ExecPool;

/// Outcome of one sweep point for one observatory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The swept parameter's value at this point.
    pub value: f64,
    pub observatory: String,
    pub observations: usize,
    pub trend: Trend,
    /// Fitted relative change over four years (the Table-1 statistic).
    pub change_4y: f64,
}

/// Run the study once per parameter value and collect outcomes for the
/// requested observatories. `apply` mutates a copy of the base config
/// for each grid value.
pub fn sweep(
    base: &StudyConfig,
    values: &[f64],
    observatories: &[ObsId],
    apply: impl Fn(&mut StudyConfig, f64) + Sync,
) -> Vec<SweepOutcome> {
    let pool = base.workers.map(ExecPool::new).unwrap_or_default();
    let results = pool.run_indexed(values.len(), |i| {
        let value = values[i];
        let mut cfg = base.clone();
        apply(&mut cfg, value);
        let run = StudyRun::execute_on(&cfg, &pool);
        observatories
            .iter()
            .map(|&id| {
                let series = run.normalized_series(id);
                let change = series
                    .linear_regression()
                    .map(|r| r.slope * 208.0 / r.intercept.max(1e-9))
                    .unwrap_or(f64::NAN);
                SweepOutcome {
                    value,
                    observatory: id.name().to_string(),
                    observations: run.observations(id).len(),
                    trend: series.trend(),
                    change_4y: change,
                }
            })
            .collect::<Vec<SweepOutcome>>()
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> StudyConfig {
        let mut cfg = StudyConfig::quick();
        cfg.gen.timeline.dp_base_per_week = 25.0;
        cfg.gen.timeline.ra_base_per_week = 40.0;
        cfg.gen.random_campaign_count = 0;
        cfg.gen.campaign_rate_scale = 0.0;
        cfg.missing_data = false;
        cfg
    }

    #[test]
    fn sweep_shape_and_order() {
        let values = [0.0, 0.4];
        let out = sweep(
            &tiny_base(),
            &values,
            &[ObsId::Hopscotch, ObsId::AmpPot],
            |cfg, v| cfg.gen.timeline.sav_reduction = v,
        );
        assert_eq!(out.len(), 4);
        // Ordered by grid value then observatory.
        assert_eq!(out[0].value, 0.0);
        assert_eq!(out[0].observatory, "Hopscotch");
        assert_eq!(out[3].value, 0.4);
        assert_eq!(out[3].observatory, "AmpPot");
    }

    #[test]
    fn sav_strength_flips_ra_trend() {
        // No SAV push ⇒ RA keeps its growth + recovery; a deep SAV push
        // drives the 4-year change down. The sweep must show the
        // monotone response.
        let values = [0.0, 0.6];
        let out = sweep(&tiny_base(), &values, &[ObsId::AmpPot], |cfg, v| {
            cfg.gen.timeline.sav_reduction = v;
        });
        let change_at = |v: f64| {
            out.iter()
                .find(|o| o.value == v)
                .map(|o| o.change_4y)
                .unwrap()
        };
        assert!(
            change_at(0.0) > change_at(0.6) + 0.1,
            "no-SAV {:.2} vs deep-SAV {:.2}",
            change_at(0.0),
            change_at(0.6)
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let values = [0.2];
        let run_once = || {
            sweep(&tiny_base(), &values, &[ObsId::Ucsd], |cfg, v| {
                cfg.gen.timeline.sav_reduction = v;
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a[0].observations, b[0].observations);
        assert_eq!(a[0].change_4y, b[0].change_4y);
    }
}
